//! Sharded simulation with conservative lookahead.
//!
//! The node set is partitioned into shards, each driven by its own
//! [`Simulator`] (own calendar queue, own clock) on a worker thread. The
//! shards synchronize with a barrier-based variant of conservative
//! (Chandy–Misra–Bryant) lookahead: every link latency is a floor on how
//! soon one shard's events can influence another, so each round the
//! coordinator grants every shard a *safe window* it may process without
//! hearing from anyone else.
//!
//! # The horizon rule
//!
//! Let `next[i]` be shard `i`'s earliest pending event (queued or already
//! in its inbox) and `L(j, i)` the minimum latency over links crossing
//! from shard `j` to shard `i`. A naive per-neighbour window
//! `min_j(next[j] + L(j, i))` is **unsafe**: an idle intermediate shard
//! has `next = ∞` but can still relay traffic (A→B→C with B idle must not
//! unblock C past A's reach). The coordinator therefore first computes
//! each shard's *earliest possible action*
//!
//! ```text
//! ea[i] = min( next[i], min over links j→i of ea[j] + L(j, i) )
//! ```
//!
//! by relaxing to a fixpoint (a Bellman–Ford pass over the shard graph;
//! intra-shard transit is conservatively treated as free). `ea[i]` is a
//! true lower bound on the timestamp of any event that can *ever* occur
//! on shard `i` given current global state. The granted window is then
//!
//! ```text
//! bound[i] = min over links j→i of ea[j] + L(j, i)    (∞ if no such link)
//! ```
//!
//! and shard `i` processes events with `at < bound[i]`. Any frame another
//! shard ever sends it arrives at `≥ ea[j] + L(j, i) ≥ bound[i]`, so
//! nothing processed this round can be invalidated later. Because every
//! cross-shard link has `L ≥ 1` (enforced at plan time), the shard
//! holding the globally earliest event always has `next < bound` — each
//! round makes progress and the protocol cannot deadlock.
//!
//! # Why bit-identity holds
//!
//! Event tiebreak keys pack `(source node, per-source count)`
//! ([`crate::sched`]), so a shard assigns a frame exactly the key the
//! sequential run would have assigned — no global counter needed. Within
//! a round, same-timestamp events on different shards are causally
//! independent (any cross influence lands `≥ L ≥ 1` ns later), and
//! per-link transmitter state lives entirely on the sending shard, so
//! each shard's pop sequence is precisely the sequential `(time, seq)`
//! drain order restricted to its own nodes. Merging per-node streams back
//! together therefore reproduces the sequential execution bit for bit;
//! `tests/shard_diff.rs` and the CI smoke step enforce this.

use crate::sched::SchedulerKind;
use crate::sim::{SimNode, SimStats, Simulator};
use crate::time::SimTime;
use crate::topology::Topology;
use p4auth_telemetry::Registry;
use p4auth_wire::ids::SwitchId;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread;

use crate::sim::RemoteEvent;

/// An assignment of every topology node to a shard.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    nshards: usize,
    /// Shard index dense by raw switch id; `u32::MAX` for ids that are not
    /// topology nodes.
    assign: Vec<u32>,
}

impl ShardPlan {
    fn from_fn(topology: &Topology, nshards: usize, f: impl Fn(SwitchId) -> usize) -> Self {
        assert!(nshards >= 1, "need at least one shard");
        let max_id = topology
            .nodes()
            .iter()
            .map(|n| n.value() as usize)
            .max()
            .unwrap_or(0);
        let mut assign = vec![u32::MAX; max_id + 1];
        for &node in topology.nodes() {
            let s = f(node);
            assert!(s < nshards, "shard index {s} out of range for {node}");
            assign[node.value() as usize] = s as u32;
        }
        let plan = ShardPlan { nshards, assign };
        plan.validate_cross_latencies(topology);
        plan
    }

    /// Partitions along the topology's partition hints (fat-tree pods and
    /// core groups): community `c` lands on shard `c % nshards`, so pods
    /// stay whole and only the sparse agg–core cut crosses shards. Nodes
    /// without a hint — and hint-free topologies entirely — fall back to
    /// round-robin in node order.
    ///
    /// # Panics
    ///
    /// Panics if `nshards == 0` or a cross-shard link has zero latency
    /// (zero lookahead would livelock the safe-window protocol).
    pub fn pod_aligned(topology: &Topology, nshards: usize) -> Self {
        let mut fallback = 0usize;
        let nodes = topology.nodes().to_vec();
        let mut by_node = std::collections::HashMap::new();
        for &node in &nodes {
            let s = match topology.partition_hint(node) {
                Some(c) => c as usize % nshards,
                None => {
                    let s = fallback % nshards;
                    fallback += 1;
                    s
                }
            };
            by_node.insert(node, s);
        }
        Self::from_fn(topology, nshards, |n| by_node[&n])
    }

    /// Partitions nodes round-robin in node order — the fallback for
    /// arbitrary topologies with no locality to exploit.
    ///
    /// # Panics
    ///
    /// Panics if `nshards == 0` or a cross-shard link has zero latency.
    pub fn round_robin(topology: &Topology, nshards: usize) -> Self {
        let nodes = topology.nodes().to_vec();
        let mut by_node = std::collections::HashMap::new();
        for (i, &node) in nodes.iter().enumerate() {
            by_node.insert(node, i % nshards);
        }
        Self::from_fn(topology, nshards, |n| by_node[&n])
    }

    /// Partitions with an explicit assignment function (tests and custom
    /// planners).
    ///
    /// # Panics
    ///
    /// Panics if `nshards == 0`, `f` returns an out-of-range shard, or a
    /// cross-shard link has zero latency.
    pub fn custom(topology: &Topology, nshards: usize, f: impl Fn(SwitchId) -> usize) -> Self {
        Self::from_fn(topology, nshards, f)
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.nshards
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not part of the planned topology.
    pub fn shard_of(&self, node: SwitchId) -> usize {
        let s = self
            .assign
            .get(node.value() as usize)
            .copied()
            .unwrap_or(u32::MAX);
        assert!(s != u32::MAX, "node {node} is not in the shard plan");
        s as usize
    }

    /// Minimum latency over links crossing from shard `from` to shard
    /// `to`, or `None` when no link crosses that pair. Symmetric (links
    /// are bidirectional).
    pub fn min_cross_latency_ns(&self, topology: &Topology, from: usize, to: usize) -> Option<u64> {
        topology
            .links()
            .iter()
            .filter(|l| {
                let (sa, sb) = (self.shard_of(l.a.node), self.shard_of(l.b.node));
                (sa == from && sb == to) || (sa == to && sb == from)
            })
            .map(|l| l.latency_ns)
            .min()
    }

    /// Pairwise cross-shard minimum latencies: `lat[j][i]` bounds how soon
    /// shard `j` can influence shard `i` directly.
    fn cross_latency_matrix(&self, topology: &Topology) -> Vec<Vec<Option<u64>>> {
        let n = self.nshards;
        let mut lat = vec![vec![None; n]; n];
        for link in topology.links() {
            let (sa, sb) = (self.shard_of(link.a.node), self.shard_of(link.b.node));
            if sa == sb {
                continue;
            }
            for (j, i) in [(sa, sb), (sb, sa)] {
                let slot: &mut Option<u64> = &mut lat[j][i];
                *slot = Some(slot.map_or(link.latency_ns, |v| v.min(link.latency_ns)));
            }
        }
        lat
    }

    fn validate_cross_latencies(&self, topology: &Topology) {
        for link in topology.links() {
            let (sa, sb) = (self.shard_of(link.a.node), self.shard_of(link.b.node));
            assert!(
                sa == sb || link.latency_ns >= 1,
                "cross-shard link {} -- {} has zero latency: zero lookahead \
                 would livelock the safe-window protocol",
                link.a,
                link.b
            );
        }
    }
}

/// Outcome of a sharded run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRunReport {
    /// Events processed across all shards (equals the sequential count).
    pub events: u64,
    /// Aggregated statistics (field-wise sum over shards; equals the
    /// sequential [`SimStats`]).
    pub stats: SimStats,
    /// Final simulated time: the max over shard clocks, which is the time
    /// of the globally last event — exactly the sequential final `now`.
    pub now: SimTime,
    /// Synchronization rounds executed.
    pub rounds: u64,
}

/// Per-round synchronization record from [`ShardedSimulator::run_audited`],
/// for invariant checking in tests.
#[derive(Clone, Debug)]
pub struct RoundAudit {
    /// Each shard's effective earliest pending event (queue or inbox) at
    /// the round start, `None` when idle.
    pub next_at_ns: Vec<Option<u64>>,
    /// The safe-window bound granted to each shard (exclusive;
    /// `u64::MAX` means unbounded).
    pub bound_ns: Vec<u64>,
    /// Timestamp of the latest event each shard popped this round,
    /// `None` when it processed nothing.
    pub max_popped_ns: Vec<Option<u64>>,
}

enum ToWorker {
    Round {
        bound_ns: u64,
        inbox: Vec<RemoteEvent>,
    },
    Finish,
}

struct RoundReply {
    outbound: Vec<RemoteEvent>,
    next_at_ns: Option<u64>,
    processed: u64,
    max_popped_ns: Option<u64>,
}

/// A partitioned simulator: builds one [`Simulator`] per shard on worker
/// threads and drives them in safe-window rounds (see the module docs).
///
/// Usage mirrors [`Simulator`]: register nodes, schedule boot timers,
/// optionally attach telemetry, then [`ShardedSimulator::run`] to
/// completion. Telemetry counters and histograms aggregate across shards
/// commutatively, so snapshots match a sequential run's; attach a
/// registry *without* an event log if you need snapshot bit-equality (the
/// log's interleaving is the one execution-order-dependent piece).
pub struct ShardedSimulator {
    topology: Topology,
    plan: ShardPlan,
    nodes: Vec<Option<Box<dyn SimNode + Send>>>,
    /// Boot timers `(node, timer_id, delay_ns)` in registration order.
    timers: Vec<(SwitchId, u64, u64)>,
    telemetry: Option<Arc<Registry>>,
}

impl ShardedSimulator {
    /// Creates a sharded simulator over `topology` partitioned by `plan`.
    pub fn new(topology: Topology, plan: ShardPlan) -> Self {
        let max_id = topology
            .nodes()
            .iter()
            .map(|n| n.value() as usize)
            .max()
            .unwrap_or(0);
        ShardedSimulator {
            topology,
            plan,
            nodes: (0..=max_id).map(|_| None).collect(),
            timers: Vec::new(),
            telemetry: None,
        }
    }

    /// The shard plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Registers the behaviour for `id` (must be `Send`: it is shipped to
    /// its owning shard's worker thread).
    ///
    /// # Panics
    ///
    /// Panics if the node is not in the topology or already registered.
    pub fn register_node(&mut self, id: SwitchId, node: Box<dyn SimNode + Send>) {
        assert!(
            self.topology.nodes().contains(&id),
            "node {id} not in topology"
        );
        let slot = &mut self.nodes[id.value() as usize];
        assert!(slot.is_none(), "node {id} registered twice");
        *slot = Some(node);
    }

    /// Schedules a boot timer for `node`, `delay_ns` after t=0 (the
    /// sharded equivalent of calling [`Simulator::schedule_timer`] before
    /// the run starts).
    pub fn schedule_timer(&mut self, node: SwitchId, timer_id: u64, delay_ns: u64) {
        self.timers.push((node, timer_id, delay_ns));
    }

    /// Attaches a telemetry registry, shared by every shard.
    pub fn set_telemetry(&mut self, registry: Arc<Registry>) {
        self.telemetry = Some(registry);
    }

    /// Runs to completion and reports the aggregate outcome.
    pub fn run(self) -> ShardRunReport {
        self.run_inner(false).0
    }

    /// Runs to completion, additionally recording every synchronization
    /// round for lookahead-invariant checks in tests.
    pub fn run_audited(self) -> (ShardRunReport, Vec<RoundAudit>) {
        let (report, audits) = self.run_inner(true);
        (report, audits)
    }

    fn run_inner(mut self, audit: bool) -> (ShardRunReport, Vec<RoundAudit>) {
        let n = self.plan.nshards();
        let lat = self.plan.cross_latency_matrix(&self.topology);

        // Split registered nodes and boot timers by owning shard.
        let mut shard_nodes: Vec<Vec<(SwitchId, Box<dyn SimNode + Send>)>> =
            (0..n).map(|_| Vec::new()).collect();
        for raw in 0..self.nodes.len() {
            if let Some(node) = self.nodes[raw].take() {
                let id = SwitchId::new(raw as u16);
                shard_nodes[self.plan.shard_of(id)].push((id, node));
            }
        }
        let mut shard_timers: Vec<Vec<(SwitchId, u64, u64)>> = (0..n).map(|_| Vec::new()).collect();
        for (node, timer_id, delay_ns) in self.timers.drain(..) {
            shard_timers[self.plan.shard_of(node)].push((node, timer_id, delay_ns));
        }

        // Spawn one worker per shard. Each builds its own Simulator from
        // the shared topology, masked to the nodes it owns.
        let mut cmd_txs: Vec<SyncSender<ToWorker>> = Vec::with_capacity(n);
        let mut reply_rxs: Vec<Receiver<RoundReply>> = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for s in 0..n {
            let (cmd_tx, cmd_rx) = sync_channel::<ToWorker>(1);
            let (reply_tx, reply_rx) = sync_channel::<RoundReply>(1);
            let topology = self.topology.clone();
            let plan = self.plan.clone();
            let nodes = std::mem::take(&mut shard_nodes[s]);
            let timers = std::mem::take(&mut shard_timers[s]);
            let telemetry = self.telemetry.clone();
            handles.push(thread::spawn(move || {
                worker(
                    s, topology, plan, nodes, timers, telemetry, cmd_rx, reply_tx,
                )
            }));
            cmd_txs.push(cmd_tx);
            reply_rxs.push(reply_rx);
        }

        // Initial replies carry each shard's boot-timer horizon.
        let mut replies: Vec<RoundReply> = reply_rxs
            .iter()
            .map(|rx| rx.recv().expect("worker died before first reply"))
            .collect();
        let mut inboxes: Vec<Vec<RemoteEvent>> = (0..n).map(|_| Vec::new()).collect();
        let mut audits = Vec::new();
        let mut events = 0u64;
        let mut rounds = 0u64;

        loop {
            // Effective horizon per shard: its queue plus its inbox.
            let next: Vec<u64> = (0..n)
                .map(|i| {
                    let q = replies[i].next_at_ns.unwrap_or(u64::MAX);
                    let inbox = inboxes[i]
                        .iter()
                        .map(|ev| ev.at.as_ns())
                        .min()
                        .unwrap_or(u64::MAX);
                    q.min(inbox)
                })
                .collect();
            if next.iter().all(|&v| v == u64::MAX) {
                break;
            }

            // Earliest-possible-action fixpoint over the shard graph.
            let mut ea = next.clone();
            loop {
                let mut changed = false;
                for i in 0..n {
                    for j in 0..n {
                        if let Some(l) = lat[j][i] {
                            let via = ea[j].saturating_add(l);
                            if via < ea[i] {
                                ea[i] = via;
                                changed = true;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            let bound: Vec<u64> = (0..n)
                .map(|i| {
                    (0..n)
                        .filter_map(|j| lat[j][i].map(|l| ea[j].saturating_add(l)))
                        .min()
                        .unwrap_or(u64::MAX)
                })
                .collect();

            rounds += 1;
            for (i, tx) in cmd_txs.iter().enumerate() {
                tx.send(ToWorker::Round {
                    bound_ns: bound[i],
                    inbox: std::mem::take(&mut inboxes[i]),
                })
                .expect("worker hung up mid-run");
            }
            let mut processed_this_round = 0u64;
            let mut max_popped = Vec::new();
            for (i, rx) in reply_rxs.iter().enumerate() {
                let reply = rx.recv().expect("worker died mid-round");
                processed_this_round += reply.processed;
                if audit {
                    max_popped.push(reply.max_popped_ns);
                }
                replies[i] = reply;
            }
            for reply in &mut replies {
                for ev in reply.outbound.drain(..) {
                    inboxes[self.plan.shard_of(ev.dst.node)].push(ev);
                }
            }
            events += processed_this_round;
            assert!(
                processed_this_round > 0,
                "safe-window round made no progress (lookahead bug)"
            );
            if audit {
                audits.push(RoundAudit {
                    next_at_ns: next.iter().map(|&v| (v != u64::MAX).then_some(v)).collect(),
                    bound_ns: bound,
                    max_popped_ns: max_popped,
                });
            }
        }

        for tx in &cmd_txs {
            tx.send(ToWorker::Finish).expect("worker hung up at finish");
        }
        let mut stats = SimStats::default();
        let mut now = SimTime::ZERO;
        for handle in handles {
            let (shard_stats, shard_now) = handle.join().expect("worker panicked");
            stats.frames_delivered += shard_stats.frames_delivered;
            stats.frames_tapped_dropped += shard_stats.frames_tapped_dropped;
            stats.frames_tapped_modified += shard_stats.frames_tapped_modified;
            stats.frames_undeliverable += shard_stats.frames_undeliverable;
            stats.timers_fired += shard_stats.timers_fired;
            now = now.max(shard_now);
        }
        (
            ShardRunReport {
                events,
                stats,
                now,
                rounds,
            },
            audits,
        )
    }
}

/// Worker-thread body: owns one shard's [`Simulator`] and answers
/// safe-window rounds until told to finish.
#[allow(clippy::too_many_arguments)]
fn worker(
    shard: usize,
    topology: Topology,
    plan: ShardPlan,
    nodes: Vec<(SwitchId, Box<dyn SimNode + Send>)>,
    timers: Vec<(SwitchId, u64, u64)>,
    telemetry: Option<Arc<Registry>>,
    cmd_rx: Receiver<ToWorker>,
    reply_tx: SyncSender<RoundReply>,
) -> (SimStats, SimTime) {
    let max_id = topology
        .nodes()
        .iter()
        .map(|n| n.value() as usize)
        .max()
        .unwrap_or(0);
    let mut mask = vec![false; max_id + 1];
    for &node in topology.nodes() {
        mask[node.value() as usize] = plan.shard_of(node) == shard;
    }
    let mut sim = Simulator::with_scheduler(topology, SchedulerKind::Calendar);
    sim.set_owned_mask(mask);
    if let Some(registry) = telemetry {
        sim.set_telemetry(registry);
    }
    for (id, node) in nodes {
        sim.register_node(id, node);
    }
    for (node, timer_id, delay_ns) in timers {
        sim.schedule_timer(node, timer_id, delay_ns);
    }
    reply_tx
        .send(RoundReply {
            outbound: sim.take_outbound(),
            next_at_ns: sim.next_event_at().map(|t| t.as_ns()),
            processed: 0,
            max_popped_ns: None,
        })
        .expect("coordinator hung up before first reply");
    // A Finish command or either channel closing ends the loop.
    while let Ok(ToWorker::Round { bound_ns, inbox }) = cmd_rx.recv() {
        for ev in inbox {
            sim.inject_remote(ev);
        }
        let processed = sim.run_window(SimTime::from_ns(bound_ns));
        let max_popped_ns = (processed > 0).then(|| sim.now().as_ns());
        let reply = RoundReply {
            outbound: sim.take_outbound(),
            next_at_ns: sim.next_event_at().map(|t| t.as_ns()),
            processed,
            max_popped_ns,
        };
        if reply_tx.send(reply).is_err() {
            break;
        }
    }
    (sim.stats(), sim.now())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameBytes;
    use crate::sim::Outbox;
    use crate::topology::Endpoint;
    use p4auth_wire::ids::PortId;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Echo {
        arrivals: Arc<AtomicU64>,
        reply: bool,
    }

    impl SimNode for Echo {
        fn on_frame(&mut self, _: SimTime, ingress: PortId, payload: FrameBytes, out: &mut Outbox) {
            self.arrivals.fetch_add(1, Ordering::Relaxed);
            if self.reply {
                out.send_delayed(ingress, payload, 10);
            }
        }
        fn on_timer(&mut self, _: SimTime, _: u64, out: &mut Outbox) {
            out.send(PortId::new(1), vec![0xab]);
        }
    }

    fn two_node_topology() -> Topology {
        let mut t = Topology::new();
        t.add_node(SwitchId::new(1)).unwrap();
        t.add_node(SwitchId::new(2)).unwrap();
        t.add_link(
            Endpoint::new(SwitchId::new(1), PortId::new(1)),
            Endpoint::new(SwitchId::new(2), PortId::new(1)),
            1_000,
        )
        .unwrap();
        t
    }

    #[test]
    fn round_robin_plan_covers_every_node() {
        let t = two_node_topology();
        let plan = ShardPlan::round_robin(&t, 2);
        assert_eq!(plan.nshards(), 2);
        assert_ne!(
            plan.shard_of(SwitchId::new(1)),
            plan.shard_of(SwitchId::new(2))
        );
        assert_eq!(plan.min_cross_latency_ns(&t, 0, 1), Some(1_000));
    }

    #[test]
    fn pod_aligned_plan_keeps_pods_whole() {
        let ft = crate::fattree::FatTree::new(4);
        let t = ft.build(1_500);
        let plan = ShardPlan::pod_aligned(&t, 4);
        for pod in 0..4u16 {
            let home = plan.shard_of(ft.edge(pod, 0));
            for i in 0..2 {
                assert_eq!(plan.shard_of(ft.edge(pod, i)), home);
                assert_eq!(plan.shard_of(ft.agg(pod, i)), home);
            }
            for h in 0..4 {
                assert_eq!(plan.shard_of(ft.host(pod * 4 + h)), home);
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero latency")]
    fn zero_latency_cross_shard_link_rejected() {
        let mut t = Topology::new();
        t.add_node(SwitchId::new(1)).unwrap();
        t.add_node(SwitchId::new(2)).unwrap();
        t.add_link(
            Endpoint::new(SwitchId::new(1), PortId::new(1)),
            Endpoint::new(SwitchId::new(2), PortId::new(1)),
            0,
        )
        .unwrap();
        let _ = ShardPlan::round_robin(&t, 2);
    }

    #[test]
    fn sharded_ping_pong_matches_sequential() {
        // Sequential reference.
        let seq_arrivals = [Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0))];
        let mut seq = Simulator::with_scheduler(two_node_topology(), SchedulerKind::Calendar);
        seq.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: seq_arrivals[0].clone(),
                reply: false,
            }),
        );
        seq.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: seq_arrivals[1].clone(),
                reply: true,
            }),
        );
        seq.schedule_timer(SwitchId::new(1), 7, 50);
        let seq_events = seq.run_to_completion();

        // Sharded run, one node per shard.
        let t = two_node_topology();
        let plan = ShardPlan::round_robin(&t, 2);
        let arrivals = [Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0))];
        let mut sharded = ShardedSimulator::new(t, plan);
        sharded.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: arrivals[0].clone(),
                reply: false,
            }),
        );
        sharded.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: arrivals[1].clone(),
                reply: true,
            }),
        );
        sharded.schedule_timer(SwitchId::new(1), 7, 50);
        let report = sharded.run();

        assert_eq!(report.events, seq_events);
        assert_eq!(report.stats, seq.stats());
        assert_eq!(report.now, seq.now());
        for (a, b) in arrivals.iter().zip(&seq_arrivals) {
            assert_eq!(a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
        }
        assert!(report.rounds >= 2, "ping-pong needs multiple rounds");
    }

    #[test]
    fn single_shard_run_is_the_sequential_run() {
        let t = two_node_topology();
        let plan = ShardPlan::round_robin(&t, 1);
        let arrivals = Arc::new(AtomicU64::new(0));
        let mut sharded = ShardedSimulator::new(t, plan);
        sharded.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: arrivals.clone(),
                reply: false,
            }),
        );
        sharded.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: Arc::new(AtomicU64::new(0)),
                reply: true,
            }),
        );
        sharded.schedule_timer(SwitchId::new(1), 7, 50);
        let (report, audits) = sharded.run_audited();
        assert_eq!(report.stats.timers_fired, 1);
        assert_eq!(report.events, 3, "timer + arrival + echoed arrival");
        assert_eq!(audits.len() as u64, report.rounds);
        // One shard has no incoming cross links: unbounded window, one
        // productive round.
        assert_eq!(audits[0].bound_ns, vec![u64::MAX]);
    }
}
