//! Sharded simulation with conservative lookahead.
//!
//! The node set is partitioned into shards, each driven by its own
//! [`Simulator`] (own calendar queue, own clock) on a worker thread. The
//! shards synchronize with a barrier-based variant of conservative
//! (Chandy–Misra–Bryant) lookahead: every link latency is a floor on how
//! soon one shard's events can influence another, so each round the
//! coordinator grants every shard a *safe window* it may process without
//! hearing from anyone else.
//!
//! # The horizon rule
//!
//! Let `next[i]` be shard `i`'s earliest pending event (queued or already
//! in its inbox) and `L(j, i)` the minimum latency over links crossing
//! from shard `j` to shard `i`. A naive per-neighbour window
//! `min_j(next[j] + L(j, i))` is **unsafe**: an idle intermediate shard
//! has `next = ∞` but can still relay traffic (A→B→C with B idle must not
//! unblock C past A's reach). The coordinator therefore first computes
//! each shard's *earliest possible action*
//!
//! ```text
//! ea[i] = min( next[i], min over links j→i of ea[j] + L(j, i) )
//! ```
//!
//! by relaxing to a fixpoint (a Bellman–Ford pass over the shard graph;
//! intra-shard transit is conservatively treated as free). `ea[i]` is a
//! true lower bound on the timestamp of any event that can *ever* occur
//! on shard `i` given current global state. The granted window is then
//!
//! ```text
//! bound[i] = min over links j→i of ea[j] + L(j, i)    (∞ if no such link)
//! ```
//!
//! and shard `i` processes events with `at < bound[i]`. Any frame another
//! shard ever sends it arrives at `≥ ea[j] + L(j, i) ≥ bound[i]`, so
//! nothing processed this round can be invalidated later. Because every
//! cross-shard link has `L ≥ 1` (enforced at plan time), the shard
//! holding the globally earliest event always has `next < bound` — each
//! round makes progress and the protocol cannot deadlock.
//!
//! # Round amortization: chained windows and peer mailboxes
//!
//! One window per coordinator rendezvous would make the rendezvous the
//! dominant cost (it once was: a command/reply channel pair per shard
//! per window, with cross-shard frames routed one `RemoteEvent` at a
//! time through the coordinator). Instead the coordinator grants each
//! rendezvous a *chain* of windows `b_1 .. b_m` computed pessimistically
//! up front: `b_1` comes from the true per-shard `next` values, and each
//! later step substitutes the previous bounds for `next` (a shard that
//! processed window `k` has nothing left below `b_k[i]`, and the
//! relaxation accounts for anything still in flight), so
//! `b_{k+1} = bound(relax(b_k))`. Every finite bound advances by at
//! least the minimum cross-link latency per step, and frames produced in
//! window `k` are exchanged **directly between workers** at the window
//! boundary: one batched buffer per (sender, receiver) linked pair,
//! through a mutex-and-condvar mailbox with a monotone publish counter.
//! A worker waits only for its in-neighbours to finish the previous
//! window — not for the whole fleet — then drains, injects, and keeps
//! going. The coordinator is only consulted every `m` windows
//! ([`ShardedSimulator::set_chain_depth`], default
//! [`DEFAULT_CHAIN_DEPTH`]), and a final boundary exchange before each
//! reply leaves the mailboxes empty so replies carry plain queue heads.
//!
//! # Why bit-identity holds
//!
//! Event tiebreak keys pack `(source node, per-source count)`
//! ([`crate::sched`]), so a shard assigns a frame exactly the key the
//! sequential run would have assigned — no global counter needed. Within
//! a round, same-timestamp events on different shards are causally
//! independent (any cross influence lands `≥ L ≥ 1` ns later), and
//! per-link transmitter state lives entirely on the sending shard, so
//! each shard's pop sequence is precisely the sequential `(time, seq)`
//! drain order restricted to its own nodes. Merging per-node streams back
//! together therefore reproduces the sequential execution bit for bit;
//! `tests/shard_diff.rs` and the CI smoke step enforce this.
//!
//! Telemetry follows the same discipline: workers never share a
//! registry. Each shard records into a **private** registry (event
//! capacity cloned from the caller's), and after the run the coordinator
//! merges the per-shard final snapshots in shard-index order
//! ([`Snapshot::merged`]) and absorbs the result into the caller's
//! registry — so the observable output is a pure function of the
//! simulated execution, never of how the worker threads were scheduled.
//! The `P4AUTH_SHARD_STAGGER` knob (and
//! [`ShardedSimulator::set_stagger`]) injects deterministic per-worker
//! sleeps before each window publish and each reply, so scheduling-
//! dependence bugs surface even on a single-core runner.

use crate::sched::SchedulerKind;
use crate::sim::{SimNode, SimStats, Simulator};
use crate::time::SimTime;
use crate::timeline::Timeline;
use crate::topology::Topology;
use p4auth_telemetry::{Registry, Snapshot};
use p4auth_wire::ids::SwitchId;
use std::collections::BTreeSet;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::sim::RemoteEvent;

/// Default number of safe windows granted per coordinator rendezvous
/// (see [`ShardedSimulator::set_chain_depth`]).
pub const DEFAULT_CHAIN_DEPTH: usize = 8;

/// An assignment of every topology node to a shard.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    nshards: usize,
    /// Shard index dense by raw switch id; `u32::MAX` for ids that are not
    /// topology nodes.
    assign: Vec<u32>,
}

impl ShardPlan {
    fn from_fn(topology: &Topology, nshards: usize, f: impl Fn(SwitchId) -> usize) -> Self {
        assert!(nshards >= 1, "need at least one shard");
        let max_id = topology
            .nodes()
            .iter()
            .map(|n| n.value() as usize)
            .max()
            .unwrap_or(0);
        let mut assign = vec![u32::MAX; max_id + 1];
        for &node in topology.nodes() {
            let s = f(node);
            assert!(s < nshards, "shard index {s} out of range for {node}");
            assign[node.value() as usize] = s as u32;
        }
        let plan = ShardPlan { nshards, assign };
        plan.validate_cross_latencies(topology);
        plan
    }

    /// Partitions along the topology's partition hints (fat-tree pods and
    /// core groups): community `c` lands on shard `c % nshards`, so pods
    /// stay whole and only the sparse agg–core cut crosses shards. Nodes
    /// without a hint — and hint-free topologies entirely — fall back to
    /// round-robin in node order.
    ///
    /// # Panics
    ///
    /// Panics if `nshards == 0` or a cross-shard link has zero latency
    /// (zero lookahead would livelock the safe-window protocol).
    pub fn pod_aligned(topology: &Topology, nshards: usize) -> Self {
        let mut fallback = 0usize;
        let nodes = topology.nodes().to_vec();
        let mut by_node = std::collections::HashMap::new();
        for &node in &nodes {
            let s = match topology.partition_hint(node) {
                Some(c) => c as usize % nshards,
                None => {
                    let s = fallback % nshards;
                    fallback += 1;
                    s
                }
            };
            by_node.insert(node, s);
        }
        Self::from_fn(topology, nshards, |n| by_node[&n])
    }

    /// Partitions nodes round-robin in node order — the fallback for
    /// arbitrary topologies with no locality to exploit.
    ///
    /// # Panics
    ///
    /// Panics if `nshards == 0` or a cross-shard link has zero latency.
    pub fn round_robin(topology: &Topology, nshards: usize) -> Self {
        let nodes = topology.nodes().to_vec();
        let mut by_node = std::collections::HashMap::new();
        for (i, &node) in nodes.iter().enumerate() {
            by_node.insert(node, i % nshards);
        }
        Self::from_fn(topology, nshards, |n| by_node[&n])
    }

    /// Partitions with an explicit assignment function (tests and custom
    /// planners).
    ///
    /// # Panics
    ///
    /// Panics if `nshards == 0`, `f` returns an out-of-range shard, or a
    /// cross-shard link has zero latency.
    pub fn custom(topology: &Topology, nshards: usize, f: impl Fn(SwitchId) -> usize) -> Self {
        Self::from_fn(topology, nshards, f)
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.nshards
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not part of the planned topology.
    pub fn shard_of(&self, node: SwitchId) -> usize {
        let s = self
            .assign
            .get(node.value() as usize)
            .copied()
            .unwrap_or(u32::MAX);
        assert!(s != u32::MAX, "node {node} is not in the shard plan");
        s as usize
    }

    /// Minimum latency over links crossing from shard `from` to shard
    /// `to`, or `None` when no link crosses that pair. Symmetric (links
    /// are bidirectional).
    pub fn min_cross_latency_ns(&self, topology: &Topology, from: usize, to: usize) -> Option<u64> {
        topology
            .links()
            .iter()
            .filter(|l| {
                let (sa, sb) = (self.shard_of(l.a.node), self.shard_of(l.b.node));
                (sa == from && sb == to) || (sa == to && sb == from)
            })
            .map(|l| l.latency_ns)
            .min()
    }

    /// Pairwise cross-shard minimum latencies: `lat[j][i]` bounds how soon
    /// shard `j` can influence shard `i` directly.
    fn cross_latency_matrix(&self, topology: &Topology) -> Vec<Vec<Option<u64>>> {
        let n = self.nshards;
        let mut lat = vec![vec![None; n]; n];
        for link in topology.links() {
            let (sa, sb) = (self.shard_of(link.a.node), self.shard_of(link.b.node));
            if sa == sb {
                continue;
            }
            for (j, i) in [(sa, sb), (sb, sa)] {
                let slot: &mut Option<u64> = &mut lat[j][i];
                *slot = Some(slot.map_or(link.latency_ns, |v| v.min(link.latency_ns)));
            }
        }
        lat
    }

    fn validate_cross_latencies(&self, topology: &Topology) {
        for link in topology.links() {
            let (sa, sb) = (self.shard_of(link.a.node), self.shard_of(link.b.node));
            assert!(
                sa == sb || link.latency_ns >= 1,
                "cross-shard link {} -- {} has zero latency: zero lookahead \
                 would livelock the safe-window protocol",
                link.a,
                link.b
            );
        }
    }
}

/// Outcome of a sharded run.
///
/// The simulation fields (`events`, `stats`, `now`) are deterministic
/// and equal the sequential run's. The coordination fields (`rounds`,
/// `windows`, `frames_exchanged`) are determined by the protocol and
/// workload alone, so they too are reproducible — but they have no
/// sequential counterpart. `barrier_wait_ns` is wall-clock and therefore
/// **not** deterministic; keep it out of anything diffed for
/// bit-identity.
#[derive(Clone, Copy, Debug)]
pub struct ShardRunReport {
    /// Events processed across all shards (equals the sequential count).
    pub events: u64,
    /// Aggregated statistics (field-wise sum over shards; equals the
    /// sequential [`SimStats`]).
    pub stats: SimStats,
    /// Final simulated time: the max over shard clocks, which is the time
    /// of the globally last event — exactly the sequential final `now`.
    pub now: SimTime,
    /// Coordinator rendezvous executed (each grants a chain of windows).
    pub rounds: u64,
    /// Safe windows processed across all rounds (`>= rounds`; the ratio
    /// is the chaining amortization factor).
    pub windows: u64,
    /// Cross-shard frames exchanged through the peer mailboxes.
    pub frames_exchanged: u64,
    /// Wall-clock nanoseconds the coordinator spent blocked waiting for
    /// chain replies — the rendezvous cost made visible.
    pub barrier_wait_ns: u64,
}

/// Per-rendezvous synchronization record from
/// [`ShardedSimulator::run_audited`], for invariant checking in tests.
#[derive(Clone, Debug)]
pub struct RoundAudit {
    /// Each shard's earliest pending event at the rendezvous, `None`
    /// when idle. The first window's bounds derive from these; later
    /// windows in the chain derive from the previous window's bounds.
    pub next_at_ns: Vec<Option<u64>>,
    /// The chain of granted windows, in execution order.
    pub windows: Vec<WindowAudit>,
}

/// One granted safe window within a rendezvous chain.
#[derive(Clone, Debug)]
pub struct WindowAudit {
    /// The bound granted to each shard (exclusive; `u64::MAX` means
    /// unbounded).
    pub bound_ns: Vec<u64>,
    /// Timestamp of the latest event each shard popped in this window,
    /// `None` when it processed nothing.
    pub max_popped_ns: Vec<Option<u64>>,
}

enum ToWorker {
    /// Process a chain of safe windows (bounds in execution order),
    /// exchanging frames with linked peers at every window boundary, and
    /// reply once at the end of the chain.
    Chain { bounds_ns: Vec<u64> },
    /// End of run. Workers with a timeline recorder flush it to
    /// `flush_to_ns` — the *global* final clock, so every shard's tail
    /// capture carries the same stamp a sequential recorder would use.
    Finish { flush_to_ns: u64 },
}

struct ChainReply {
    /// Queue head after the chain. The final boundary exchange already
    /// pulled every in-flight frame into the queue, so this alone is the
    /// shard's true horizon — the coordinator routes no frames.
    next_at_ns: Option<u64>,
    processed: u64,
    /// Per-window `(processed, latest pop)` in chain order, for audits.
    windows: Vec<(u64, Option<u64>)>,
    /// Frames this shard pushed to peer mailboxes during the chain.
    frames_sent: u64,
    /// The shard's clock after the chain (moves only on pops).
    now_ns: u64,
}

/// A single-producer batched frame channel for one directed linked shard
/// pair. The sender pushes its whole per-peer outbound buffer once per
/// window boundary and bumps `published`; the receiver waits until the
/// counter covers the windows it needs, then drains. Counters are
/// level-triggered, so an early drain (the chain-end exchange) and the
/// next window's drain overlap harmlessly.
#[derive(Default)]
struct Mailbox {
    state: Mutex<MailboxState>,
    ready: Condvar,
}

#[derive(Default)]
struct MailboxState {
    /// Publish count: 1 after the pre-run publish, `w + 1` after the
    /// sender finishes window `w`.
    published: u64,
    frames: Vec<RemoteEvent>,
}

impl Mailbox {
    fn publish(&self, frames: Vec<RemoteEvent>) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.frames.extend(frames);
        st.published += 1;
        self.ready.notify_all();
    }

    fn drain_when(&self, published_at_least: u64) -> Vec<RemoteEvent> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.published < published_at_least {
            st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        std::mem::take(&mut st.frames)
    }
}

/// Raw per-shard timeline capture: `(baseline, boundary snapshots,
/// final)` of the worker's private registry.
type ShardCaptures = (Snapshot, Vec<(u64, Snapshot)>, Snapshot);

/// The spans a worker's private trace ring captured plus its drop
/// count, handed back for the shard-index-order trace merge.
type ShardTrace = (Vec<p4auth_telemetry::SpanRecord>, u64);

/// What a worker hands back at join: its stats, final clock, the final
/// snapshot of its private registry (when the caller attached
/// telemetry), raw timeline captures (when exporting), and its trace
/// ring contents (when the caller's registry has tracing enabled).
type WorkerOutcome = (
    SimStats,
    SimTime,
    Option<Snapshot>,
    Option<ShardCaptures>,
    Option<ShardTrace>,
);

/// A partitioned simulator: builds one [`Simulator`] per shard on worker
/// threads and drives them in chained safe-window rounds (see the module
/// docs).
///
/// Usage mirrors [`Simulator`]: register nodes, schedule boot timers,
/// optionally attach telemetry, then [`ShardedSimulator::run`] to
/// completion. Workers record into per-shard private registries that the
/// coordinator merges in shard-index order, so an attached registry ends
/// up byte-identical regardless of thread scheduling — including its
/// event log.
pub struct ShardedSimulator {
    topology: Topology,
    plan: ShardPlan,
    nodes: Vec<Option<Box<dyn SimNode + Send>>>,
    /// Boot timers `(node, timer_id, delay_ns)` in registration order.
    timers: Vec<(SwitchId, u64, u64)>,
    /// The caller's registry — the merge *sink*, never handed to workers.
    telemetry: Option<Arc<Registry>>,
    export_interval_ns: Option<u64>,
    /// Safe windows granted per coordinator rendezvous.
    chain_depth: usize,
    /// Deterministic per-(shard, window) sleep schedule in ns; empty
    /// disables staggering.
    stagger_ns: Vec<u64>,
    /// Fault schedule every worker installs (see
    /// [`ShardedSimulator::set_fault_plan`]).
    fault_plan: Option<crate::fault::FaultPlan>,
}

impl ShardedSimulator {
    /// Creates a sharded simulator over `topology` partitioned by `plan`.
    ///
    /// Honors the `P4AUTH_SHARD_STAGGER` environment variable (a base
    /// delay in ns) by installing a default stagger schedule — see
    /// [`ShardedSimulator::set_stagger`].
    pub fn new(topology: Topology, plan: ShardPlan) -> Self {
        let max_id = topology
            .nodes()
            .iter()
            .map(|n| n.value() as usize)
            .max()
            .unwrap_or(0);
        ShardedSimulator {
            topology,
            plan,
            nodes: (0..=max_id).map(|_| None).collect(),
            timers: Vec::new(),
            telemetry: None,
            export_interval_ns: None,
            chain_depth: DEFAULT_CHAIN_DEPTH,
            stagger_ns: stagger_from_env(),
            fault_plan: None,
        }
    }

    /// The shard plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Registers the behaviour for `id` (must be `Send`: it is shipped to
    /// its owning shard's worker thread).
    ///
    /// # Panics
    ///
    /// Panics if the node is not in the topology or already registered.
    pub fn register_node(&mut self, id: SwitchId, node: Box<dyn SimNode + Send>) {
        assert!(
            self.topology.nodes().contains(&id),
            "node {id} not in topology"
        );
        let slot = &mut self.nodes[id.value() as usize];
        assert!(slot.is_none(), "node {id} registered twice");
        *slot = Some(node);
    }

    /// Schedules a boot timer for `node`, `delay_ns` after t=0 (the
    /// sharded equivalent of calling [`Simulator::schedule_timer`] before
    /// the run starts).
    pub fn schedule_timer(&mut self, node: SwitchId, timer_id: u64, delay_ns: u64) {
        self.timers.push((node, timer_id, delay_ns));
    }

    /// Attaches a telemetry registry. The registry is **never** shared
    /// with the workers: each shard records into a private registry
    /// (event-log capacity cloned from this one) and, when the run
    /// completes, the coordinator merges the per-shard snapshots in
    /// shard-index order and absorbs the result here
    /// ([`Registry::absorb`]). Counters, histograms and the event log
    /// therefore come out byte-identical no matter how the worker
    /// threads were scheduled or how many cores ran them. May be
    /// combined with [`ShardedSimulator::set_export_interval`]; the same
    /// private registries serve both.
    pub fn set_telemetry(&mut self, registry: Arc<Registry>) {
        self.telemetry = Some(registry);
    }

    /// Starts periodic telemetry export (see
    /// [`Simulator::set_export_interval`]). Each worker records into its
    /// private registry at safe-window pop boundaries; the coordinator
    /// merges per-shard captures in shard-index order into one
    /// [`Timeline`] that is bit-identical to a sequential recording.
    /// Collect it with [`ShardedSimulator::run_timeline`].
    ///
    /// # Panics
    ///
    /// Panics if `interval_ns == 0`.
    pub fn set_export_interval(&mut self, interval_ns: u64) {
        assert!(interval_ns > 0, "export interval must be positive");
        self.export_interval_ns = Some(interval_ns);
    }

    /// Installs a [`crate::fault::FaultPlan`] (the sharded equivalent of
    /// [`Simulator::install_fault_plan`]). Every worker installs the full
    /// plan — each shard must flip its own topology copy and notify its
    /// own nodes at exactly the scheduled instants — but only the shard
    /// owning a link's `a` endpoint tallies the event, so reported event
    /// counts and `faults_applied` match a sequential run exactly.
    pub fn set_fault_plan(&mut self, plan: crate::fault::FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Sets how many safe windows each coordinator rendezvous grants
    /// (default [`DEFAULT_CHAIN_DEPTH`]). Depth 1 reproduces the
    /// unchained one-window-per-round protocol; deeper chains amortize
    /// the rendezvous over more work at the cost of pessimistic (but
    /// still safe) later windows. Output is bit-identical at any depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn set_chain_depth(&mut self, depth: usize) {
        assert!(depth >= 1, "chain depth must be at least 1");
        self.chain_depth = depth;
    }

    /// Installs a deterministic stagger schedule (test/CI knob): before
    /// publishing each window boundary and before each reply, worker `s`
    /// at window `w` sleeps `schedule[(7·s + 13·w) mod len]` wall-clock
    /// nanoseconds. This perturbs thread interleaving adversarially —
    /// exactly what a multi-core scheduler would do — without touching
    /// simulated time, so any output difference it provokes is a
    /// determinism bug. An empty schedule disables staggering. The
    /// `P4AUTH_SHARD_STAGGER` environment variable (base ns) installs a
    /// scattered default schedule at construction; this setter overrides
    /// it (tests prefer it — it needs no process-global state).
    pub fn set_stagger(&mut self, schedule_ns: Vec<u64>) {
        self.stagger_ns = schedule_ns;
    }

    /// Runs to completion and reports the aggregate outcome.
    pub fn run(self) -> ShardRunReport {
        self.run_inner(false).0
    }

    /// Runs to completion, additionally recording every synchronization
    /// round for lookahead-invariant checks in tests.
    pub fn run_audited(self) -> (ShardRunReport, Vec<RoundAudit>) {
        let (report, audits, _) = self.run_inner(true);
        (report, audits)
    }

    /// Runs to completion and returns the merged telemetry timeline.
    ///
    /// # Panics
    ///
    /// Panics if [`ShardedSimulator::set_export_interval`] was not
    /// called.
    pub fn run_timeline(self) -> (ShardRunReport, Timeline) {
        assert!(
            self.export_interval_ns.is_some(),
            "set_export_interval must be called before run_timeline"
        );
        let (report, _, timeline) = self.run_inner(false);
        (report, timeline.expect("export interval was set"))
    }

    fn run_inner(mut self, audit: bool) -> (ShardRunReport, Vec<RoundAudit>, Option<Timeline>) {
        let n = self.plan.nshards();
        let lat = self.plan.cross_latency_matrix(&self.topology);
        let depth = self.chain_depth;
        let stagger = Arc::new(self.stagger_ns.clone());

        // Split registered nodes and boot timers by owning shard.
        let mut shard_nodes: Vec<Vec<(SwitchId, Box<dyn SimNode + Send>)>> =
            (0..n).map(|_| Vec::new()).collect();
        for raw in 0..self.nodes.len() {
            if let Some(node) = self.nodes[raw].take() {
                let id = SwitchId::new(raw as u16);
                shard_nodes[self.plan.shard_of(id)].push((id, node));
            }
        }
        let mut shard_timers: Vec<Vec<(SwitchId, u64, u64)>> = (0..n).map(|_| Vec::new()).collect();
        for (node, timer_id, delay_ns) in self.timers.drain(..) {
            shard_timers[self.plan.shard_of(node)].push((node, timer_id, delay_ns));
        }

        // One mailbox per directed linked shard pair: frames flow between
        // workers directly, never through the coordinator.
        let mailboxes: Vec<Vec<Option<Arc<Mailbox>>>> = (0..n)
            .map(|j| {
                (0..n)
                    .map(|i| lat[j][i].map(|_| Arc::new(Mailbox::default())))
                    .collect()
            })
            .collect();

        // Spawn one worker per shard. Each builds its own Simulator from
        // the shared topology, routing by the plan's owner assignment.
        let mut cmd_txs: Vec<SyncSender<ToWorker>> = Vec::with_capacity(n);
        let mut reply_rxs: Vec<Receiver<ChainReply>> = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for s in 0..n {
            let (cmd_tx, cmd_rx) = sync_channel::<ToWorker>(1);
            let (reply_tx, reply_rx) = sync_channel::<ChainReply>(1);
            let setup = WorkerSetup {
                shard: s,
                nshards: n,
                topology: self.topology.clone(),
                assign: self.plan.assign.clone(),
                nodes: std::mem::take(&mut shard_nodes[s]),
                timers: std::mem::take(&mut shard_timers[s]),
                event_capacity: self.telemetry.as_ref().map(|r| r.event_capacity()),
                trace_capacity: self.telemetry.as_ref().map_or(0, |r| r.trace_capacity()),
                export_interval_ns: self.export_interval_ns,
                stagger_ns: stagger.clone(),
                fault_plan: self.fault_plan.clone(),
                out_links: (0..n)
                    .filter_map(|i| mailboxes[s][i].clone().map(|mb| (i, mb)))
                    .collect(),
                in_links: (0..n).filter_map(|j| mailboxes[j][s].clone()).collect(),
                cmd_rx,
                reply_tx,
            };
            handles.push(thread::spawn(move || worker(setup)));
            cmd_txs.push(cmd_tx);
            reply_rxs.push(reply_rx);
        }

        // Initial replies carry each shard's boot-timer horizon.
        let mut replies: Vec<ChainReply> = reply_rxs
            .iter()
            .map(|rx| rx.recv().expect("worker died before first reply"))
            .collect();
        let mut audits = Vec::new();
        let mut events = 0u64;
        let mut rounds = 0u64;
        let mut windows = 0u64;
        let mut frames_exchanged = 0u64;
        let mut barrier_wait = Duration::ZERO;

        // The earliest-possible-action fixpoint over the shard graph
        // (Bellman–Ford relaxation), from any per-shard horizon vector.
        let relax = |mut ea: Vec<u64>| {
            loop {
                let mut changed = false;
                for i in 0..n {
                    for j in 0..n {
                        if let Some(l) = lat[j][i] {
                            let via = ea[j].saturating_add(l);
                            if via < ea[i] {
                                ea[i] = via;
                                changed = true;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            ea
        };
        let bound_of = |ea: &[u64]| -> Vec<u64> {
            (0..n)
                .map(|i| {
                    (0..n)
                        .filter_map(|j| lat[j][i].map(|l| ea[j].saturating_add(l)))
                        .min()
                        .unwrap_or(u64::MAX)
                })
                .collect()
        };

        loop {
            // The chain-end exchange pulled every in-flight frame into
            // the owning shard's queue, so the reply horizons are the
            // whole story.
            let next: Vec<u64> = replies
                .iter()
                .map(|r| r.next_at_ns.unwrap_or(u64::MAX))
                .collect();
            if next.iter().all(|&v| v == u64::MAX) {
                break;
            }

            // Build the chain of granted windows: the first from the true
            // horizons, each later one by substituting the previous
            // bounds (a shard that processed window k has nothing left
            // below b_k, and the relaxation covers frames still in
            // flight). Finite bounds advance ≥ L_min per step; stop early
            // if a step grants nothing new.
            let mut chain: Vec<Vec<u64>> = Vec::with_capacity(depth);
            let mut cur = next.clone();
            for _ in 0..depth {
                let b = bound_of(&relax(cur));
                if chain.last() == Some(&b) {
                    break;
                }
                cur = b.clone();
                chain.push(b);
            }

            rounds += 1;
            windows += chain.len() as u64;
            for (i, tx) in cmd_txs.iter().enumerate() {
                tx.send(ToWorker::Chain {
                    bounds_ns: chain.iter().map(|w| w[i]).collect(),
                })
                .expect("worker hung up mid-run");
            }
            let wait_start = Instant::now();
            let mut processed_this_round = 0u64;
            for (i, rx) in reply_rxs.iter().enumerate() {
                let reply = rx.recv().expect("worker died mid-round");
                processed_this_round += reply.processed;
                frames_exchanged += reply.frames_sent;
                replies[i] = reply;
            }
            barrier_wait += wait_start.elapsed();
            events += processed_this_round;
            assert!(
                processed_this_round > 0,
                "safe-window round made no progress (lookahead bug)"
            );
            if audit {
                audits.push(RoundAudit {
                    next_at_ns: next.iter().map(|&v| (v != u64::MAX).then_some(v)).collect(),
                    windows: chain
                        .iter()
                        .enumerate()
                        .map(|(w, bound_ns)| WindowAudit {
                            bound_ns: bound_ns.clone(),
                            max_popped_ns: replies.iter().map(|r| r.windows[w].1).collect(),
                        })
                        .collect(),
                });
            }
        }

        // The global final clock: the time of the last event popped
        // anywhere. Every recorder flushes to it so tail captures are
        // stamped exactly as a sequential run's would be.
        let global_end_ns = replies.iter().map(|r| r.now_ns).max().unwrap_or(0);
        for tx in &cmd_txs {
            tx.send(ToWorker::Finish {
                flush_to_ns: global_end_ns,
            })
            .expect("worker hung up at finish");
        }
        let mut stats = SimStats::default();
        let mut now = SimTime::ZERO;
        let mut snapshots: Vec<Option<Snapshot>> = Vec::with_capacity(handles.len());
        let mut captures: Vec<Option<ShardCaptures>> = Vec::with_capacity(handles.len());
        let mut traces: Vec<Option<ShardTrace>> = Vec::with_capacity(handles.len());
        for handle in handles {
            let (shard_stats, shard_now, shard_snap, shard_caps, shard_trace) =
                handle.join().expect("worker panicked");
            stats.frames_delivered += shard_stats.frames_delivered;
            stats.frames_tapped_dropped += shard_stats.frames_tapped_dropped;
            stats.frames_tapped_modified += shard_stats.frames_tapped_modified;
            stats.frames_undeliverable += shard_stats.frames_undeliverable;
            stats.timers_fired += shard_stats.timers_fired;
            stats.faults_applied += shard_stats.faults_applied;
            now = now.max(shard_now);
            snapshots.push(shard_snap);
            captures.push(shard_caps);
            traces.push(shard_trace);
        }
        // Deterministic telemetry hand-back: merge the per-shard final
        // snapshots in shard-index order, then absorb into the caller's
        // registry. Trace rings follow the same discipline — absorbed in
        // shard-index order, drop counts carried along — so the caller's
        // canonical (sorted) span stream is engine-invariant.
        if let Some(user) = &self.telemetry {
            let parts: Vec<Snapshot> = snapshots
                .into_iter()
                .map(|s| s.expect("telemetry attached but a worker recorded nothing"))
                .collect();
            user.absorb(&Snapshot::merged(&parts));
            for part in traces.into_iter().flatten() {
                user.trace().absorb(&part.0, part.1);
            }
        }
        let timeline = self
            .export_interval_ns
            .map(|interval| merge_timelines(interval, captures));
        (
            ShardRunReport {
                events,
                stats,
                now,
                rounds,
                windows,
                frames_exchanged,
                barrier_wait_ns: barrier_wait.as_nanos() as u64,
            },
            audits,
            timeline,
        )
    }
}

/// Default stagger schedule from the `P4AUTH_SHARD_STAGGER` environment
/// variable (a base delay in ns; unset, unparsable or 0 disables). The
/// schedule scatters multiples of `base / 2` so different (shard,
/// window) pairs land on different delays.
fn stagger_from_env() -> Vec<u64> {
    let Ok(v) = std::env::var("P4AUTH_SHARD_STAGGER") else {
        return Vec::new();
    };
    let base: u64 = v.trim().parse().unwrap_or(0);
    if base == 0 {
        return Vec::new();
    }
    (0..8).map(|i| base / 2 * ((5 * i + 3) % 8)).collect()
}

/// The deterministic stagger sleep for worker `shard` at window
/// `window` (no-op on an empty schedule).
fn stagger_sleep(schedule: &[u64], shard: usize, window: u64) {
    if schedule.is_empty() {
        return;
    }
    let idx = (shard as u64)
        .wrapping_mul(7)
        .wrapping_add(window.wrapping_mul(13)) as usize
        % schedule.len();
    if schedule[idx] > 0 {
        thread::sleep(Duration::from_nanos(schedule[idx]));
    }
}

/// Merges per-shard capture streams into the timeline a sequential
/// recording would have produced.
///
/// Shards capture full snapshots of their private registries; metric
/// updates are attributed to the shard that pops the causing event
/// (frame telemetry is recorded sender-side at divert time), so the
/// per-shard registries partition the sequential one. At every grid
/// boundary any shard captured, each shard's latest capture at or before
/// it is carried forward (an uncaptured boundary means that shard's
/// state did not change) and the full states are merged in shard-index
/// order — giving exactly the sequential state before that boundary,
/// including histogram min/max. Deltas then come from
/// [`Timeline::from_captures`], the same code path the sequential
/// recorder uses, so the result is structurally bit-identical.
fn merge_timelines(interval_ns: u64, captures: Vec<Option<ShardCaptures>>) -> Timeline {
    let parts: Vec<ShardCaptures> = captures
        .into_iter()
        .map(|c| c.expect("export interval set but a worker recorded nothing"))
        .collect();
    let baselines: Vec<Snapshot> = parts.iter().map(|(b, _, _)| b.clone()).collect();
    let finals: Vec<Snapshot> = parts.iter().map(|(_, _, f)| f.clone()).collect();
    let boundaries: BTreeSet<u64> = parts
        .iter()
        .flat_map(|(_, caps, _)| caps.iter().map(|(t, _)| *t))
        .collect();
    // Carried-forward state per shard, advanced through each shard's
    // captures as the boundary cursor moves.
    let mut cur: Vec<Snapshot> = baselines.clone();
    let mut idx = vec![0usize; parts.len()];
    let mut merged_captures = Vec::with_capacity(boundaries.len());
    for t in boundaries {
        for (s, (_, caps, _)) in parts.iter().enumerate() {
            while idx[s] < caps.len() && caps[idx[s]].0 <= t {
                cur[s] = caps[idx[s]].1.clone();
                idx[s] += 1;
            }
        }
        merged_captures.push((t, Snapshot::merged(&cur)));
    }
    Timeline::from_captures(
        interval_ns,
        Snapshot::merged(&baselines),
        merged_captures,
        Snapshot::merged(&finals),
    )
}

/// Everything a worker thread needs, bundled at spawn time.
struct WorkerSetup {
    shard: usize,
    nshards: usize,
    topology: Topology,
    /// Owning shard per node, dense by raw id (the plan's assignment).
    assign: Vec<u32>,
    nodes: Vec<(SwitchId, Box<dyn SimNode + Send>)>,
    timers: Vec<(SwitchId, u64, u64)>,
    /// `Some(capacity)` when the caller attached telemetry: the worker
    /// records into a private registry with a matching event capacity
    /// and returns its final snapshot for the shard-index merge.
    event_capacity: Option<usize>,
    /// Trace-ring capacity for the worker's private registry (0 when the
    /// caller's registry has tracing disabled), sized to match the
    /// caller's exactly like `event_capacity`.
    trace_capacity: usize,
    export_interval_ns: Option<u64>,
    stagger_ns: Arc<Vec<u64>>,
    /// Fault schedule to install after shard routing (owner tallying
    /// depends on the route being set first).
    fault_plan: Option<crate::fault::FaultPlan>,
    /// Mailboxes this worker publishes to, by ascending peer index.
    out_links: Vec<(usize, Arc<Mailbox>)>,
    /// Mailboxes this worker drains, by ascending peer index.
    in_links: Vec<Arc<Mailbox>>,
    cmd_rx: Receiver<ToWorker>,
    reply_tx: SyncSender<ChainReply>,
}

/// Pushes the per-peer outbound buffers to the peer mailboxes (one
/// publish per out-link, empty or not — the counters must advance
/// uniformly). Returns the number of frames sent.
fn publish_boundary(sim: &mut Simulator, out_links: &[(usize, Arc<Mailbox>)]) -> u64 {
    let mut sent = 0u64;
    for (peer, mb) in out_links {
        let frames = sim.take_outbound_for(*peer);
        sent += frames.len() as u64;
        mb.publish(frames);
    }
    debug_assert_eq!(
        sim.outbound_pending(),
        0,
        "a frame crossed shards without a link to its owner"
    );
    sent
}

/// Worker-thread body: owns one shard's [`Simulator`], processes granted
/// window chains — exchanging frames with linked peers at every window
/// boundary — and answers the coordinator once per chain until told to
/// finish.
fn worker(setup: WorkerSetup) -> WorkerOutcome {
    let WorkerSetup {
        shard,
        nshards,
        topology,
        assign,
        nodes,
        timers,
        event_capacity,
        trace_capacity,
        export_interval_ns,
        stagger_ns,
        fault_plan,
        out_links,
        in_links,
        cmd_rx,
        reply_tx,
    } = setup;
    let mut sim = Simulator::with_scheduler(topology, SchedulerKind::Calendar);
    sim.set_shard_route(assign, nshards, shard as u32);
    // A private registry whenever anything observes this run: both the
    // telemetry merge and the timeline merge read from it. Never the
    // caller's registry — see the module docs.
    let registry: Option<Arc<Registry>> = match (event_capacity, export_interval_ns) {
        (Some(cap), _) if cap > 0 || trace_capacity > 0 => {
            Some(Arc::new(Registry::with_capacities(cap, trace_capacity)))
        }
        (Some(_), _) | (None, Some(_)) => Some(Arc::new(Registry::new())),
        (None, None) => None,
    };
    if let Some(r) = &registry {
        sim.set_telemetry(r.clone());
    }
    for (id, node) in nodes {
        sim.register_node(id, node);
    }
    for (node, timer_id, delay_ns) in timers {
        sim.schedule_timer(node, timer_id, delay_ns);
    }
    if let Some(plan) = &fault_plan {
        sim.install_fault_plan(plan);
    }
    if let Some(interval) = export_interval_ns {
        // After boot timers: setup-time pushes belong to the baseline,
        // exactly as in the sequential recording.
        sim.set_export_interval(interval);
    }
    // Pre-run publish (#1): peers' first drains must see a defined
    // state; nothing can be outbound yet (boot timers are local).
    publish_boundary(&mut sim, &out_links);
    // Completed windows, global across rounds: after window `w` this
    // worker has published `w + 1` times and needs `published >= w` from
    // each in-neighbour before processing window `w`.
    let mut window = 0u64;
    reply_tx
        .send(ChainReply {
            next_at_ns: sim.next_event_at().map(|t| t.as_ns()),
            processed: 0,
            windows: Vec::new(),
            frames_sent: 0,
            now_ns: sim.now().as_ns(),
        })
        .expect("coordinator hung up before first reply");
    // A Finish command or either channel closing ends the loop.
    let mut flush_to = None;
    loop {
        match cmd_rx.recv() {
            Ok(ToWorker::Chain { bounds_ns }) => {
                let mut processed_total = 0u64;
                let mut frames_sent = 0u64;
                let mut per_window = Vec::with_capacity(bounds_ns.len());
                for bound_ns in bounds_ns {
                    window += 1;
                    for mb in &in_links {
                        for ev in mb.drain_when(window) {
                            sim.inject_remote(ev);
                        }
                    }
                    let processed = sim.run_window(SimTime::from_ns(bound_ns));
                    let max_popped_ns = (processed > 0).then(|| sim.now().as_ns());
                    stagger_sleep(&stagger_ns, shard, window);
                    frames_sent += publish_boundary(&mut sim, &out_links);
                    processed_total += processed;
                    per_window.push((processed, max_popped_ns));
                }
                // Chain-end exchange: pull everything the peers sent
                // through their last window, so the reply's horizon
                // covers every in-flight frame and the mailboxes are
                // empty at the rendezvous.
                for mb in &in_links {
                    for ev in mb.drain_when(window + 1) {
                        sim.inject_remote(ev);
                    }
                }
                stagger_sleep(&stagger_ns, shard, window);
                let reply = ChainReply {
                    next_at_ns: sim.next_event_at().map(|t| t.as_ns()),
                    processed: processed_total,
                    windows: per_window,
                    frames_sent,
                    now_ns: sim.now().as_ns(),
                };
                if reply_tx.send(reply).is_err() {
                    break;
                }
            }
            Ok(ToWorker::Finish { flush_to_ns }) => {
                flush_to = Some(flush_to_ns);
                break;
            }
            Err(_) => break,
        }
    }
    if let Some(to_ns) = flush_to {
        sim.flush_timeline(SimTime::from_ns(to_ns));
    }
    let captures = sim
        .take_timeline_parts()
        .map(|(_, baseline, caps, fin)| (baseline, caps, fin));
    let snapshot = event_capacity
        .is_some()
        .then(|| registry.as_ref().expect("registry built above").snapshot());
    let trace = (trace_capacity > 0).then(|| {
        let log = registry.as_ref().expect("registry built above").trace();
        (log.records(), log.dropped())
    });
    (sim.stats(), sim.now(), snapshot, captures, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameBytes;
    use crate::sim::Outbox;
    use crate::topology::{Endpoint, LinkId};
    use p4auth_wire::ids::PortId;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Echo {
        arrivals: Arc<AtomicU64>,
        reply: bool,
    }

    impl SimNode for Echo {
        fn on_frame(&mut self, _: SimTime, ingress: PortId, payload: FrameBytes, out: &mut Outbox) {
            self.arrivals.fetch_add(1, Ordering::Relaxed);
            if self.reply {
                out.send_delayed(ingress, payload, 10);
            }
        }
        fn on_timer(&mut self, _: SimTime, _: u64, out: &mut Outbox) {
            out.send(PortId::new(1), vec![0xab]);
        }
    }

    fn two_node_topology() -> Topology {
        let mut t = Topology::new();
        t.add_node(SwitchId::new(1)).unwrap();
        t.add_node(SwitchId::new(2)).unwrap();
        t.add_link(
            Endpoint::new(SwitchId::new(1), PortId::new(1)),
            Endpoint::new(SwitchId::new(2), PortId::new(1)),
            1_000,
        )
        .unwrap();
        t
    }

    #[test]
    fn round_robin_plan_covers_every_node() {
        let t = two_node_topology();
        let plan = ShardPlan::round_robin(&t, 2);
        assert_eq!(plan.nshards(), 2);
        assert_ne!(
            plan.shard_of(SwitchId::new(1)),
            plan.shard_of(SwitchId::new(2))
        );
        assert_eq!(plan.min_cross_latency_ns(&t, 0, 1), Some(1_000));
    }

    #[test]
    fn pod_aligned_plan_keeps_pods_whole() {
        let ft = crate::fattree::FatTree::new(4);
        let t = ft.build(1_500);
        let plan = ShardPlan::pod_aligned(&t, 4);
        for pod in 0..4u16 {
            let home = plan.shard_of(ft.edge(pod, 0));
            for i in 0..2 {
                assert_eq!(plan.shard_of(ft.edge(pod, i)), home);
                assert_eq!(plan.shard_of(ft.agg(pod, i)), home);
            }
            for h in 0..4 {
                assert_eq!(plan.shard_of(ft.host(pod * 4 + h)), home);
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero latency")]
    fn zero_latency_cross_shard_link_rejected() {
        let mut t = Topology::new();
        t.add_node(SwitchId::new(1)).unwrap();
        t.add_node(SwitchId::new(2)).unwrap();
        t.add_link(
            Endpoint::new(SwitchId::new(1), PortId::new(1)),
            Endpoint::new(SwitchId::new(2), PortId::new(1)),
            0,
        )
        .unwrap();
        let _ = ShardPlan::round_robin(&t, 2);
    }

    #[test]
    fn sharded_ping_pong_matches_sequential() {
        // Sequential reference.
        let seq_arrivals = [Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0))];
        let mut seq = Simulator::with_scheduler(two_node_topology(), SchedulerKind::Calendar);
        seq.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: seq_arrivals[0].clone(),
                reply: false,
            }),
        );
        seq.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: seq_arrivals[1].clone(),
                reply: true,
            }),
        );
        seq.schedule_timer(SwitchId::new(1), 7, 50);
        let seq_events = seq.run_to_completion();

        // Sharded run, one node per shard.
        let t = two_node_topology();
        let plan = ShardPlan::round_robin(&t, 2);
        let arrivals = [Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0))];
        let mut sharded = ShardedSimulator::new(t, plan);
        sharded.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: arrivals[0].clone(),
                reply: false,
            }),
        );
        sharded.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: arrivals[1].clone(),
                reply: true,
            }),
        );
        sharded.schedule_timer(SwitchId::new(1), 7, 50);
        let report = sharded.run();

        assert_eq!(report.events, seq_events);
        assert_eq!(report.stats, seq.stats());
        assert_eq!(report.now, seq.now());
        for (a, b) in arrivals.iter().zip(&seq_arrivals) {
            assert_eq!(a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
        }
        assert!(report.rounds >= 1, "ping-pong needs at least one round");
        assert!(report.windows >= report.rounds, "chains grant ≥1 window");
        assert_eq!(report.frames_exchanged, 2, "one frame over, one echo back");
    }

    #[test]
    fn sharded_timeline_is_bit_identical_to_sequential() {
        // Sequential recording: telemetry, nodes, boot timer, then the
        // export interval — the same order the workers use.
        let mut seq = Simulator::with_scheduler(two_node_topology(), SchedulerKind::Calendar);
        seq.set_telemetry(Arc::new(Registry::new()));
        seq.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: Arc::new(AtomicU64::new(0)),
                reply: false,
            }),
        );
        seq.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: Arc::new(AtomicU64::new(0)),
                reply: true,
            }),
        );
        seq.schedule_timer(SwitchId::new(1), 7, 50);
        seq.set_export_interval(400);
        seq.run_to_completion();
        let seq_tl = seq.take_timeline().unwrap();

        let t = two_node_topology();
        let plan = ShardPlan::round_robin(&t, 2);
        let mut sharded = ShardedSimulator::new(t, plan);
        sharded.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: Arc::new(AtomicU64::new(0)),
                reply: false,
            }),
        );
        sharded.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: Arc::new(AtomicU64::new(0)),
                reply: true,
            }),
        );
        sharded.schedule_timer(SwitchId::new(1), 7, 50);
        sharded.set_export_interval(400);
        let (_, sharded_tl) = sharded.run_timeline();

        assert!(
            !seq_tl.entries.is_empty(),
            "the run must cross at least one boundary with changes"
        );
        assert_eq!(sharded_tl, seq_tl);
        assert_eq!(sharded_tl.to_json(), seq_tl.to_json());
        assert_eq!(sharded_tl.to_bin(), seq_tl.to_bin());
        assert_eq!(sharded_tl.reconstruct(), sharded_tl.final_snapshot);
    }

    /// Builds the standard ping-pong over a sharded sim; callers tweak
    /// the knobs before running.
    fn ping_pong_sharded() -> ShardedSimulator {
        let t = two_node_topology();
        let plan = ShardPlan::round_robin(&t, 2);
        let mut sharded = ShardedSimulator::new(t, plan);
        sharded.set_stagger(Vec::new()); // isolate from the env knob
        sharded.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: Arc::new(AtomicU64::new(0)),
                reply: false,
            }),
        );
        sharded.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: Arc::new(AtomicU64::new(0)),
                reply: true,
            }),
        );
        sharded.schedule_timer(SwitchId::new(1), 7, 50);
        sharded
    }

    #[test]
    fn sharded_telemetry_merges_into_the_callers_registry() {
        // Sequential reference with a shared registry, event log on.
        let seq_registry = Arc::new(Registry::with_event_capacity(64));
        let mut seq = Simulator::with_scheduler(two_node_topology(), SchedulerKind::Calendar);
        seq.set_telemetry(seq_registry.clone());
        seq.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: Arc::new(AtomicU64::new(0)),
                reply: false,
            }),
        );
        seq.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: Arc::new(AtomicU64::new(0)),
                reply: true,
            }),
        );
        seq.schedule_timer(SwitchId::new(1), 7, 50);
        seq.run_to_completion();

        // Sharded: the caller's registry is a merge sink for the
        // per-shard private registries.
        let registry = Arc::new(Registry::with_event_capacity(64));
        let mut sharded = ping_pong_sharded();
        sharded.set_telemetry(registry.clone());
        sharded.run();
        assert_eq!(
            registry.snapshot().to_json(),
            seq_registry.snapshot().to_json()
        );
    }

    #[test]
    fn sharded_trace_is_bit_identical_to_sequential_under_stagger() {
        // Sequential reference with tracing on.
        let seq_registry = Arc::new(Registry::with_capacities(64, 64));
        let mut seq = Simulator::with_scheduler(two_node_topology(), SchedulerKind::Calendar);
        seq.set_telemetry(seq_registry.clone());
        seq.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: Arc::new(AtomicU64::new(0)),
                reply: false,
            }),
        );
        seq.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: Arc::new(AtomicU64::new(0)),
                reply: true,
            }),
        );
        seq.schedule_timer(SwitchId::new(1), 7, 50);
        seq.run_to_completion();
        let reference = seq_registry.trace().sorted_records();
        assert!(!reference.is_empty(), "the ping-pong must emit frame spans");
        assert_eq!(seq_registry.trace().dropped(), 0);

        for schedule in [Vec::new(), vec![120_000, 0, 40_000]] {
            let registry = Arc::new(Registry::with_capacities(64, 64));
            let mut sharded = ping_pong_sharded();
            sharded.set_telemetry(registry.clone());
            sharded.set_stagger(schedule);
            sharded.run();
            assert_eq!(registry.trace().sorted_records(), reference);
            assert_eq!(registry.trace().dropped(), 0);
            let bin = p4auth_telemetry::trace::encode_trace(&reference, 0);
            assert_eq!(
                p4auth_telemetry::trace::encode_trace(
                    &registry.trace().sorted_records(),
                    registry.trace().dropped(),
                ),
                bin,
                "P4TR bytes engine-invariant"
            );
        }
    }

    #[test]
    fn telemetry_and_timeline_export_combine() {
        // Both an attached registry and an export interval: the same
        // private per-shard registries serve the timeline merge and the
        // final telemetry merge.
        let registry = Arc::new(Registry::new());
        let mut sharded = ping_pong_sharded();
        sharded.set_telemetry(registry.clone());
        sharded.set_export_interval(400);
        let (report, timeline) = sharded.run_timeline();
        assert_eq!(report.stats.frames_delivered, 2);
        assert!(!timeline.entries.is_empty());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sim_frames_delivered", ""), Some(2));
        assert_eq!(timeline.reconstruct(), timeline.final_snapshot);
    }

    #[test]
    fn stagger_does_not_change_any_output() {
        let reference = {
            let registry = Arc::new(Registry::with_event_capacity(64));
            let mut sharded = ping_pong_sharded();
            sharded.set_telemetry(registry.clone());
            let report = sharded.run();
            (registry.snapshot().to_json(), report)
        };
        for schedule in [vec![120_000, 0, 40_000], vec![5_000]] {
            let registry = Arc::new(Registry::with_event_capacity(64));
            let mut sharded = ping_pong_sharded();
            sharded.set_telemetry(registry.clone());
            sharded.set_stagger(schedule);
            let report = sharded.run();
            assert_eq!(registry.snapshot().to_json(), reference.0);
            assert_eq!(report.events, reference.1.events);
            assert_eq!(report.stats, reference.1.stats);
            assert_eq!(report.now, reference.1.now);
            assert_eq!(report.rounds, reference.1.rounds);
            assert_eq!(report.windows, reference.1.windows);
            assert_eq!(report.frames_exchanged, reference.1.frames_exchanged);
        }
    }

    /// Bounces a TTL-carrying frame back out its ingress port until the
    /// TTL hits zero — a long cross-shard conversation for round
    /// accounting.
    struct Bouncer;

    impl SimNode for Bouncer {
        fn on_frame(&mut self, _: SimTime, ingress: PortId, payload: FrameBytes, out: &mut Outbox) {
            let ttl = payload.as_slice()[0];
            if ttl > 0 {
                out.send_delayed(ingress, vec![ttl - 1], 10);
            }
        }
        fn on_timer(&mut self, _: SimTime, _: u64, out: &mut Outbox) {
            out.send(PortId::new(1), vec![40]);
        }
    }

    #[test]
    fn chained_windows_amortize_rounds_bit_identically() {
        let run_at_depth = |depth: usize| {
            let t = two_node_topology();
            let plan = ShardPlan::round_robin(&t, 2);
            let mut sharded = ShardedSimulator::new(t, plan);
            sharded.set_stagger(Vec::new());
            sharded.set_chain_depth(depth);
            sharded.register_node(SwitchId::new(1), Box::new(Bouncer));
            sharded.register_node(SwitchId::new(2), Box::new(Bouncer));
            sharded.schedule_timer(SwitchId::new(1), 1, 50);
            sharded.run()
        };
        let unchained = run_at_depth(1);
        let chained = run_at_depth(DEFAULT_CHAIN_DEPTH);
        // Same simulation either way...
        assert_eq!(chained.events, unchained.events);
        assert_eq!(chained.stats, unchained.stats);
        assert_eq!(chained.now, unchained.now);
        assert_eq!(chained.frames_exchanged, unchained.frames_exchanged);
        assert_eq!(chained.frames_exchanged, 41, "40-hop TTL conversation");
        // ...but the rendezvous count collapses by (almost) the depth.
        assert_eq!(unchained.windows, unchained.rounds);
        assert!(
            chained.rounds * 5 <= unchained.rounds,
            "chaining must amortize rendezvous ≥5×: {} vs {}",
            chained.rounds,
            unchained.rounds
        );
    }

    #[test]
    fn single_shard_run_is_the_sequential_run() {
        let t = two_node_topology();
        let plan = ShardPlan::round_robin(&t, 1);
        let arrivals = Arc::new(AtomicU64::new(0));
        let mut sharded = ShardedSimulator::new(t, plan);
        sharded.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: arrivals.clone(),
                reply: false,
            }),
        );
        sharded.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: Arc::new(AtomicU64::new(0)),
                reply: true,
            }),
        );
        sharded.schedule_timer(SwitchId::new(1), 7, 50);
        let (report, audits) = sharded.run_audited();
        assert_eq!(report.stats.timers_fired, 1);
        assert_eq!(report.events, 3, "timer + arrival + echoed arrival");
        assert_eq!(audits.len() as u64, report.rounds);
        // One shard has no incoming cross links: unbounded window, one
        // productive round of one window.
        assert_eq!(report.windows, 1);
        assert_eq!(audits[0].windows.len(), 1);
        assert_eq!(audits[0].windows[0].bound_ns, vec![u64::MAX]);
    }

    #[test]
    fn sharded_fault_plan_matches_sequential() {
        // A link flap mid-conversation: the t=1500 send dies during the
        // outage, the t=3500 send flows after recovery. Both engines must
        // agree on every count, and the fault must be tallied exactly
        // once (by the owner shard) even though both workers pop it.
        let mut plan = crate::fault::FaultPlan::new();
        plan.flap(LinkId(0), 1_100, 3_000);

        let seq_arrivals = [Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0))];
        let mut seq = Simulator::with_scheduler(two_node_topology(), SchedulerKind::Calendar);
        seq.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: seq_arrivals[0].clone(),
                reply: false,
            }),
        );
        seq.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: seq_arrivals[1].clone(),
                reply: true,
            }),
        );
        for delay in [50, 1_500, 3_500] {
            seq.schedule_timer(SwitchId::new(1), 7, delay);
        }
        seq.install_fault_plan(&plan);
        let seq_events = seq.run_to_completion();

        let t = two_node_topology();
        let shard_plan = ShardPlan::round_robin(&t, 2);
        let arrivals = [Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0))];
        let mut sharded = ShardedSimulator::new(t, shard_plan);
        sharded.set_stagger(Vec::new());
        sharded.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: arrivals[0].clone(),
                reply: false,
            }),
        );
        sharded.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: arrivals[1].clone(),
                reply: true,
            }),
        );
        for delay in [50, 1_500, 3_500] {
            sharded.schedule_timer(SwitchId::new(1), 7, delay);
        }
        sharded.set_fault_plan(plan);
        let report = sharded.run();

        assert_eq!(report.events, seq_events);
        assert_eq!(report.stats, seq.stats());
        assert_eq!(report.now, seq.now());
        assert_eq!(report.stats.faults_applied, 2, "down + up, counted once");
        assert_eq!(report.stats.frames_undeliverable, 1, "the mid-outage send");
        for (a, b) in arrivals.iter().zip(&seq_arrivals) {
            assert_eq!(a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
        }
    }
}
