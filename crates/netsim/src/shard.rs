//! Sharded simulation with conservative lookahead.
//!
//! The node set is partitioned into shards, each driven by its own
//! [`Simulator`] (own calendar queue, own clock) on a worker thread. The
//! shards synchronize with a barrier-based variant of conservative
//! (Chandy–Misra–Bryant) lookahead: every link latency is a floor on how
//! soon one shard's events can influence another, so each round the
//! coordinator grants every shard a *safe window* it may process without
//! hearing from anyone else.
//!
//! # The horizon rule
//!
//! Let `next[i]` be shard `i`'s earliest pending event (queued or already
//! in its inbox) and `L(j, i)` the minimum latency over links crossing
//! from shard `j` to shard `i`. A naive per-neighbour window
//! `min_j(next[j] + L(j, i))` is **unsafe**: an idle intermediate shard
//! has `next = ∞` but can still relay traffic (A→B→C with B idle must not
//! unblock C past A's reach). The coordinator therefore first computes
//! each shard's *earliest possible action*
//!
//! ```text
//! ea[i] = min( next[i], min over links j→i of ea[j] + L(j, i) )
//! ```
//!
//! by relaxing to a fixpoint (a Bellman–Ford pass over the shard graph;
//! intra-shard transit is conservatively treated as free). `ea[i]` is a
//! true lower bound on the timestamp of any event that can *ever* occur
//! on shard `i` given current global state. The granted window is then
//!
//! ```text
//! bound[i] = min over links j→i of ea[j] + L(j, i)    (∞ if no such link)
//! ```
//!
//! and shard `i` processes events with `at < bound[i]`. Any frame another
//! shard ever sends it arrives at `≥ ea[j] + L(j, i) ≥ bound[i]`, so
//! nothing processed this round can be invalidated later. Because every
//! cross-shard link has `L ≥ 1` (enforced at plan time), the shard
//! holding the globally earliest event always has `next < bound` — each
//! round makes progress and the protocol cannot deadlock.
//!
//! # Why bit-identity holds
//!
//! Event tiebreak keys pack `(source node, per-source count)`
//! ([`crate::sched`]), so a shard assigns a frame exactly the key the
//! sequential run would have assigned — no global counter needed. Within
//! a round, same-timestamp events on different shards are causally
//! independent (any cross influence lands `≥ L ≥ 1` ns later), and
//! per-link transmitter state lives entirely on the sending shard, so
//! each shard's pop sequence is precisely the sequential `(time, seq)`
//! drain order restricted to its own nodes. Merging per-node streams back
//! together therefore reproduces the sequential execution bit for bit;
//! `tests/shard_diff.rs` and the CI smoke step enforce this.

use crate::sched::SchedulerKind;
use crate::sim::{SimNode, SimStats, Simulator};
use crate::time::SimTime;
use crate::timeline::Timeline;
use crate::topology::Topology;
use p4auth_telemetry::{Registry, Snapshot};
use p4auth_wire::ids::SwitchId;
use std::collections::BTreeSet;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread;

use crate::sim::RemoteEvent;

/// An assignment of every topology node to a shard.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    nshards: usize,
    /// Shard index dense by raw switch id; `u32::MAX` for ids that are not
    /// topology nodes.
    assign: Vec<u32>,
}

impl ShardPlan {
    fn from_fn(topology: &Topology, nshards: usize, f: impl Fn(SwitchId) -> usize) -> Self {
        assert!(nshards >= 1, "need at least one shard");
        let max_id = topology
            .nodes()
            .iter()
            .map(|n| n.value() as usize)
            .max()
            .unwrap_or(0);
        let mut assign = vec![u32::MAX; max_id + 1];
        for &node in topology.nodes() {
            let s = f(node);
            assert!(s < nshards, "shard index {s} out of range for {node}");
            assign[node.value() as usize] = s as u32;
        }
        let plan = ShardPlan { nshards, assign };
        plan.validate_cross_latencies(topology);
        plan
    }

    /// Partitions along the topology's partition hints (fat-tree pods and
    /// core groups): community `c` lands on shard `c % nshards`, so pods
    /// stay whole and only the sparse agg–core cut crosses shards. Nodes
    /// without a hint — and hint-free topologies entirely — fall back to
    /// round-robin in node order.
    ///
    /// # Panics
    ///
    /// Panics if `nshards == 0` or a cross-shard link has zero latency
    /// (zero lookahead would livelock the safe-window protocol).
    pub fn pod_aligned(topology: &Topology, nshards: usize) -> Self {
        let mut fallback = 0usize;
        let nodes = topology.nodes().to_vec();
        let mut by_node = std::collections::HashMap::new();
        for &node in &nodes {
            let s = match topology.partition_hint(node) {
                Some(c) => c as usize % nshards,
                None => {
                    let s = fallback % nshards;
                    fallback += 1;
                    s
                }
            };
            by_node.insert(node, s);
        }
        Self::from_fn(topology, nshards, |n| by_node[&n])
    }

    /// Partitions nodes round-robin in node order — the fallback for
    /// arbitrary topologies with no locality to exploit.
    ///
    /// # Panics
    ///
    /// Panics if `nshards == 0` or a cross-shard link has zero latency.
    pub fn round_robin(topology: &Topology, nshards: usize) -> Self {
        let nodes = topology.nodes().to_vec();
        let mut by_node = std::collections::HashMap::new();
        for (i, &node) in nodes.iter().enumerate() {
            by_node.insert(node, i % nshards);
        }
        Self::from_fn(topology, nshards, |n| by_node[&n])
    }

    /// Partitions with an explicit assignment function (tests and custom
    /// planners).
    ///
    /// # Panics
    ///
    /// Panics if `nshards == 0`, `f` returns an out-of-range shard, or a
    /// cross-shard link has zero latency.
    pub fn custom(topology: &Topology, nshards: usize, f: impl Fn(SwitchId) -> usize) -> Self {
        Self::from_fn(topology, nshards, f)
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.nshards
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not part of the planned topology.
    pub fn shard_of(&self, node: SwitchId) -> usize {
        let s = self
            .assign
            .get(node.value() as usize)
            .copied()
            .unwrap_or(u32::MAX);
        assert!(s != u32::MAX, "node {node} is not in the shard plan");
        s as usize
    }

    /// Minimum latency over links crossing from shard `from` to shard
    /// `to`, or `None` when no link crosses that pair. Symmetric (links
    /// are bidirectional).
    pub fn min_cross_latency_ns(&self, topology: &Topology, from: usize, to: usize) -> Option<u64> {
        topology
            .links()
            .iter()
            .filter(|l| {
                let (sa, sb) = (self.shard_of(l.a.node), self.shard_of(l.b.node));
                (sa == from && sb == to) || (sa == to && sb == from)
            })
            .map(|l| l.latency_ns)
            .min()
    }

    /// Pairwise cross-shard minimum latencies: `lat[j][i]` bounds how soon
    /// shard `j` can influence shard `i` directly.
    fn cross_latency_matrix(&self, topology: &Topology) -> Vec<Vec<Option<u64>>> {
        let n = self.nshards;
        let mut lat = vec![vec![None; n]; n];
        for link in topology.links() {
            let (sa, sb) = (self.shard_of(link.a.node), self.shard_of(link.b.node));
            if sa == sb {
                continue;
            }
            for (j, i) in [(sa, sb), (sb, sa)] {
                let slot: &mut Option<u64> = &mut lat[j][i];
                *slot = Some(slot.map_or(link.latency_ns, |v| v.min(link.latency_ns)));
            }
        }
        lat
    }

    fn validate_cross_latencies(&self, topology: &Topology) {
        for link in topology.links() {
            let (sa, sb) = (self.shard_of(link.a.node), self.shard_of(link.b.node));
            assert!(
                sa == sb || link.latency_ns >= 1,
                "cross-shard link {} -- {} has zero latency: zero lookahead \
                 would livelock the safe-window protocol",
                link.a,
                link.b
            );
        }
    }
}

/// Outcome of a sharded run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRunReport {
    /// Events processed across all shards (equals the sequential count).
    pub events: u64,
    /// Aggregated statistics (field-wise sum over shards; equals the
    /// sequential [`SimStats`]).
    pub stats: SimStats,
    /// Final simulated time: the max over shard clocks, which is the time
    /// of the globally last event — exactly the sequential final `now`.
    pub now: SimTime,
    /// Synchronization rounds executed.
    pub rounds: u64,
}

/// Per-round synchronization record from [`ShardedSimulator::run_audited`],
/// for invariant checking in tests.
#[derive(Clone, Debug)]
pub struct RoundAudit {
    /// Each shard's effective earliest pending event (queue or inbox) at
    /// the round start, `None` when idle.
    pub next_at_ns: Vec<Option<u64>>,
    /// The safe-window bound granted to each shard (exclusive;
    /// `u64::MAX` means unbounded).
    pub bound_ns: Vec<u64>,
    /// Timestamp of the latest event each shard popped this round,
    /// `None` when it processed nothing.
    pub max_popped_ns: Vec<Option<u64>>,
}

enum ToWorker {
    Round {
        bound_ns: u64,
        inbox: Vec<RemoteEvent>,
    },
    /// End of run. Workers with a timeline recorder flush it to
    /// `flush_to_ns` — the *global* final clock, so every shard's tail
    /// capture carries the same stamp a sequential recorder would use.
    Finish { flush_to_ns: u64 },
}

struct RoundReply {
    outbound: Vec<RemoteEvent>,
    next_at_ns: Option<u64>,
    processed: u64,
    max_popped_ns: Option<u64>,
    /// The shard's clock after the round (moves only on pops).
    now_ns: u64,
}

/// Raw per-shard timeline capture: `(baseline, boundary snapshots,
/// final)` of the worker's private registry.
type ShardCaptures = (Snapshot, Vec<(u64, Snapshot)>, Snapshot);

/// A partitioned simulator: builds one [`Simulator`] per shard on worker
/// threads and drives them in safe-window rounds (see the module docs).
///
/// Usage mirrors [`Simulator`]: register nodes, schedule boot timers,
/// optionally attach telemetry, then [`ShardedSimulator::run`] to
/// completion. Telemetry counters and histograms aggregate across shards
/// commutatively, so snapshots match a sequential run's; attach a
/// registry *without* an event log if you need snapshot bit-equality (the
/// log's interleaving is the one execution-order-dependent piece).
pub struct ShardedSimulator {
    topology: Topology,
    plan: ShardPlan,
    nodes: Vec<Option<Box<dyn SimNode + Send>>>,
    /// Boot timers `(node, timer_id, delay_ns)` in registration order.
    timers: Vec<(SwitchId, u64, u64)>,
    telemetry: Option<Arc<Registry>>,
    export_interval_ns: Option<u64>,
}

impl ShardedSimulator {
    /// Creates a sharded simulator over `topology` partitioned by `plan`.
    pub fn new(topology: Topology, plan: ShardPlan) -> Self {
        let max_id = topology
            .nodes()
            .iter()
            .map(|n| n.value() as usize)
            .max()
            .unwrap_or(0);
        ShardedSimulator {
            topology,
            plan,
            nodes: (0..=max_id).map(|_| None).collect(),
            timers: Vec::new(),
            telemetry: None,
            export_interval_ns: None,
        }
    }

    /// The shard plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Registers the behaviour for `id` (must be `Send`: it is shipped to
    /// its owning shard's worker thread).
    ///
    /// # Panics
    ///
    /// Panics if the node is not in the topology or already registered.
    pub fn register_node(&mut self, id: SwitchId, node: Box<dyn SimNode + Send>) {
        assert!(
            self.topology.nodes().contains(&id),
            "node {id} not in topology"
        );
        let slot = &mut self.nodes[id.value() as usize];
        assert!(slot.is_none(), "node {id} registered twice");
        *slot = Some(node);
    }

    /// Schedules a boot timer for `node`, `delay_ns` after t=0 (the
    /// sharded equivalent of calling [`Simulator::schedule_timer`] before
    /// the run starts).
    pub fn schedule_timer(&mut self, node: SwitchId, timer_id: u64, delay_ns: u64) {
        self.timers.push((node, timer_id, delay_ns));
    }

    /// Attaches a telemetry registry, shared by every shard.
    pub fn set_telemetry(&mut self, registry: Arc<Registry>) {
        assert!(
            self.export_interval_ns.is_none(),
            "timeline export uses per-shard private registries; attach \
             telemetry OR set an export interval, not both"
        );
        self.telemetry = Some(registry);
    }

    /// Starts periodic telemetry export (see
    /// [`Simulator::set_export_interval`]). Each worker records into a
    /// *private* registry at safe-window pop boundaries; the coordinator
    /// merges per-shard captures in shard-index order into one
    /// [`Timeline`] that is bit-identical to a sequential recording.
    /// Collect it with [`ShardedSimulator::run_timeline`].
    ///
    /// # Panics
    ///
    /// Panics if a shared telemetry registry is attached (the two modes
    /// are mutually exclusive) or `interval_ns == 0`.
    pub fn set_export_interval(&mut self, interval_ns: u64) {
        assert!(
            self.telemetry.is_none(),
            "timeline export uses per-shard private registries; attach \
             telemetry OR set an export interval, not both"
        );
        assert!(interval_ns > 0, "export interval must be positive");
        self.export_interval_ns = Some(interval_ns);
    }

    /// Runs to completion and reports the aggregate outcome.
    pub fn run(self) -> ShardRunReport {
        self.run_inner(false).0
    }

    /// Runs to completion, additionally recording every synchronization
    /// round for lookahead-invariant checks in tests.
    pub fn run_audited(self) -> (ShardRunReport, Vec<RoundAudit>) {
        let (report, audits, _) = self.run_inner(true);
        (report, audits)
    }

    /// Runs to completion and returns the merged telemetry timeline.
    ///
    /// # Panics
    ///
    /// Panics if [`ShardedSimulator::set_export_interval`] was not
    /// called.
    pub fn run_timeline(self) -> (ShardRunReport, Timeline) {
        assert!(
            self.export_interval_ns.is_some(),
            "set_export_interval must be called before run_timeline"
        );
        let (report, _, timeline) = self.run_inner(false);
        (report, timeline.expect("export interval was set"))
    }

    fn run_inner(mut self, audit: bool) -> (ShardRunReport, Vec<RoundAudit>, Option<Timeline>) {
        let n = self.plan.nshards();
        let lat = self.plan.cross_latency_matrix(&self.topology);

        // Split registered nodes and boot timers by owning shard.
        let mut shard_nodes: Vec<Vec<(SwitchId, Box<dyn SimNode + Send>)>> =
            (0..n).map(|_| Vec::new()).collect();
        for raw in 0..self.nodes.len() {
            if let Some(node) = self.nodes[raw].take() {
                let id = SwitchId::new(raw as u16);
                shard_nodes[self.plan.shard_of(id)].push((id, node));
            }
        }
        let mut shard_timers: Vec<Vec<(SwitchId, u64, u64)>> = (0..n).map(|_| Vec::new()).collect();
        for (node, timer_id, delay_ns) in self.timers.drain(..) {
            shard_timers[self.plan.shard_of(node)].push((node, timer_id, delay_ns));
        }

        // Spawn one worker per shard. Each builds its own Simulator from
        // the shared topology, masked to the nodes it owns.
        let mut cmd_txs: Vec<SyncSender<ToWorker>> = Vec::with_capacity(n);
        let mut reply_rxs: Vec<Receiver<RoundReply>> = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for s in 0..n {
            let (cmd_tx, cmd_rx) = sync_channel::<ToWorker>(1);
            let (reply_tx, reply_rx) = sync_channel::<RoundReply>(1);
            let topology = self.topology.clone();
            let plan = self.plan.clone();
            let nodes = std::mem::take(&mut shard_nodes[s]);
            let timers = std::mem::take(&mut shard_timers[s]);
            let telemetry = self.telemetry.clone();
            let export_interval_ns = self.export_interval_ns;
            handles.push(thread::spawn(move || {
                worker(
                    s,
                    topology,
                    plan,
                    nodes,
                    timers,
                    telemetry,
                    export_interval_ns,
                    cmd_rx,
                    reply_tx,
                )
            }));
            cmd_txs.push(cmd_tx);
            reply_rxs.push(reply_rx);
        }

        // Initial replies carry each shard's boot-timer horizon.
        let mut replies: Vec<RoundReply> = reply_rxs
            .iter()
            .map(|rx| rx.recv().expect("worker died before first reply"))
            .collect();
        let mut inboxes: Vec<Vec<RemoteEvent>> = (0..n).map(|_| Vec::new()).collect();
        let mut audits = Vec::new();
        let mut events = 0u64;
        let mut rounds = 0u64;

        loop {
            // Effective horizon per shard: its queue plus its inbox.
            let next: Vec<u64> = (0..n)
                .map(|i| {
                    let q = replies[i].next_at_ns.unwrap_or(u64::MAX);
                    let inbox = inboxes[i]
                        .iter()
                        .map(|ev| ev.at.as_ns())
                        .min()
                        .unwrap_or(u64::MAX);
                    q.min(inbox)
                })
                .collect();
            if next.iter().all(|&v| v == u64::MAX) {
                break;
            }

            // Earliest-possible-action fixpoint over the shard graph.
            let mut ea = next.clone();
            loop {
                let mut changed = false;
                for i in 0..n {
                    for j in 0..n {
                        if let Some(l) = lat[j][i] {
                            let via = ea[j].saturating_add(l);
                            if via < ea[i] {
                                ea[i] = via;
                                changed = true;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            let bound: Vec<u64> = (0..n)
                .map(|i| {
                    (0..n)
                        .filter_map(|j| lat[j][i].map(|l| ea[j].saturating_add(l)))
                        .min()
                        .unwrap_or(u64::MAX)
                })
                .collect();

            rounds += 1;
            for (i, tx) in cmd_txs.iter().enumerate() {
                tx.send(ToWorker::Round {
                    bound_ns: bound[i],
                    inbox: std::mem::take(&mut inboxes[i]),
                })
                .expect("worker hung up mid-run");
            }
            let mut processed_this_round = 0u64;
            let mut max_popped = Vec::new();
            for (i, rx) in reply_rxs.iter().enumerate() {
                let reply = rx.recv().expect("worker died mid-round");
                processed_this_round += reply.processed;
                if audit {
                    max_popped.push(reply.max_popped_ns);
                }
                replies[i] = reply;
            }
            for reply in &mut replies {
                for ev in reply.outbound.drain(..) {
                    inboxes[self.plan.shard_of(ev.dst.node)].push(ev);
                }
            }
            events += processed_this_round;
            assert!(
                processed_this_round > 0,
                "safe-window round made no progress (lookahead bug)"
            );
            if audit {
                audits.push(RoundAudit {
                    next_at_ns: next.iter().map(|&v| (v != u64::MAX).then_some(v)).collect(),
                    bound_ns: bound,
                    max_popped_ns: max_popped,
                });
            }
        }

        // The global final clock: the time of the last event popped
        // anywhere. Every recorder flushes to it so tail captures are
        // stamped exactly as a sequential run's would be.
        let global_end_ns = replies.iter().map(|r| r.now_ns).max().unwrap_or(0);
        for tx in &cmd_txs {
            tx.send(ToWorker::Finish {
                flush_to_ns: global_end_ns,
            })
            .expect("worker hung up at finish");
        }
        let mut stats = SimStats::default();
        let mut now = SimTime::ZERO;
        let mut captures: Vec<Option<ShardCaptures>> = Vec::with_capacity(handles.len());
        for handle in handles {
            let (shard_stats, shard_now, shard_caps) = handle.join().expect("worker panicked");
            stats.frames_delivered += shard_stats.frames_delivered;
            stats.frames_tapped_dropped += shard_stats.frames_tapped_dropped;
            stats.frames_tapped_modified += shard_stats.frames_tapped_modified;
            stats.frames_undeliverable += shard_stats.frames_undeliverable;
            stats.timers_fired += shard_stats.timers_fired;
            now = now.max(shard_now);
            captures.push(shard_caps);
        }
        let timeline = self
            .export_interval_ns
            .map(|interval| merge_timelines(interval, captures));
        (
            ShardRunReport {
                events,
                stats,
                now,
                rounds,
            },
            audits,
            timeline,
        )
    }
}

/// Merges per-shard capture streams into the timeline a sequential
/// recording would have produced.
///
/// Shards capture full snapshots of their private registries; metric
/// updates are attributed to the shard that pops the causing event
/// (frame telemetry is recorded sender-side at divert time), so the
/// per-shard registries partition the sequential one. At every grid
/// boundary any shard captured, each shard's latest capture at or before
/// it is carried forward (an uncaptured boundary means that shard's
/// state did not change) and the full states are merged in shard-index
/// order — giving exactly the sequential state before that boundary,
/// including histogram min/max. Deltas then come from
/// [`Timeline::from_captures`], the same code path the sequential
/// recorder uses, so the result is structurally bit-identical.
fn merge_timelines(interval_ns: u64, captures: Vec<Option<ShardCaptures>>) -> Timeline {
    let parts: Vec<ShardCaptures> = captures
        .into_iter()
        .map(|c| c.expect("export interval set but a worker recorded nothing"))
        .collect();
    let baselines: Vec<Snapshot> = parts.iter().map(|(b, _, _)| b.clone()).collect();
    let finals: Vec<Snapshot> = parts.iter().map(|(_, _, f)| f.clone()).collect();
    let boundaries: BTreeSet<u64> = parts
        .iter()
        .flat_map(|(_, caps, _)| caps.iter().map(|(t, _)| *t))
        .collect();
    // Carried-forward state per shard, advanced through each shard's
    // captures as the boundary cursor moves.
    let mut cur: Vec<Snapshot> = baselines.clone();
    let mut idx = vec![0usize; parts.len()];
    let mut merged_captures = Vec::with_capacity(boundaries.len());
    for t in boundaries {
        for (s, (_, caps, _)) in parts.iter().enumerate() {
            while idx[s] < caps.len() && caps[idx[s]].0 <= t {
                cur[s] = caps[idx[s]].1.clone();
                idx[s] += 1;
            }
        }
        merged_captures.push((t, Snapshot::merged(&cur)));
    }
    Timeline::from_captures(
        interval_ns,
        Snapshot::merged(&baselines),
        merged_captures,
        Snapshot::merged(&finals),
    )
}

/// Worker-thread body: owns one shard's [`Simulator`] and answers
/// safe-window rounds until told to finish.
#[allow(clippy::too_many_arguments)]
fn worker(
    shard: usize,
    topology: Topology,
    plan: ShardPlan,
    nodes: Vec<(SwitchId, Box<dyn SimNode + Send>)>,
    timers: Vec<(SwitchId, u64, u64)>,
    telemetry: Option<Arc<Registry>>,
    export_interval_ns: Option<u64>,
    cmd_rx: Receiver<ToWorker>,
    reply_tx: SyncSender<RoundReply>,
) -> (SimStats, SimTime, Option<ShardCaptures>) {
    let max_id = topology
        .nodes()
        .iter()
        .map(|n| n.value() as usize)
        .max()
        .unwrap_or(0);
    let mut mask = vec![false; max_id + 1];
    for &node in topology.nodes() {
        mask[node.value() as usize] = plan.shard_of(node) == shard;
    }
    let mut sim = Simulator::with_scheduler(topology, SchedulerKind::Calendar);
    sim.set_owned_mask(mask);
    if let Some(registry) = telemetry {
        sim.set_telemetry(registry);
    } else if export_interval_ns.is_some() {
        // Timeline mode: a private registry per shard, merged by the
        // coordinator after the run.
        sim.set_telemetry(Arc::new(Registry::new()));
    }
    for (id, node) in nodes {
        sim.register_node(id, node);
    }
    for (node, timer_id, delay_ns) in timers {
        sim.schedule_timer(node, timer_id, delay_ns);
    }
    if let Some(interval) = export_interval_ns {
        // After boot timers: setup-time pushes belong to the baseline,
        // exactly as in the sequential recording.
        sim.set_export_interval(interval);
    }
    reply_tx
        .send(RoundReply {
            outbound: sim.take_outbound(),
            next_at_ns: sim.next_event_at().map(|t| t.as_ns()),
            processed: 0,
            max_popped_ns: None,
            now_ns: sim.now().as_ns(),
        })
        .expect("coordinator hung up before first reply");
    // A Finish command or either channel closing ends the loop.
    let mut flush_to = None;
    loop {
        match cmd_rx.recv() {
            Ok(ToWorker::Round { bound_ns, inbox }) => {
                for ev in inbox {
                    sim.inject_remote(ev);
                }
                let processed = sim.run_window(SimTime::from_ns(bound_ns));
                let max_popped_ns = (processed > 0).then(|| sim.now().as_ns());
                let reply = RoundReply {
                    outbound: sim.take_outbound(),
                    next_at_ns: sim.next_event_at().map(|t| t.as_ns()),
                    processed,
                    max_popped_ns,
                    now_ns: sim.now().as_ns(),
                };
                if reply_tx.send(reply).is_err() {
                    break;
                }
            }
            Ok(ToWorker::Finish { flush_to_ns }) => {
                flush_to = Some(flush_to_ns);
                break;
            }
            Err(_) => break,
        }
    }
    if let Some(to_ns) = flush_to {
        sim.flush_timeline(SimTime::from_ns(to_ns));
    }
    let captures = sim
        .take_timeline_parts()
        .map(|(_, baseline, caps, fin)| (baseline, caps, fin));
    (sim.stats(), sim.now(), captures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameBytes;
    use crate::sim::Outbox;
    use crate::topology::Endpoint;
    use p4auth_wire::ids::PortId;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Echo {
        arrivals: Arc<AtomicU64>,
        reply: bool,
    }

    impl SimNode for Echo {
        fn on_frame(&mut self, _: SimTime, ingress: PortId, payload: FrameBytes, out: &mut Outbox) {
            self.arrivals.fetch_add(1, Ordering::Relaxed);
            if self.reply {
                out.send_delayed(ingress, payload, 10);
            }
        }
        fn on_timer(&mut self, _: SimTime, _: u64, out: &mut Outbox) {
            out.send(PortId::new(1), vec![0xab]);
        }
    }

    fn two_node_topology() -> Topology {
        let mut t = Topology::new();
        t.add_node(SwitchId::new(1)).unwrap();
        t.add_node(SwitchId::new(2)).unwrap();
        t.add_link(
            Endpoint::new(SwitchId::new(1), PortId::new(1)),
            Endpoint::new(SwitchId::new(2), PortId::new(1)),
            1_000,
        )
        .unwrap();
        t
    }

    #[test]
    fn round_robin_plan_covers_every_node() {
        let t = two_node_topology();
        let plan = ShardPlan::round_robin(&t, 2);
        assert_eq!(plan.nshards(), 2);
        assert_ne!(
            plan.shard_of(SwitchId::new(1)),
            plan.shard_of(SwitchId::new(2))
        );
        assert_eq!(plan.min_cross_latency_ns(&t, 0, 1), Some(1_000));
    }

    #[test]
    fn pod_aligned_plan_keeps_pods_whole() {
        let ft = crate::fattree::FatTree::new(4);
        let t = ft.build(1_500);
        let plan = ShardPlan::pod_aligned(&t, 4);
        for pod in 0..4u16 {
            let home = plan.shard_of(ft.edge(pod, 0));
            for i in 0..2 {
                assert_eq!(plan.shard_of(ft.edge(pod, i)), home);
                assert_eq!(plan.shard_of(ft.agg(pod, i)), home);
            }
            for h in 0..4 {
                assert_eq!(plan.shard_of(ft.host(pod * 4 + h)), home);
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero latency")]
    fn zero_latency_cross_shard_link_rejected() {
        let mut t = Topology::new();
        t.add_node(SwitchId::new(1)).unwrap();
        t.add_node(SwitchId::new(2)).unwrap();
        t.add_link(
            Endpoint::new(SwitchId::new(1), PortId::new(1)),
            Endpoint::new(SwitchId::new(2), PortId::new(1)),
            0,
        )
        .unwrap();
        let _ = ShardPlan::round_robin(&t, 2);
    }

    #[test]
    fn sharded_ping_pong_matches_sequential() {
        // Sequential reference.
        let seq_arrivals = [Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0))];
        let mut seq = Simulator::with_scheduler(two_node_topology(), SchedulerKind::Calendar);
        seq.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: seq_arrivals[0].clone(),
                reply: false,
            }),
        );
        seq.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: seq_arrivals[1].clone(),
                reply: true,
            }),
        );
        seq.schedule_timer(SwitchId::new(1), 7, 50);
        let seq_events = seq.run_to_completion();

        // Sharded run, one node per shard.
        let t = two_node_topology();
        let plan = ShardPlan::round_robin(&t, 2);
        let arrivals = [Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0))];
        let mut sharded = ShardedSimulator::new(t, plan);
        sharded.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: arrivals[0].clone(),
                reply: false,
            }),
        );
        sharded.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: arrivals[1].clone(),
                reply: true,
            }),
        );
        sharded.schedule_timer(SwitchId::new(1), 7, 50);
        let report = sharded.run();

        assert_eq!(report.events, seq_events);
        assert_eq!(report.stats, seq.stats());
        assert_eq!(report.now, seq.now());
        for (a, b) in arrivals.iter().zip(&seq_arrivals) {
            assert_eq!(a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
        }
        assert!(report.rounds >= 2, "ping-pong needs multiple rounds");
    }

    #[test]
    fn sharded_timeline_is_bit_identical_to_sequential() {
        // Sequential recording: telemetry, nodes, boot timer, then the
        // export interval — the same order the workers use.
        let mut seq = Simulator::with_scheduler(two_node_topology(), SchedulerKind::Calendar);
        seq.set_telemetry(Arc::new(Registry::new()));
        seq.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: Arc::new(AtomicU64::new(0)),
                reply: false,
            }),
        );
        seq.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: Arc::new(AtomicU64::new(0)),
                reply: true,
            }),
        );
        seq.schedule_timer(SwitchId::new(1), 7, 50);
        seq.set_export_interval(400);
        seq.run_to_completion();
        let seq_tl = seq.take_timeline().unwrap();

        let t = two_node_topology();
        let plan = ShardPlan::round_robin(&t, 2);
        let mut sharded = ShardedSimulator::new(t, plan);
        sharded.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: Arc::new(AtomicU64::new(0)),
                reply: false,
            }),
        );
        sharded.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: Arc::new(AtomicU64::new(0)),
                reply: true,
            }),
        );
        sharded.schedule_timer(SwitchId::new(1), 7, 50);
        sharded.set_export_interval(400);
        let (_, sharded_tl) = sharded.run_timeline();

        assert!(
            !seq_tl.entries.is_empty(),
            "the run must cross at least one boundary with changes"
        );
        assert_eq!(sharded_tl, seq_tl);
        assert_eq!(sharded_tl.to_json(), seq_tl.to_json());
        assert_eq!(sharded_tl.to_bin(), seq_tl.to_bin());
        assert_eq!(sharded_tl.reconstruct(), sharded_tl.final_snapshot);
    }

    #[test]
    #[should_panic(expected = "not both")]
    fn telemetry_and_export_are_mutually_exclusive() {
        let t = two_node_topology();
        let plan = ShardPlan::round_robin(&t, 2);
        let mut sharded = ShardedSimulator::new(t, plan);
        sharded.set_telemetry(Arc::new(Registry::new()));
        sharded.set_export_interval(1_000);
    }

    #[test]
    fn single_shard_run_is_the_sequential_run() {
        let t = two_node_topology();
        let plan = ShardPlan::round_robin(&t, 1);
        let arrivals = Arc::new(AtomicU64::new(0));
        let mut sharded = ShardedSimulator::new(t, plan);
        sharded.register_node(
            SwitchId::new(1),
            Box::new(Echo {
                arrivals: arrivals.clone(),
                reply: false,
            }),
        );
        sharded.register_node(
            SwitchId::new(2),
            Box::new(Echo {
                arrivals: Arc::new(AtomicU64::new(0)),
                reply: true,
            }),
        );
        sharded.schedule_timer(SwitchId::new(1), 7, 50);
        let (report, audits) = sharded.run_audited();
        assert_eq!(report.stats.timers_fired, 1);
        assert_eq!(report.events, 3, "timer + arrival + echoed arrival");
        assert_eq!(audits.len() as u64, report.rounds);
        // One shard has no incoming cross links: unbounded window, one
        // productive round.
        assert_eq!(audits[0].bound_ns, vec![u64::MAX]);
    }
}
