//! Simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds since start (truncating).
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since start, as a float.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds since start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    /// Advances by `ns` nanoseconds.
    fn add(self, ns: u64) -> SimTime {
        SimTime(self.0 + ns)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, ns: u64) {
        self.0 += ns;
    }
}

impl Sub for SimTime {
    type Output = u64;

    /// Nanoseconds between two times (saturating).
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{}us", self.as_us())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_us(5).as_ns(), 5_000);
        assert_eq!(SimTime::from_ms(2).as_us(), 2_000);
        assert_eq!(SimTime::from_secs(1).as_ns(), 1_000_000_000);
        assert!((SimTime::from_ms(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((SimTime::from_us(2500).as_ms_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(100);
        assert_eq!((t + 50).as_ns(), 150);
        let mut u = t;
        u += 25;
        assert_eq!(u.as_ns(), 125);
        assert_eq!(u - t, 25);
        assert_eq!(t - u, 0); // saturating
        assert_eq!(u.since(t), 25);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_ns(1));
        assert!(SimTime::from_ms(1) > SimTime::from_us(999));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_ns(12).to_string(), "12ns");
        assert_eq!(SimTime::from_us(12).to_string(), "12us");
        assert_eq!(SimTime::from_ms(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
        assert_eq!(format!("{:?}", SimTime::from_ns(7)), "t+7ns");
    }
}
