//! Differential test for the sharded engine: the fig19-mix fat-tree
//! workload must be bit-identical — per-node delivery streams, aggregate
//! stats, final clock and telemetry fingerprints — across five engines:
//! sequential heap, sequential calendar, and sharded with 1, 2 and 4
//! shards.
//!
//! Every node records each frame it receives as `(time, ingress port,
//! payload bytes)`. Comparing those streams per node (rather than one
//! global log) is exactly the bit-identity claim: shards interleave
//! differently in wall time, but each node must observe the identical
//! sequence of deliveries at identical simulated instants.

use p4auth_netsim::fattree::FatTree;
use p4auth_netsim::frame::FrameBytes;
use p4auth_netsim::sched::SchedulerKind;
use p4auth_netsim::shard::{ShardPlan, ShardedSimulator};
use p4auth_netsim::sim::{Outbox, SimNode, SimStats, Simulator};
use p4auth_netsim::time::SimTime;
use p4auth_primitives::rng::{RandomSource, SplitMix64};
use p4auth_telemetry::Registry;
use p4auth_wire::ids::{PortId, SwitchId};
use std::sync::{Arc, Mutex};

const READ_FRAME_BYTES: usize = 34;
const WRITE_FRAME_BYTES: usize = 58;
const SEND_TIMER: u64 = 1;
const LATENCY_NS: u64 = 1_500;
const PROC_NS: u64 = 500;
const INTERVAL_NS: u64 = 25;

/// One recorded delivery: `(sim time ns, ingress port, payload)`.
type Delivery = (u64, u8, Vec<u8>);
/// Per-node delivery streams, dense by stream index (switches then hosts).
type Streams = Arc<Vec<Mutex<Vec<Delivery>>>>;

struct Forwarder {
    ft: FatTree,
    id: SwitchId,
    stream: usize,
    streams: Streams,
}

fn frame_dst(payload: &[u8]) -> SwitchId {
    SwitchId::new(u16::from_le_bytes([payload[0], payload[1]]))
}

impl SimNode for Forwarder {
    fn on_frame(&mut self, now: SimTime, ingress: PortId, payload: FrameBytes, out: &mut Outbox) {
        self.streams[self.stream].lock().unwrap().push((
            now.as_ns(),
            ingress.value(),
            payload.to_vec(),
        ));
        let dst = frame_dst(&payload);
        let flow = payload[2] as u64;
        if let Some(port) = self.ft.next_hop(self.id, dst, flow) {
            out.send_delayed(port, payload, PROC_NS);
        }
    }
}

struct Host {
    index: u16,
    remaining: u32,
    sent: u32,
    rng: SplitMix64,
    ft: FatTree,
    stream: usize,
    streams: Streams,
}

impl SimNode for Host {
    fn on_frame(&mut self, now: SimTime, ingress: PortId, payload: FrameBytes, _: &mut Outbox) {
        self.streams[self.stream].lock().unwrap().push((
            now.as_ns(),
            ingress.value(),
            payload.to_vec(),
        ));
    }

    fn on_timer(&mut self, _now: SimTime, _timer_id: u64, out: &mut Outbox) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let hosts = self.ft.host_count();
        let mut dst = (self.rng.next_u64() % (hosts as u64 - 1)) as u16;
        if dst >= self.index {
            dst += 1;
        }
        let len = if self.sent % 3 == 2 {
            WRITE_FRAME_BYTES
        } else {
            READ_FRAME_BYTES
        };
        self.sent += 1;
        let mut buf = [0u8; WRITE_FRAME_BYTES];
        buf[..2].copy_from_slice(&self.ft.host(dst).value().to_le_bytes());
        buf[2] = (self.rng.next_u64() & 0xff) as u8;
        out.send(PortId::new(1), FrameBytes::from_slice(&buf[..len]));
        if self.remaining > 0 {
            out.set_timer(SEND_TIMER, INTERVAL_NS);
        }
    }
}

fn host_rng(k: u16, h: u16) -> SplitMix64 {
    let seed = 0x5ca1_e000 ^ k as u64;
    SplitMix64::new(seed ^ (h as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

fn make_streams(ft: &FatTree) -> Streams {
    let n = ft.switch_count() as usize + ft.host_count() as usize;
    Arc::new((0..n).map(|_| Mutex::new(Vec::new())).collect())
}

fn forwarder(ft: FatTree, id: SwitchId, streams: &Streams) -> Box<Forwarder> {
    Box::new(Forwarder {
        ft,
        id,
        stream: id.value() as usize - 1,
        streams: streams.clone(),
    })
}

fn host(ft: FatTree, k: u16, h: u16, frames: u32, streams: &Streams) -> Box<Host> {
    Box::new(Host {
        index: h,
        remaining: frames,
        sent: 0,
        rng: host_rng(k, h),
        ft,
        stream: ft.switch_count() as usize + h as usize,
        streams: streams.clone(),
    })
}

/// Everything a run produces that must be engine-invariant.
struct RunResult {
    label: String,
    streams: Vec<Vec<Delivery>>,
    events: u64,
    stats: SimStats,
    now_ns: u64,
    telemetry_json: String,
}

fn run_sequential(k: u16, frames: u32, kind: SchedulerKind) -> RunResult {
    let ft = FatTree::new(k);
    let streams = make_streams(&ft);
    let registry = Arc::new(Registry::new());
    let mut sim = Simulator::with_scheduler(ft.build(LATENCY_NS), kind);
    sim.set_telemetry(registry.clone());
    for id in 1..=ft.switch_count() {
        let id = SwitchId::new(id);
        sim.register_node(id, forwarder(ft, id, &streams));
    }
    for h in 0..ft.host_count() {
        sim.register_node(ft.host(h), host(ft, k, h, frames, &streams));
        sim.schedule_timer(ft.host(h), SEND_TIMER, 1 + (h as u64 % 97) * 11);
    }
    let events = sim.run_to_completion();
    let (stats, now_ns) = (sim.stats(), sim.now().as_ns());
    drop(sim); // release the nodes' stream handles
    RunResult {
        label: format!("sequential-{}", kind.label()),
        streams: unwrap_streams(streams),
        events,
        stats,
        now_ns,
        telemetry_json: registry.snapshot().to_json(),
    }
}

/// Runs the sharded engine with a programmatic wall-clock stagger
/// schedule (empty = no artificial delays, and isolated from any ambient
/// `P4AUTH_SHARD_STAGGER`). Workers sleep schedule-determined amounts
/// before each window publish and each rendezvous reply, forcing
/// adversarial interleavings that must not leak into any output.
fn run_sharded(k: u16, frames: u32, shards: usize, stagger_ns: &[u64]) -> RunResult {
    let ft = FatTree::new(k);
    let streams = make_streams(&ft);
    let registry = Arc::new(Registry::new());
    let topo = ft.build(LATENCY_NS);
    let plan = ShardPlan::pod_aligned(&topo, shards);
    let mut sim = ShardedSimulator::new(topo, plan);
    sim.set_stagger(stagger_ns.to_vec());
    sim.set_telemetry(registry.clone());
    for id in 1..=ft.switch_count() {
        let id = SwitchId::new(id);
        sim.register_node(id, forwarder(ft, id, &streams));
    }
    for h in 0..ft.host_count() {
        sim.register_node(ft.host(h), host(ft, k, h, frames, &streams));
        sim.schedule_timer(ft.host(h), SEND_TIMER, 1 + (h as u64 % 97) * 11);
    }
    let report = sim.run();
    RunResult {
        label: format!("sharded-{shards} (stagger {stagger_ns:?})"),
        streams: unwrap_streams(streams),
        events: report.events,
        stats: report.stats,
        now_ns: report.now.as_ns(),
        telemetry_json: registry.snapshot().to_json(),
    }
}

fn unwrap_streams(streams: Streams) -> Vec<Vec<Delivery>> {
    Arc::try_unwrap(streams)
        .expect("all nodes dropped")
        .into_iter()
        .map(|m| m.into_inner().unwrap())
        .collect()
}

fn assert_runs_match(k: u16, reference: &RunResult, other: &RunResult) {
    let ctx = format!("k={k}: {} vs {}", reference.label, other.label);
    assert_eq!(reference.events, other.events, "{ctx}: event count");
    assert_eq!(reference.stats, other.stats, "{ctx}: stats");
    assert_eq!(reference.now_ns, other.now_ns, "{ctx}: final clock");
    assert_eq!(
        reference.streams.len(),
        other.streams.len(),
        "{ctx}: stream count"
    );
    for (i, (a, b)) in reference.streams.iter().zip(&other.streams).enumerate() {
        assert_eq!(a, b, "{ctx}: delivery stream of node index {i}");
    }
    assert_eq!(
        reference.telemetry_json, other.telemetry_json,
        "{ctx}: telemetry fingerprint"
    );
}

fn assert_bit_identical(k: u16, frames: u32) {
    let reference = run_sequential(k, frames, SchedulerKind::Calendar);
    assert!(
        reference.stats.frames_delivered > 0,
        "workload must generate traffic"
    );
    let others = [
        run_sequential(k, frames, SchedulerKind::Heap),
        run_sharded(k, frames, 1, &[]),
        run_sharded(k, frames, 2, &[]),
        run_sharded(k, frames, 4, &[]),
    ];
    for other in &others {
        assert_runs_match(k, &reference, other);
    }
}

#[test]
fn fat_tree_4_bit_identical_across_engines() {
    assert_bit_identical(4, 30);
}

#[test]
fn fat_tree_8_bit_identical_across_engines() {
    assert_bit_identical(8, 8);
}

/// The bit-identity claim under adversarial worker scheduling: with
/// wall-clock stagger injected into the workers (different schedule per
/// run), every output — delivery streams, stats, final clock, merged
/// telemetry — still equals the sequential reference byte for byte.
#[test]
fn fat_tree_4_bit_identical_under_adversarial_stagger() {
    let reference = run_sequential(4, 20, SchedulerKind::Calendar);
    assert!(
        reference.stats.frames_delivered > 0,
        "workload must generate traffic"
    );
    let others = [
        run_sharded(4, 20, 4, &[120_000, 0, 40_000]),
        run_sharded(4, 20, 4, &[7_000]),
        run_sharded(4, 20, 2, &[0, 90_000]),
    ];
    for other in &others {
        assert_runs_match(4, &reference, other);
    }
}

/// Regression for the telemetry-merge redesign: with the event log
/// enabled, the merged snapshot JSON — counters, histograms *and* the
/// event stream — is identical across adversarial worker interleavings.
/// (Before per-shard private registries, workers raced appends into one
/// shared log and the event order depended on thread scheduling.)
fn sharded_snapshot_json(k: u16, frames: u32, shards: usize, stagger_ns: &[u64]) -> String {
    let ft = FatTree::new(k);
    let streams = make_streams(&ft);
    let registry = Arc::new(Registry::with_event_capacity(512));
    let topo = ft.build(LATENCY_NS);
    let plan = ShardPlan::pod_aligned(&topo, shards);
    let mut sim = ShardedSimulator::new(topo, plan);
    sim.set_stagger(stagger_ns.to_vec());
    sim.set_telemetry(registry.clone());
    for id in 1..=ft.switch_count() {
        let id = SwitchId::new(id);
        sim.register_node(id, forwarder(ft, id, &streams));
    }
    for h in 0..ft.host_count() {
        sim.register_node(ft.host(h), host(ft, k, h, frames, &streams));
        sim.schedule_timer(ft.host(h), SEND_TIMER, 1 + (h as u64 % 97) * 11);
    }
    sim.run();
    registry.snapshot().to_json()
}

#[test]
fn event_log_merge_is_identical_across_adversarial_interleavings() {
    let reference = sharded_snapshot_json(4, 12, 4, &[]);
    assert!(
        reference.contains("frame_delivered"),
        "the event log must have captured traffic"
    );
    let schedules: [&[u64]; 3] = [&[150_000], &[0, 0, 80_000], &[60_000, 20_000]];
    for stagger in schedules {
        assert_eq!(
            sharded_snapshot_json(4, 12, 4, stagger),
            reference,
            "snapshot JSON diverged under stagger {stagger:?}"
        );
    }
}
