//! Micro-asserts on the tap hot path's allocation behaviour.
//!
//! The tap path used to clone every tapped frame up front to detect
//! modification; `TapFrame` snapshots the pristine bytes lazily instead.
//! These tests pin that down with a counting global allocator: delivering
//! frames with no tap (or a read-only tap) must not allocate the pristine
//! copy, while a mutating tap pays for exactly the frames it touches.
//!
//! (The netsim *library* forbids unsafe code; this integration test is a
//! separate crate and needs `unsafe` only for the `GlobalAlloc` impl.)

use p4auth_netsim::frame::FrameBytes;
use p4auth_netsim::sim::{Outbox, SimNode, Simulator, TapAction};
use p4auth_netsim::time::SimTime;
use p4auth_netsim::topology::{Endpoint, Topology};
use p4auth_wire::ids::{PortId, SwitchId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Swallows every frame.
struct Sink;

impl SimNode for Sink {
    fn on_frame(&mut self, _: SimTime, _: PortId, _: FrameBytes, _: &mut Outbox) {}
}

const FRAMES: u64 = 64;
/// Heap-backed payloads (beyond the FrameBytes inline cap), so the tap
/// path's Vec round-trip adopts the buffer without allocating and the only
/// possible per-frame allocation is the pristine snapshot.
const PAYLOAD_LEN: usize = 100;

enum TapMode {
    None,
    ReadOnly,
    Mutating,
}

/// Delivers `FRAMES` frames across one link and returns the number of
/// allocator calls made during the run itself (setup excluded).
fn allocs_during_run(mode: TapMode) -> u64 {
    let mut t = Topology::new();
    t.add_node(SwitchId::new(1)).unwrap();
    t.add_node(SwitchId::new(2)).unwrap();
    let link = t
        .add_link(
            Endpoint::new(SwitchId::new(1), PortId::new(1)),
            Endpoint::new(SwitchId::new(2), PortId::new(1)),
            1_000,
        )
        .unwrap();
    let mut sim = Simulator::new(t);
    sim.register_node(SwitchId::new(1), Box::new(Sink));
    sim.register_node(SwitchId::new(2), Box::new(Sink));
    match mode {
        TapMode::None => {}
        TapMode::ReadOnly => sim.install_tap(
            link,
            SwitchId::new(1),
            Box::new(|_, _, _, frame| {
                // Reads the bytes without taking a mutable borrow.
                assert_eq!(frame.len(), PAYLOAD_LEN);
                std::hint::black_box(frame[0]);
                TapAction::Forward
            }),
        ),
        TapMode::Mutating => sim.install_tap(
            link,
            SwitchId::new(1),
            Box::new(|_, _, _, frame| {
                frame[0] ^= 0xff;
                TapAction::Forward
            }),
        ),
    }
    // Injection flushes each frame through the tap immediately, so the
    // counting window opens before the inject loop.
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..FRAMES {
        sim.inject_frame_delayed(
            SwitchId::new(1),
            PortId::new(1),
            vec![i as u8; PAYLOAD_LEN],
            i * 10_000,
        );
    }
    sim.run_to_completion();
    let during = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(sim.stats().frames_delivered, FRAMES);
    during
}

#[test]
fn untapped_and_readonly_delivery_skip_the_pristine_copy() {
    let untapped = allocs_during_run(TapMode::None);
    let readonly = allocs_during_run(TapMode::ReadOnly);
    let mutating = allocs_during_run(TapMode::Mutating);

    // A read-only tap allocates nothing beyond an untapped run: heap
    // payloads round-trip through the tap by adopting the buffer, and no
    // pristine snapshot is taken.
    assert_eq!(
        readonly, untapped,
        "read-only tap must not clone tapped frames"
    );
    // A mutating tap pays exactly one pristine snapshot per frame.
    assert_eq!(
        mutating,
        untapped + FRAMES,
        "mutating tap should cost one clone per touched frame"
    );
}
