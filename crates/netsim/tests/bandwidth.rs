//! Tests for the link bandwidth / FIFO queueing model.

use p4auth_netsim::frame::FrameBytes;
use p4auth_netsim::sim::{Outbox, SimNode, Simulator};
use p4auth_netsim::time::SimTime;
use p4auth_netsim::topology::{Endpoint, Topology};
use p4auth_wire::ids::{PortId, SwitchId};
use std::cell::RefCell;
use std::rc::Rc;

struct Sink {
    arrivals: Rc<RefCell<Vec<u64>>>,
}

impl SimNode for Sink {
    fn on_frame(
        &mut self,
        now: SimTime,
        _ingress: PortId,
        _payload: FrameBytes,
        _out: &mut Outbox,
    ) {
        self.arrivals.borrow_mut().push(now.as_ns());
    }
}

fn pair(bandwidth_bps: Option<u64>) -> (Simulator, Rc<RefCell<Vec<u64>>>) {
    let mut t = Topology::new();
    t.add_node(SwitchId::new(1)).unwrap();
    t.add_node(SwitchId::new(2)).unwrap();
    let link = t
        .add_link(
            Endpoint::new(SwitchId::new(1), PortId::new(1)),
            Endpoint::new(SwitchId::new(2), PortId::new(1)),
            1_000,
        )
        .unwrap();
    if let Some(bps) = bandwidth_bps {
        t.set_bandwidth(link, bps);
    }
    let arrivals = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Simulator::new(t);
    struct Quiet;
    impl SimNode for Quiet {
        fn on_frame(&mut self, _: SimTime, _: PortId, _: FrameBytes, _: &mut Outbox) {}
    }
    sim.register_node(SwitchId::new(1), Box::new(Quiet));
    sim.register_node(
        SwitchId::new(2),
        Box::new(Sink {
            arrivals: arrivals.clone(),
        }),
    );
    (sim, arrivals)
}

#[test]
fn unconstrained_links_have_no_serialization_delay() {
    let (mut sim, arrivals) = pair(None);
    sim.inject_frame(SwitchId::new(1), PortId::new(1), vec![0; 1000]);
    sim.run_to_completion();
    assert_eq!(*arrivals.borrow(), vec![1_000]); // latency only
}

#[test]
fn serialization_delay_scales_with_frame_size_and_bandwidth() {
    // 1 Gbit/s: 1000 bytes = 8000 bits -> 8 µs of serialization.
    let (mut sim, arrivals) = pair(Some(1_000_000_000));
    sim.inject_frame(SwitchId::new(1), PortId::new(1), vec![0; 1000]);
    sim.run_to_completion();
    assert_eq!(*arrivals.borrow(), vec![8_000 + 1_000]);
}

#[test]
fn simultaneous_frames_are_serialized_fifo() {
    // Two 1000-byte frames injected at t=0 on a 1 Gbit/s link: the second
    // waits for the first to finish serializing.
    let (mut sim, arrivals) = pair(Some(1_000_000_000));
    sim.inject_frame(SwitchId::new(1), PortId::new(1), vec![0; 1000]);
    sim.inject_frame(SwitchId::new(1), PortId::new(1), vec![0; 1000]);
    sim.run_to_completion();
    assert_eq!(*arrivals.borrow(), vec![9_000, 17_000]);
}

#[test]
fn queueing_drains_when_idle() {
    let (mut sim, arrivals) = pair(Some(1_000_000_000));
    sim.inject_frame(SwitchId::new(1), PortId::new(1), vec![0; 1000]);
    sim.run_to_completion(); // transmitter idle again at t=8000; now=9000
                             // Much later, a second frame sees an idle transmitter. The timer is
                             // relative to now (9_000), so it fires at 109_000.
    sim.schedule_timer(SwitchId::new(1), 0, 100_000);
    sim.run_to_completion();
    assert_eq!(sim.now().as_ns(), 109_000);
    sim.inject_frame(SwitchId::new(1), PortId::new(1), vec![0; 1000]);
    sim.run_to_completion();
    let a = arrivals.borrow();
    assert_eq!(a[0], 9_000);
    // 109_000 (idle) + 8_000 serialization + 1_000 latency.
    assert_eq!(a[1], 118_000);
}

#[test]
fn directions_queue_independently() {
    // Reverse-direction traffic must not be delayed by forward-direction
    // serialization (full duplex).
    let mut t = Topology::new();
    t.add_node(SwitchId::new(1)).unwrap();
    t.add_node(SwitchId::new(2)).unwrap();
    let link = t
        .add_link(
            Endpoint::new(SwitchId::new(1), PortId::new(1)),
            Endpoint::new(SwitchId::new(2), PortId::new(1)),
            1_000,
        )
        .unwrap();
    t.set_bandwidth(link, 1_000_000_000);
    let fwd = Rc::new(RefCell::new(Vec::new()));
    let rev = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Simulator::new(t);
    sim.register_node(
        SwitchId::new(2),
        Box::new(Sink {
            arrivals: fwd.clone(),
        }),
    );
    sim.register_node(
        SwitchId::new(1),
        Box::new(Sink {
            arrivals: rev.clone(),
        }),
    );
    sim.inject_frame(SwitchId::new(1), PortId::new(1), vec![0; 1000]);
    sim.inject_frame(SwitchId::new(2), PortId::new(1), vec![0; 1000]);
    sim.run_to_completion();
    assert_eq!(*fwd.borrow(), vec![9_000]);
    assert_eq!(*rev.borrow(), vec![9_000]);
}

#[test]
#[should_panic(expected = "bandwidth must be positive")]
fn zero_bandwidth_rejected() {
    let mut t = Topology::new();
    t.add_node(SwitchId::new(1)).unwrap();
    t.add_node(SwitchId::new(2)).unwrap();
    let link = t
        .add_link(
            Endpoint::new(SwitchId::new(1), PortId::new(1)),
            Endpoint::new(SwitchId::new(2), PortId::new(1)),
            0,
        )
        .unwrap();
    t.set_bandwidth(link, 0);
}
