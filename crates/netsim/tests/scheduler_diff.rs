//! Differential property test: random event schedules drained through the
//! reference `BinaryHeap` scheduler and the calendar queue must produce
//! identical `(time, seq)` sequences — including same-timestamp bursts,
//! far-future outliers, and pushes interleaved with pops and peeks under
//! the simulator's `at >= now` discipline.

use p4auth_netsim::sched::{CalendarQueue, HeapScheduler, Scheduler};
use p4auth_netsim::time::SimTime;
use proptest::prelude::*;

/// One step of a randomly generated scheduler workload. Leads are relative
/// to the virtual `now` (the timestamp of the last popped event), matching
/// the simulator's only scheduling pattern.
#[derive(Clone, Debug)]
enum Op {
    /// Push one event `lead` ns into the future.
    Push(u64),
    /// Push a same-timestamp burst of `n` events, all at `now + lead`.
    Burst { lead: u64, n: u8 },
    /// Push an event far beyond any plausible bucket window.
    FarFuture(u64),
    /// Pop up to `n` events, advancing `now` to each popped timestamp.
    Pop(u8),
    /// Peek at the minimum, then push something possibly earlier than it
    /// (exercises the calendar queue's cursor pull-back and the
    /// peek-must-not-jump rule).
    PeekThenPush(u64),
    /// Push a same-timestamp burst attributed to several sources, with
    /// the simulator's packed `(source, per-source count)` tiebreak keys
    /// arriving in non-monotone key order — the insertion pattern sharded
    /// runs produce at shard boundaries.
    CrossBurst { lead: u64, srcs: Vec<u8> },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..200_000).prop_map(Op::Push),
        ((0u64..5_000), 2u8..6).prop_map(|(lead, n)| Op::Burst { lead, n }),
        (1u64 << 32..1u64 << 44).prop_map(Op::FarFuture),
        (1u8..8).prop_map(Op::Pop),
        (0u64..10_000).prop_map(Op::PeekThenPush),
        ((0u64..5_000), proptest::collection::vec(0u8..4, 2..6))
            .prop_map(|(lead, srcs)| Op::CrossBurst { lead, srcs }),
    ]
}

/// Applies the op sequence to both schedulers in lockstep, checking every
/// pop and peek agrees, then drains both and compares the tails.
fn run_diff(ops: &[Op], bucket_width_ns: u64) {
    let mut heap: HeapScheduler<u64> = HeapScheduler::new();
    let mut cal: CalendarQueue<u64> = CalendarQueue::with_bucket_width(bucket_width_ns);
    // Per-source counts: seq keys pack `(source << 48) | count`, matching
    // the simulator's tiebreak discipline (unique, not globally monotone).
    let mut counts = [0u64; 4];
    let mut now = 0u64;
    let mut push = |h: &mut HeapScheduler<u64>, c: &mut CalendarQueue<u64>, at: u64, src: usize| {
        counts[src] += 1;
        let seq = ((src as u64) << 48) | counts[src];
        h.schedule(SimTime::from_ns(at), seq, seq);
        c.schedule(SimTime::from_ns(at), seq, seq);
    };
    for op in ops {
        match *op {
            Op::Push(lead) => push(&mut heap, &mut cal, now + lead, 0),
            Op::Burst { lead, n } => {
                for _ in 0..n {
                    push(&mut heap, &mut cal, now + lead, 0);
                }
            }
            Op::CrossBurst { lead, ref srcs } => {
                for &src in srcs {
                    push(&mut heap, &mut cal, now + lead, src as usize);
                }
            }
            Op::FarFuture(lead) => push(&mut heap, &mut cal, now + lead, 0),
            Op::Pop(n) => {
                for _ in 0..n {
                    let a = heap.pop().map(|e| (e.at, e.seq, e.payload));
                    let b = cal.pop().map(|e| (e.at, e.seq, e.payload));
                    assert_eq!(a, b);
                    if let Some((at, _, _)) = a {
                        now = at.as_ns();
                    }
                }
            }
            Op::PeekThenPush(lead) => {
                assert_eq!(heap.next_at(), cal.next_at());
                push(&mut heap, &mut cal, now + lead, 0);
            }
        }
        assert_eq!(heap.len(), cal.len());
    }
    loop {
        assert_eq!(heap.next_at(), cal.next_at());
        let a = heap.pop().map(|e| (e.at, e.seq, e.payload));
        let b = cal.pop().map(|e| (e.at, e.seq, e.payload));
        assert_eq!(a, b);
        if a.is_none() {
            assert!(cal.is_empty());
            return;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn calendar_drains_identically_to_heap(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        // Spans the clamp floor, a mid value and widths larger than most
        // leads (so bucket occupancy patterns vary).
        width in prop_oneof![Just(1u64), Just(64), Just(1_000), Just(1 << 20)],
    ) {
        run_diff(&ops, width);
    }
}
