//! Property test for the conservative-lookahead invariant: on random
//! topologies with random shard assignments and random wall-clock
//! stagger schedules, no shard ever pops an event at or beyond a granted
//! horizon — neither its own window bound (chained windows included) nor
//! a neighbour's first-window horizon (`neighbour's earliest pending
//! event + min cross link latency`) — and the sharded drain — observed
//! through per-node delivery streams — equals the sequential reference
//! exactly.
//!
//! Topologies are rings with random chords; link latencies collide on a
//! small set {1, 2, 5} and boot timers collide on small delays, so
//! same-timestamp events regularly straddle shard boundaries (the case
//! the packed per-source tiebreak keys exist for).

use p4auth_netsim::frame::FrameBytes;
use p4auth_netsim::sched::SchedulerKind;
use p4auth_netsim::shard::{ShardPlan, ShardedSimulator};
use p4auth_netsim::sim::{Outbox, SimNode, Simulator};
use p4auth_netsim::time::SimTime;
use p4auth_netsim::topology::{Endpoint, Topology};
use p4auth_wire::ids::{PortId, SwitchId};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

type Delivery = (u64, u8, Vec<u8>);
type Streams = Arc<Vec<Mutex<Vec<Delivery>>>>;

/// A relay node: records every arrival; while the frame's TTL (byte 0)
/// is positive it forwards a decremented copy out a port chosen by the
/// TTL, with a processing delay driven by the flow byte. Everything is a
/// function of payload + topology, so runs are engine-independent.
struct Relay {
    index: usize,
    ports: Vec<PortId>,
    streams: Streams,
}

impl Relay {
    fn egress(&self, selector: usize) -> PortId {
        self.ports[selector % self.ports.len()]
    }
}

impl SimNode for Relay {
    fn on_frame(&mut self, now: SimTime, ingress: PortId, payload: FrameBytes, out: &mut Outbox) {
        self.streams[self.index].lock().unwrap().push((
            now.as_ns(),
            ingress.value(),
            payload.to_vec(),
        ));
        let ttl = payload[0];
        if ttl > 0 {
            let flow = payload[1];
            let port = self.egress(ttl as usize + flow as usize);
            out.send_delayed(port, vec![ttl - 1, flow], (flow % 3) as u64);
        }
    }

    fn on_timer(&mut self, _now: SimTime, timer_id: u64, out: &mut Outbox) {
        // timer_id packs (ttl << 8) | flow.
        let ttl = (timer_id >> 8) as u8;
        let flow = (timer_id & 0xff) as u8;
        out.send(self.egress(flow as usize), vec![ttl, flow]);
    }
}

/// Builds a ring of `n` nodes (ids 1..=n, port 1 = previous, port 2 =
/// next) plus chords on fresh ports, with latencies from {1, 2, 5}.
fn build_topology(n: usize, chords: &[(usize, usize)], lat_picks: &[usize]) -> Topology {
    const LATS: [u64; 3] = [1, 2, 5];
    let mut t = Topology::new();
    for i in 1..=n {
        t.add_node(SwitchId::new(i as u16)).unwrap();
    }
    let mut lat_idx = 0usize;
    let next_lat = |lat_idx: &mut usize| {
        let l = LATS[lat_picks[*lat_idx % lat_picks.len()] % LATS.len()];
        *lat_idx += 1;
        l
    };
    for i in 0..n {
        let a = SwitchId::new(i as u16 + 1);
        let b = SwitchId::new(((i + 1) % n) as u16 + 1);
        t.add_link(
            Endpoint::new(a, PortId::new(2)),
            Endpoint::new(b, PortId::new(1)),
            next_lat(&mut lat_idx),
        )
        .unwrap();
    }
    let mut next_port = vec![3u8; n + 1];
    for &(a, b) in chords {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        let (pa, pb) = (next_port[a + 1], next_port[b + 1]);
        next_port[a + 1] += 1;
        next_port[b + 1] += 1;
        t.add_link(
            Endpoint::new(SwitchId::new(a as u16 + 1), PortId::new(pa)),
            Endpoint::new(SwitchId::new(b as u16 + 1), PortId::new(pb)),
            next_lat(&mut lat_idx),
        )
        .unwrap();
    }
    t
}

fn register_relays(
    t: &Topology,
    n: usize,
    streams: &Streams,
    mut register: impl FnMut(SwitchId, Box<Relay>),
) {
    for i in 0..n {
        let id = SwitchId::new(i as u16 + 1);
        let ports: Vec<PortId> = t.neighbors(id).into_iter().map(|(p, _)| p).collect();
        register(
            id,
            Box::new(Relay {
                index: i,
                ports,
                streams: streams.clone(),
            }),
        );
    }
}

fn fresh_streams(n: usize) -> Streams {
    Arc::new((0..n).map(|_| Mutex::new(Vec::new())).collect())
}

fn unwrap_streams(streams: Streams) -> Vec<Vec<Delivery>> {
    Arc::try_unwrap(streams)
        .expect("all nodes dropped")
        .into_iter()
        .map(|m| m.into_inner().unwrap())
        .collect()
}

#[allow(clippy::type_complexity)]
fn run_case(
    n: usize,
    nshards: usize,
    assign: &[usize],
    chords: &[(usize, usize)],
    lat_picks: &[usize],
    timers: &[(usize, u64, u8)],
    stagger_ns: &[u64],
) {
    let topo = build_topology(n, chords, lat_picks);

    // Sequential calendar reference.
    let seq_streams = fresh_streams(n);
    let mut seq = Simulator::with_scheduler(topo.clone(), SchedulerKind::Calendar);
    register_relays(&topo, n, &seq_streams, |id, relay| {
        seq.register_node(id, relay)
    });
    for (i, &(node, delay, ttl)) in timers.iter().enumerate() {
        let node = SwitchId::new((node % n) as u16 + 1);
        let timer_id = ((ttl as u64) << 8) | (i as u64 & 0xff);
        seq.schedule_timer(node, timer_id, delay);
    }
    let seq_events = seq.run_to_completion();
    let (seq_stats, seq_now) = (seq.stats(), seq.now());
    drop(seq);
    let seq_streams = unwrap_streams(seq_streams);

    // Sharded run under a random assignment.
    let plan = ShardPlan::custom(&topo, nshards, |id| {
        assign[(id.value() as usize - 1) % assign.len()] % nshards
    });
    let shard_streams = fresh_streams(n);
    let mut sharded = ShardedSimulator::new(topo.clone(), plan.clone());
    // Random wall-clock stagger: worker scheduling must never matter.
    sharded.set_stagger(stagger_ns.to_vec());
    register_relays(&topo, n, &shard_streams, |id, relay| {
        sharded.register_node(id, relay)
    });
    for (i, &(node, delay, ttl)) in timers.iter().enumerate() {
        let node = SwitchId::new((node % n) as u16 + 1);
        let timer_id = ((ttl as u64) << 8) | (i as u64 & 0xff);
        sharded.schedule_timer(node, timer_id, delay);
    }
    let (report, audits) = sharded.run_audited();
    let shard_streams = unwrap_streams(shard_streams);

    // Drain order equals the sequential reference.
    assert_eq!(report.events, seq_events, "event count");
    assert_eq!(report.stats, seq_stats, "stats");
    assert_eq!(report.now, seq_now, "final clock");
    assert_eq!(shard_streams, seq_streams, "per-node delivery streams");

    // Lookahead invariants, checked from the raw per-rendezvous records.
    for (round, audit) in audits.iter().enumerate() {
        assert!(!audit.windows.is_empty(), "round {round} granted no window");
        for i in 0..nshards {
            // Granted horizons never move backwards along a chain, and no
            // window's pops ever reach its granted bound.
            let mut prev_bound = 0u64;
            for (w, win) in audit.windows.iter().enumerate() {
                assert!(
                    win.bound_ns[i] >= prev_bound,
                    "round {round} window {w}: shard {i}'s bound regressed \
                     ({} < {prev_bound})",
                    win.bound_ns[i]
                );
                prev_bound = win.bound_ns[i];
                if let Some(popped) = win.max_popped_ns[i] {
                    assert!(
                        popped < win.bound_ns[i],
                        "round {round} window {w}: shard {i} popped {popped} \
                         at/past its bound {}",
                        win.bound_ns[i]
                    );
                }
            }
            // The chain's first window is granted from the true horizons:
            // its pops must lie strictly below every neighbour's earliest
            // pending event plus the minimum crossing latency.
            let Some(popped) = audit.windows[0].max_popped_ns[i] else {
                continue;
            };
            for j in 0..nshards {
                if j == i {
                    continue;
                }
                let Some(lat) = plan.min_cross_latency_ns(&topo, j, i) else {
                    continue;
                };
                if let Some(neighbor_next) = audit.next_at_ns[j] {
                    assert!(
                        popped < neighbor_next + lat,
                        "round {round}: shard {i} popped {popped}, but neighbour \
                         {j}'s horizon was {neighbor_next} + {lat}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_drain_respects_lookahead_and_matches_sequential(
        n in 3usize..7,
        nshards in 1usize..5,
        assign in proptest::collection::vec(0usize..4, 8),
        chords in proptest::collection::vec((0usize..8, 0usize..8), 0..3),
        lat_picks in proptest::collection::vec(0usize..3, 16),
        timers in proptest::collection::vec((0usize..8, 1u64..5, 1u8..4), 1..6),
        // Random wall-clock stagger schedules (ns, scaled below): output
        // must be identical whatever the worker interleaving.
        stagger in proptest::collection::vec(0u64..4, 0..5),
    ) {
        let stagger_ns: Vec<u64> = stagger.iter().map(|&v| v * 600).collect();
        run_case(n, nshards, &assign, &chords, &lat_picks, &timers, &stagger_ns);
    }
}
