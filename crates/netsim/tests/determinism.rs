//! The simulator must be bit-for-bit deterministic: identical inputs give
//! identical event orders, clocks and statistics.

use p4auth_netsim::frame::FrameBytes;
use p4auth_netsim::sched::SchedulerKind;
use p4auth_netsim::sim::{Outbox, SimNode, Simulator};
use p4auth_netsim::time::SimTime;
use p4auth_netsim::topology::{Endpoint, Topology};
use p4auth_wire::ids::{PortId, SwitchId};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

type Trace = Rc<RefCell<Vec<(u64, u8, usize)>>>;

/// Forwards every frame onward around a ring and records arrivals.
struct Ring {
    trace: Trace,
    hops_left: Rc<RefCell<u32>>,
}

impl SimNode for Ring {
    fn on_frame(&mut self, now: SimTime, ingress: PortId, payload: FrameBytes, out: &mut Outbox) {
        self.trace
            .borrow_mut()
            .push((now.as_ns(), ingress.value(), payload.len()));
        let mut hops = self.hops_left.borrow_mut();
        if *hops > 0 {
            *hops -= 1;
            // Send out "the other" port (1 <-> 2).
            let egress = if ingress == PortId::new(1) {
                PortId::new(2)
            } else {
                PortId::new(1)
            };
            out.send_delayed(egress, payload, 7);
        }
    }
}

fn run_once(frames: &[(u8, Vec<u8>)], bandwidth: Option<u64>) -> (Vec<(u64, u8, usize)>, u64, u64) {
    run_once_with(frames, bandwidth, SchedulerKind::default())
}

fn run_once_with(
    frames: &[(u8, Vec<u8>)],
    bandwidth: Option<u64>,
    scheduler: SchedulerKind,
) -> (Vec<(u64, u8, usize)>, u64, u64) {
    // Triangle: S1 -p1- S2, S2 -p2- S3, S3 -p2- S1.
    let mut t = Topology::new();
    for i in 1..=3 {
        t.add_node(SwitchId::new(i)).unwrap();
    }
    let l1 = t
        .add_link(
            Endpoint::new(SwitchId::new(1), PortId::new(1)),
            Endpoint::new(SwitchId::new(2), PortId::new(1)),
            100,
        )
        .unwrap();
    t.add_link(
        Endpoint::new(SwitchId::new(2), PortId::new(2)),
        Endpoint::new(SwitchId::new(3), PortId::new(1)),
        150,
    )
    .unwrap();
    t.add_link(
        Endpoint::new(SwitchId::new(3), PortId::new(2)),
        Endpoint::new(SwitchId::new(1), PortId::new(2)),
        200,
    )
    .unwrap();
    if let Some(bps) = bandwidth {
        t.set_bandwidth(l1, bps);
    }
    let trace: Trace = Rc::new(RefCell::new(Vec::new()));
    let hops = Rc::new(RefCell::new(64u32));
    let mut sim = Simulator::with_scheduler(t, scheduler);
    for i in 1..=3 {
        sim.register_node(
            SwitchId::new(i),
            Box::new(Ring {
                trace: trace.clone(),
                hops_left: hops.clone(),
            }),
        );
    }
    for (port, payload) in frames {
        sim.inject_frame(SwitchId::new(1), PortId::new(*port), payload.clone());
    }
    sim.run_to_completion();
    let result = trace.borrow().clone();
    (result, sim.now().as_ns(), sim.stats().frames_delivered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two identical runs produce identical traces, clocks and stats —
    /// with and without bandwidth constraints.
    #[test]
    fn identical_inputs_identical_runs(
        frames in proptest::collection::vec(
            (1u8..=2, proptest::collection::vec(any::<u8>(), 1..64)),
            1..8,
        ),
        constrained: bool,
    ) {
        let bw = constrained.then_some(1_000_000u64);
        let a = run_once(&frames, bw);
        let b = run_once(&frames, bw);
        prop_assert_eq!(a, b);
    }

    /// The calendar queue is not just deterministic — it produces the
    /// exact trace the reference heap does, bandwidth model included.
    #[test]
    fn schedulers_are_bit_identical(
        frames in proptest::collection::vec(
            (1u8..=2, proptest::collection::vec(any::<u8>(), 1..64)),
            1..8,
        ),
        constrained: bool,
    ) {
        let bw = constrained.then_some(1_000_000u64);
        let heap = run_once_with(&frames, bw, SchedulerKind::Heap);
        let cal = run_once_with(&frames, bw, SchedulerKind::Calendar);
        prop_assert_eq!(heap, cal);
    }

    /// Time never runs backwards in a trace.
    #[test]
    fn trace_timestamps_are_monotone(
        frames in proptest::collection::vec(
            (1u8..=2, proptest::collection::vec(any::<u8>(), 1..32)),
            1..6,
        ),
    ) {
        let (trace, final_ns, delivered) = run_once(&frames, Some(2_000_000));
        for pair in trace.windows(2) {
            prop_assert!(pair[1].0 >= pair[0].0);
        }
        if let Some(last) = trace.last() {
            prop_assert!(final_ns >= last.0);
        }
        prop_assert_eq!(delivered as usize, trace.len());
    }
}
