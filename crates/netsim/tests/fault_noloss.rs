//! No-silent-loss property over random fault plans.
//!
//! Random link churn — a failing-and-recovering pod plus arbitrary
//! individual flaps — on a random fat-tree never strands a frame: at the
//! horizon every injected frame is either delivered, dead at a downed
//! link and counted in `frames_undeliverable`, or still queued (and then
//! drained by running to completion). The accounting identity
//! `injected == delivered + undeliverable` must hold exactly, every
//! scheduled fault must apply exactly once, and heap and calendar
//! schedulers must agree on all of it.

use proptest::prelude::*;
use std::cell::Cell;
use std::rc::Rc;

use p4auth_netsim::fattree::FatTree;
use p4auth_netsim::fault::FaultPlan;
use p4auth_netsim::frame::FrameBytes;
use p4auth_netsim::sched::SchedulerKind;
use p4auth_netsim::sim::{Outbox, SimNode, Simulator, TopologyEvent};
use p4auth_netsim::time::SimTime;
use p4auth_netsim::topology::HOST_ID_BASE;
use p4auth_wire::ids::{PortId, SwitchId};

/// ECMP forwarder with fail-over: routes by the fat tree's next-hop
/// function, steering around ports it has seen go down (the same shape
/// as the scale workload's fabric forwarder).
struct Fwd {
    id: SwitchId,
    ft: FatTree,
    down: u64,
}

impl SimNode for Fwd {
    fn on_frame(&mut self, _now: SimTime, _ingress: PortId, payload: FrameBytes, out: &mut Outbox) {
        let dst = SwitchId::new(u16::from_le_bytes([payload[0], payload[1]]));
        let flow = payload[2] as u64;
        let down = self.down;
        let is_down = |p: PortId| down & (1u64 << (p.value() & 63)) != 0;
        if let Some(port) = self.ft.next_hop_avoiding(self.id, dst, flow, is_down) {
            out.send(port, payload);
        }
    }

    fn on_topology(&mut self, _now: SimTime, event: TopologyEvent, _out: &mut Outbox) {
        let (up, a, b) = match event {
            TopologyEvent::LinkUp { a, b, .. } => (true, a, b),
            TopologyEvent::LinkDown { a, b, .. } => (false, a, b),
        };
        for ep in [a, b] {
            if ep.node == self.id {
                let bit = 1u64 << (ep.port.value() & 63);
                if up {
                    self.down &= !bit;
                } else {
                    self.down |= bit;
                }
            }
        }
    }
}

/// Host endpoint: injects its schedule one timer per frame, and counts
/// arrivals into a shared cell.
struct Host {
    /// `(dst host id, flow)` per local frame index (the timer id).
    sends: Vec<(SwitchId, u8)>,
    delivered: Rc<Cell<u64>>,
}

impl SimNode for Host {
    fn on_frame(&mut self, _now: SimTime, _ingress: PortId, _payload: FrameBytes, _: &mut Outbox) {
        self.delivered.set(self.delivered.get() + 1);
    }

    fn on_timer(&mut self, _now: SimTime, timer_id: u64, out: &mut Outbox) {
        let (dst, flow) = self.sends[timer_id as usize];
        let mut buf = [0u8; 3];
        buf[..2].copy_from_slice(&dst.value().to_le_bytes());
        buf[2] = flow;
        out.send(PortId::new(1), FrameBytes::from_slice(&buf));
    }
}

/// One generated scenario: which pod fails and when, extra individual
/// flaps, and the injected traffic.
#[derive(Clone, Debug)]
struct Scenario {
    pod: u16,
    pod_down_at: u64,
    pod_dur: u64,
    /// `(link seed, down_at, duration)` — the seed picks a live link.
    flaps: Vec<(u32, u64, u64)>,
    /// `(src seed, dst seed, inject_at, flow)`.
    frames: Vec<(u16, u16, u64, u8)>,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        0u16..4,
        1_000u64..400_000,
        1_000u64..400_000,
        proptest::collection::vec((any::<u32>(), 1_000u64..600_000, 1_000u64..200_000), 0..6),
        proptest::collection::vec(
            (any::<u16>(), any::<u16>(), 0u64..500_000, any::<u8>()),
            1..40,
        ),
    )
        .prop_map(|(pod, pod_down_at, pod_dur, flaps, frames)| Scenario {
            pod,
            pod_down_at,
            pod_dur,
            flaps,
            frames,
        })
}

/// Builds the sim, runs the scenario, and returns the deterministic
/// outcome `(stats, delivered, final now_ns)`.
fn run_scenario(s: &Scenario, kind: SchedulerKind) -> (p4auth_netsim::sim::SimStats, u64, u64) {
    let ft = FatTree::new(4);
    let topo = ft.build(1_500);
    let nlinks = topo.links().len() as u32;

    let mut plan = FaultPlan::new();
    plan.pod_failure(&topo, &ft, s.pod, s.pod_down_at, s.pod_down_at + s.pod_dur);
    for &(seed, down_at, dur) in &s.flaps {
        let link = p4auth_netsim::topology::LinkId(seed % nlinks);
        // Skip instants the pod plan already owns; FaultPlan dedups exact
        // duplicates but opposite transitions at one instant would make
        // the final link state order-defined rather than plan-defined.
        if plan
            .events()
            .iter()
            .any(|e| e.link == link && (e.at_ns == down_at || e.at_ns == down_at + dur))
        {
            continue;
        }
        plan.flap(link, down_at, down_at + dur);
    }
    let planned = plan.len() as u64;

    let mut sim = Simulator::with_scheduler(topo, kind);
    for sw in 0..ft.switch_count() {
        let id = SwitchId::new(sw + 1);
        sim.register_node(id, Box::new(Fwd { id, ft, down: 0 }));
    }
    let delivered = Rc::new(Cell::new(0u64));
    let hosts = ft.host_count();
    let mut sends: Vec<Vec<(SwitchId, u8)>> = vec![Vec::new(); hosts as usize];
    let mut schedule: Vec<(u16, u64, u64)> = Vec::new();
    let mut injected = 0u64;
    for &(src_seed, dst_seed, at, flow) in &s.frames {
        let src = src_seed % hosts;
        let mut dst = dst_seed % (hosts - 1);
        if dst >= src {
            dst += 1;
        }
        let idx = sends[src as usize].len() as u64;
        sends[src as usize].push((ft.host(dst), flow));
        schedule.push((src, idx, at));
        injected += 1;
    }
    for (h, host_sends) in sends.into_iter().enumerate() {
        sim.register_node(
            SwitchId::new(HOST_ID_BASE + h as u16),
            Box::new(Host {
                sends: host_sends,
                delivered: delivered.clone(),
            }),
        );
    }
    for (src, idx, at) in schedule {
        sim.schedule_timer(ft.host(src), idx, at);
    }
    sim.install_fault_plan(&plan);

    // At the horizon nothing is lost silently: every frame is delivered,
    // counted dead, or still in flight.
    let horizon = 700_000 + s.pod_down_at + s.pod_dur;
    sim.run_until(SimTime::from_ns(horizon));
    let mid = delivered.get() + sim.stats().frames_undeliverable;
    assert!(
        mid <= injected,
        "over-accounted at horizon: {mid} > {injected}"
    );

    sim.run_to_completion();
    let stats = sim.stats();
    assert_eq!(
        delivered.get() + stats.frames_undeliverable,
        injected,
        "silent loss: {} delivered + {} undeliverable != {injected} injected",
        delivered.get(),
        stats.frames_undeliverable,
    );
    assert_eq!(
        stats.faults_applied, planned,
        "fault schedule did not apply exactly"
    );
    (stats, delivered.get(), sim.now().as_ns())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_fault_plans_never_strand_a_frame(s in scenario_strategy()) {
        let heap = run_scenario(&s, SchedulerKind::Heap);
        let cal = run_scenario(&s, SchedulerKind::Calendar);
        prop_assert_eq!(heap, cal, "schedulers diverged under faults");
    }
}
