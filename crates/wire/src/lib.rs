//! # p4auth-wire
//!
//! The P4Auth wire protocol (paper §V, Fig. 7): message headers, typed
//! bodies and byte-exact codecs for everything exchanged between a
//! controller and a switch data plane (C-DP) or between two data planes
//! (DP-DP).
//!
//! A P4Auth message is a fixed 14-byte header followed by a typed payload:
//!
//! ```text
//! +---------+---------+----------+------------+----------+------+--------+
//! | hdrType | msgType | seqNum   | keyVersion | switchId | port | digest |
//! |  1 B    |  1 B    |  4 B     |  1 B       |  2 B     | 1 B  |  4 B   |
//! +---------+---------+----------+------------+----------+------+--------+
//! ```
//!
//! * `hdrType` selects register operation / alert / key exchange.
//! * `msgType`'s meaning depends on `hdrType` (readReq, writeReq, ack, nAck;
//!   alert kinds; the five key-management messages of Fig. 14).
//! * `seqNum` maps responses to requests and defends against replay (§VIII).
//! * `keyVersion` implements consistent key updates (§VI-C): the receiver
//!   validates with the tagged version (old or new key).
//! * `digest` = `HMAC_K(header-without-digest || payload)` (Eqn. 4).
//!
//! Message sizes reproduce the paper's Table III accounting exactly:
//! EAK messages are 22 bytes, ADHKD messages 30 bytes, KMP control messages
//! 18 bytes — so local-key initialization exchanges 104 bytes over 4
//! messages and a port-key update 78 bytes over 3 messages, as published.
//!
//! ```
//! use p4auth_wire::{Message, header::HdrType};
//! use p4auth_wire::body::RegisterOp;
//! use p4auth_wire::ids::{RegId, SeqNum, SwitchId};
//!
//! let msg = Message::register_request(
//!     SwitchId::new(3),
//!     SeqNum::new(7),
//!     RegisterOp::write_req(RegId::new(1234), 0, 99),
//! );
//! let bytes = msg.encode();
//! let decoded = Message::decode(&bytes)?;
//! assert_eq!(decoded, msg);
//! assert_eq!(decoded.header().hdr_type, HdrType::RegisterOp);
//! # Ok::<(), p4auth_wire::error::DecodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod body;
pub mod error;
pub mod header;
pub mod ids;
pub mod message;

pub use message::Message;
