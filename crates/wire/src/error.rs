//! Wire decoding errors.

use std::fmt;

/// Error returned when a byte buffer cannot be decoded as a P4Auth message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The buffer ended before the required number of bytes.
    Truncated {
        /// Bytes needed by the decoder.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Unrecognized `hdrType` byte.
    UnknownHdrType(u8),
    /// Unrecognized `msgType` byte for the given `hdrType`.
    UnknownMsgType {
        /// The header family the message claimed.
        hdr_type: u8,
        /// The offending message type byte.
        msg_type: u8,
    },
    /// A payload field held an invalid value.
    InvalidField(&'static str),
    /// Trailing bytes remained after a complete message was decoded.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated message: needed {needed} bytes, got {available}"
                )
            }
            DecodeError::UnknownHdrType(t) => write!(f, "unknown hdrType {t}"),
            DecodeError::UnknownMsgType { hdr_type, msg_type } => {
                write!(f, "unknown msgType {msg_type} for hdrType {hdr_type}")
            }
            DecodeError::InvalidField(name) => write!(f, "invalid field: {name}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DecodeError::Truncated {
                needed: 14,
                available: 3
            }
            .to_string(),
            "truncated message: needed 14 bytes, got 3"
        );
        assert_eq!(
            DecodeError::UnknownHdrType(9).to_string(),
            "unknown hdrType 9"
        );
        assert_eq!(
            DecodeError::UnknownMsgType {
                hdr_type: 1,
                msg_type: 7
            }
            .to_string(),
            "unknown msgType 7 for hdrType 1"
        );
        assert_eq!(
            DecodeError::TrailingBytes(2).to_string(),
            "2 trailing bytes after message"
        );
        assert_eq!(
            DecodeError::InvalidField("salt").to_string(),
            "invalid field: salt"
        );
    }
}
