//! Identifier newtypes used across the P4Auth protocol.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a switch in the network (carried in the header so receivers
/// can select the per-peer sequence window and key).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SwitchId(u16);

impl SwitchId {
    /// The controller's reserved id.
    pub const CONTROLLER: SwitchId = SwitchId(0);

    /// Creates a switch id.
    pub const fn new(raw: u16) -> Self {
        SwitchId(raw)
    }

    /// Raw wire value.
    pub const fn value(self) -> u16 {
        self.0
    }

    /// Whether this id denotes the controller endpoint.
    pub const fn is_controller(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_controller() {
            f.write_str("C")
        } else {
            write!(f, "S{}", self.0)
        }
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A switch port number. Port keys live at `key_register[port]`; index 0 is
/// reserved for the local key (§VII), so valid data ports are 1-based.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct PortId(u8);

impl PortId {
    /// The CPU/controller port (also the key-register slot of `K_local`).
    pub const CPU: PortId = PortId(0);

    /// Creates a port id.
    pub const fn new(raw: u8) -> Self {
        PortId(raw)
    }

    /// Raw wire value.
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Whether this is the CPU port.
    pub const fn is_cpu(self) -> bool {
        self.0 == 0
    }

    /// Key-register index for this port (identity; named for intent).
    pub const fn key_index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_cpu() {
            f.write_str("cpu")
        } else {
            write!(f, "p{}", self.0)
        }
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A register identifier from the p4Info file (§VII): the controller names
/// registers by id, the data plane maps them back with the
/// `reg_id_to_name_mapping` table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct RegId(u32);

impl RegId {
    /// Creates a register id.
    pub const fn new(raw: u32) -> Self {
        RegId(raw)
    }

    /// Raw wire value.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reg#{}", self.0)
    }
}

/// Sequence number for request/response matching and replay defence.
///
/// The paper notes 16-bit sequence numbers wrap quickly; it recommends 32
/// bits plus key rollover inside the wrap-around window (§VIII), which is
/// what we implement.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug, Serialize, Deserialize,
)]
pub struct SeqNum(u32);

impl SeqNum {
    /// Creates a sequence number.
    pub const fn new(raw: u32) -> Self {
        SeqNum(raw)
    }

    /// Raw wire value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// The successor, wrapping at `u32::MAX`.
    #[must_use]
    pub const fn next(self) -> SeqNum {
        SeqNum(self.0.wrapping_add(1))
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Key version tag for consistent key updates (§VI-C): both planes keep the
/// old and the new key; the sender tags which one authenticated the message.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug, Serialize, Deserialize)]
pub struct KeyVersion(u8);

impl KeyVersion {
    /// The initial version.
    pub const INITIAL: KeyVersion = KeyVersion(0);

    /// Creates a key version.
    pub const fn new(raw: u8) -> Self {
        KeyVersion(raw)
    }

    /// Raw wire value.
    pub const fn value(self) -> u8 {
        self.0
    }

    /// The next version (wrapping).
    #[must_use]
    pub const fn next(self) -> KeyVersion {
        KeyVersion(self.0.wrapping_add(1))
    }

    /// Whether `other` is this version's immediate predecessor.
    pub const fn is_predecessor(self, other: KeyVersion) -> bool {
        other.0.wrapping_add(1) == self.0
    }
}

impl fmt::Display for KeyVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_id_is_zero() {
        assert!(SwitchId::CONTROLLER.is_controller());
        assert!(!SwitchId::new(5).is_controller());
        assert_eq!(format!("{:?}", SwitchId::CONTROLLER), "C");
        assert_eq!(format!("{}", SwitchId::new(4)), "S4");
    }

    #[test]
    fn cpu_port_is_local_key_slot() {
        assert!(PortId::CPU.is_cpu());
        assert_eq!(PortId::CPU.key_index(), 0);
        assert_eq!(PortId::new(7).key_index(), 7);
        assert_eq!(format!("{}", PortId::new(2)), "p2");
        assert_eq!(format!("{}", PortId::CPU), "cpu");
    }

    #[test]
    fn seqnum_wraps() {
        assert_eq!(SeqNum::new(5).next(), SeqNum::new(6));
        assert_eq!(SeqNum::new(u32::MAX).next(), SeqNum::new(0));
    }

    #[test]
    fn key_version_succession() {
        let v0 = KeyVersion::INITIAL;
        let v1 = v0.next();
        assert!(v1.is_predecessor(v0));
        assert!(!v0.is_predecessor(v1));
        assert_eq!(KeyVersion::new(255).next(), KeyVersion::new(0));
        assert!(KeyVersion::new(0).is_predecessor(KeyVersion::new(255)));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", RegId::new(1234)), "reg#1234");
        assert_eq!(format!("{}", KeyVersion::new(3)), "v3");
        assert_eq!(format!("{}", SeqNum::new(9)), "9");
    }
}
