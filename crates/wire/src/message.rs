//! Complete P4Auth messages: header + body, with digest plumbing.

use crate::body::{Alert, Body, InNetwork, KeyExchange, RegisterOp};
use crate::error::DecodeError;
use crate::header::{Header, HEADER_LEN};
use crate::ids::{KeyVersion, PortId, SeqNum, SwitchId};
use bytes::BufMut;
use p4auth_primitives::mac::Mac;
use p4auth_primitives::{Digest32, Key64};
use serde::{Deserialize, Serialize};

/// A complete P4Auth protocol message.
///
/// The digest field starts zeroed; [`Message::seal`] computes and installs
/// it under a key, and [`Message::verify`] checks it (Eqn. 4: the digest
/// covers every header field except the digest itself, plus the payload).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Message {
    header: Header,
    body: Body,
}

impl Message {
    /// Builds a message; the header's `msgType`/`hdrType` are derived from
    /// the body and the digest is zeroed.
    pub fn new(sender: SwitchId, port: PortId, seq_num: SeqNum, body: Body) -> Self {
        let header = Header::new(body.hdr_type(), body.msg_type(), seq_num, sender, port);
        Message { header, body }
    }

    /// Convenience: a C-DP register request on the CPU port.
    pub fn register_request(sender: SwitchId, seq_num: SeqNum, op: RegisterOp) -> Self {
        Message::new(sender, PortId::CPU, seq_num, Body::Register(op))
    }

    /// Convenience: an alert from `sender` toward the controller.
    pub fn alert(sender: SwitchId, seq_num: SeqNum, alert: Alert) -> Self {
        Message::new(sender, PortId::CPU, seq_num, Body::Alert(alert))
    }

    /// Convenience: a key-exchange message.
    pub fn key_exchange(sender: SwitchId, port: PortId, seq_num: SeqNum, kex: KeyExchange) -> Self {
        Message::new(sender, port, seq_num, Body::KeyExchange(kex))
    }

    /// Convenience: an in-network DP-DP control message on `port`.
    pub fn in_network(sender: SwitchId, port: PortId, seq_num: SeqNum, inner: InNetwork) -> Self {
        Message::new(sender, port, seq_num, Body::InNetwork(inner))
    }

    /// The message header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// The typed body.
    pub fn body(&self) -> &Body {
        &self.body
    }

    /// Mutable body access — exists so adversary models can tamper with
    /// in-flight messages exactly like a MitM would.
    pub fn body_mut(&mut self) -> &mut Body {
        &mut self.body
    }

    /// Mutable header access (adversary models; key-version tagging).
    pub fn header_mut(&mut self) -> &mut Header {
        &mut self.header
    }

    /// Sets the key-version tag (§VI-C consistent updates).
    #[must_use]
    pub fn with_key_version(mut self, version: KeyVersion) -> Self {
        self.header.key_version = version;
        self
    }

    /// The byte string the digest is computed over:
    /// `header-without-digest || payload`.
    pub fn digest_input(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN - 4 + self.body.wire_len());
        out.extend_from_slice(&self.header.digest_input());
        self.body.encode_into(&mut out);
        out
    }

    /// Computes the digest under `key` and installs it in the header.
    pub fn seal(&mut self, mac: &dyn Mac, key: Key64) {
        let input = self.digest_input();
        self.header.digest = mac.compute(key, &[&input]);
    }

    /// Sealed copy of this message.
    #[must_use]
    pub fn sealed(mut self, mac: &dyn Mac, key: Key64) -> Self {
        self.seal(mac, key);
        self
    }

    /// Verifies the installed digest under `key` (constant-time compare).
    pub fn verify(&self, mac: &dyn Mac, key: Key64) -> bool {
        let input = self.digest_input();
        mac.verify(key, &[&input], self.header.digest)
    }

    /// The digest currently installed in the header.
    pub fn digest(&self) -> Digest32 {
        self.header.digest
    }

    /// Total encoded size in bytes.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.body.wire_len()
    }

    /// Encodes the full message.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.header.encode_into(&mut buf);
        self.body.encode_into(&mut buf);
        buf
    }

    /// Encodes into an existing buffer.
    pub fn encode_into(&self, buf: &mut impl BufMut) {
        self.header.encode_into(buf);
        self.body.encode_into(buf);
    }

    /// Decodes a full message; the entire buffer must be consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncation, unknown types, invalid
    /// fields, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut buf = bytes;
        let header = Header::decode_from(&mut buf)?;
        let body = Body::decode_from(header.hdr_type, header.msg_type, &mut buf)?;
        if !buf.is_empty() {
            return Err(DecodeError::TrailingBytes(buf.len()));
        }
        Ok(Message { header, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{AlertKind, EakStep};
    use crate::ids::RegId;
    use p4auth_primitives::mac::HalfSipHashMac;

    fn mac() -> HalfSipHashMac {
        HalfSipHashMac::default()
    }

    fn key() -> Key64 {
        Key64::new(0x1234_5678_9abc_def0)
    }

    #[test]
    fn seal_then_verify() {
        let mut m = Message::register_request(
            SwitchId::CONTROLLER,
            SeqNum::new(1),
            RegisterOp::read_req(RegId::new(1234), 0),
        );
        m.seal(&mac(), key());
        assert!(m.verify(&mac(), key()));
        assert!(!m.verify(&mac(), Key64::new(0)));
    }

    #[test]
    fn tampered_payload_fails_verification() {
        let m = Message::register_request(
            SwitchId::CONTROLLER,
            SeqNum::new(1),
            RegisterOp::write_req(RegId::new(1), 0, 10),
        )
        .sealed(&mac(), key());
        let mut tampered = m.clone();
        *tampered.body_mut() = Body::Register(RegisterOp::write_req(RegId::new(1), 0, 999));
        assert!(!tampered.verify(&mac(), key()));
    }

    #[test]
    fn tampered_header_fails_verification() {
        let m = Message::register_request(
            SwitchId::CONTROLLER,
            SeqNum::new(5),
            RegisterOp::read_req(RegId::new(1), 0),
        )
        .sealed(&mac(), key());
        let mut replayed = m.clone();
        replayed.header_mut().seq_num = SeqNum::new(6);
        assert!(!replayed.verify(&mac(), key()));
    }

    #[test]
    fn encode_decode_roundtrip_preserves_digest() {
        let m = Message::key_exchange(
            SwitchId::new(2),
            PortId::new(3),
            SeqNum::new(9),
            KeyExchange::EakSalt {
                step: EakStep::Salt2,
                salt: 0xfeed,
            },
        )
        .with_key_version(KeyVersion::new(1))
        .sealed(&mac(), key());
        let decoded = Message::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert!(decoded.verify(&mac(), key()));
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let m = Message::alert(
            SwitchId::new(1),
            SeqNum::new(2),
            Alert {
                kind: AlertKind::DigestMismatch,
                offending_seq: SeqNum::new(1),
                detail: 0,
            },
        );
        let mut bytes = m.encode();
        bytes.push(0);
        assert_eq!(Message::decode(&bytes), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn on_wire_tampering_detected_after_decode() {
        // Flip one payload byte on the wire; decoding succeeds (bytes are
        // well-formed) but verification must fail.
        let m = Message::register_request(
            SwitchId::CONTROLLER,
            SeqNum::new(3),
            RegisterOp::write_req(RegId::new(7), 1, 42),
        )
        .sealed(&mac(), key());
        let mut bytes = m.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let decoded = Message::decode(&bytes).unwrap();
        assert!(!decoded.verify(&mac(), key()));
    }

    #[test]
    fn table_iii_total_message_sizes() {
        // EAK 22 B, ADHKD 30 B, KMP control 18 B (Table III calibration).
        let eak = Message::key_exchange(
            SwitchId::CONTROLLER,
            PortId::CPU,
            SeqNum::new(0),
            KeyExchange::EakSalt {
                step: EakStep::Salt1,
                salt: 0,
            },
        );
        assert_eq!(eak.wire_len(), 22);
        assert_eq!(eak.encode().len(), 22);

        let adhkd = Message::key_exchange(
            SwitchId::CONTROLLER,
            PortId::CPU,
            SeqNum::new(0),
            KeyExchange::Adhkd {
                role: crate::body::AdhkdRole::Offer,
                context: crate::body::KexContext::LocalInit,
                public_key: 0,
                salt: 0,
            },
        );
        assert_eq!(adhkd.wire_len(), 30);

        let ctl = Message::key_exchange(
            SwitchId::CONTROLLER,
            PortId::CPU,
            SeqNum::new(0),
            KeyExchange::PortKeyInit {
                peer: SwitchId::new(1),
                peer_port: PortId::new(1),
            },
        );
        assert_eq!(ctl.wire_len(), 18);
    }

    #[test]
    fn key_version_affects_digest() {
        let m0 = Message::register_request(
            SwitchId::CONTROLLER,
            SeqNum::new(1),
            RegisterOp::read_req(RegId::new(1), 0),
        );
        let m1 = m0.clone().with_key_version(KeyVersion::new(1));
        assert_ne!(
            m0.sealed(&mac(), key()).digest(),
            m1.sealed(&mac(), key()).digest()
        );
    }
}
