//! Typed message bodies for each header family.

use crate::error::DecodeError;
use crate::header::HdrType;
use crate::ids::{PortId, RegId, SeqNum, SwitchId};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

/// Why a request was rejected with a `nAck`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum NackReason {
    /// The digest did not verify (possible MitM, §V).
    DigestMismatch = 1,
    /// No `reg_id_to_name_mapping` entry for the register id (§VII).
    UnknownRegister = 2,
    /// The sequence number was outside the expected window (§VIII replay).
    SeqMismatch = 3,
    /// The register index was out of bounds.
    IndexOutOfRange = 4,
    /// The ingress channel is quarantined by the controller's adaptive
    /// defence; the request is dropped until a fresh key is installed.
    Quarantined = 5,
}

impl NackReason {
    fn from_wire(raw: u8) -> Result<Self, DecodeError> {
        match raw {
            1 => Ok(NackReason::DigestMismatch),
            2 => Ok(NackReason::UnknownRegister),
            3 => Ok(NackReason::SeqMismatch),
            4 => Ok(NackReason::IndexOutOfRange),
            5 => Ok(NackReason::Quarantined),
            _ => Err(DecodeError::InvalidField("nack reason")),
        }
    }
}

/// Register read/write request-response messages (`readReq`, `writeReq`,
/// `ack`, `nAck` — Fig. 7/8). Fixed 16-byte payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RegisterOp {
    /// Controller asks the data plane to read `reg[index]`.
    ReadReq {
        /// Target register id (from the p4Info file).
        reg: RegId,
        /// Register index to read.
        index: u32,
    },
    /// Controller asks the data plane to write `value` to `reg[index]`.
    WriteReq {
        /// Target register id.
        reg: RegId,
        /// Register index to write.
        index: u32,
        /// Value to store.
        value: u64,
    },
    /// Positive response: for reads, `value` carries the register content.
    Ack {
        /// Register the response refers to.
        reg: RegId,
        /// Index the response refers to.
        index: u32,
        /// Read value (0 for write acks).
        value: u64,
    },
    /// Negative response.
    Nack {
        /// Register the response refers to.
        reg: RegId,
        /// Index the response refers to.
        index: u32,
        /// Rejection reason.
        reason: NackReason,
    },
}

impl RegisterOp {
    /// Payload length on the wire.
    pub const WIRE_LEN: usize = 16;

    /// Convenience constructor for a read request.
    pub fn read_req(reg: RegId, index: u32) -> Self {
        RegisterOp::ReadReq { reg, index }
    }

    /// Convenience constructor for a write request.
    pub fn write_req(reg: RegId, index: u32, value: u64) -> Self {
        RegisterOp::WriteReq { reg, index, value }
    }

    /// `msgType` byte for the header.
    pub fn msg_type(&self) -> u8 {
        match self {
            RegisterOp::ReadReq { .. } => 1,
            RegisterOp::WriteReq { .. } => 2,
            RegisterOp::Ack { .. } => 3,
            RegisterOp::Nack { .. } => 4,
        }
    }

    /// Whether this is a request (as opposed to a response).
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            RegisterOp::ReadReq { .. } | RegisterOp::WriteReq { .. }
        )
    }

    fn encode_into(&self, buf: &mut impl BufMut) {
        match *self {
            RegisterOp::ReadReq { reg, index } => {
                buf.put_u32(reg.value());
                buf.put_u32(index);
                buf.put_u64(0);
            }
            RegisterOp::WriteReq { reg, index, value } | RegisterOp::Ack { reg, index, value } => {
                buf.put_u32(reg.value());
                buf.put_u32(index);
                buf.put_u64(value);
            }
            RegisterOp::Nack { reg, index, reason } => {
                buf.put_u32(reg.value());
                buf.put_u32(index);
                buf.put_u64(reason as u64);
            }
        }
    }

    fn decode_from(msg_type: u8, buf: &mut impl Buf) -> Result<Self, DecodeError> {
        if buf.remaining() < Self::WIRE_LEN {
            return Err(DecodeError::Truncated {
                needed: Self::WIRE_LEN,
                available: buf.remaining(),
            });
        }
        let reg = RegId::new(buf.get_u32());
        let index = buf.get_u32();
        let value = buf.get_u64();
        match msg_type {
            1 => Ok(RegisterOp::ReadReq { reg, index }),
            2 => Ok(RegisterOp::WriteReq { reg, index, value }),
            3 => Ok(RegisterOp::Ack { reg, index, value }),
            4 => Ok(RegisterOp::Nack {
                reg,
                index,
                reason: NackReason::from_wire(value as u8)?,
            }),
            other => Err(DecodeError::UnknownMsgType {
                hdr_type: HdrType::RegisterOp as u8,
                msg_type: other,
            }),
        }
    }
}

/// What triggered an alert.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum AlertKind {
    /// Digest verification failed — possible MitM tampering.
    DigestMismatch = 1,
    /// Replay suspected: sequence number outside the expected window.
    SeqMismatch = 2,
    /// The data plane suppressed further alerts this period (DoS defence,
    /// §VIII).
    RateLimited = 3,
    /// A key-exchange message failed authentication.
    KeyExchangeFailure = 4,
}

impl AlertKind {
    fn from_wire(raw: u8) -> Result<Self, DecodeError> {
        match raw {
            1 => Ok(AlertKind::DigestMismatch),
            2 => Ok(AlertKind::SeqMismatch),
            3 => Ok(AlertKind::RateLimited),
            4 => Ok(AlertKind::KeyExchangeFailure),
            _ => Err(DecodeError::InvalidField("alert kind")),
        }
    }
}

/// An alert message raised toward the controller (PacketIn in the
/// prototype). 8-byte payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Alert {
    /// What went wrong.
    pub kind: AlertKind,
    /// Sequence number of the offending message.
    pub offending_seq: SeqNum,
    /// Kind-specific detail (e.g. the port a tampered probe arrived on).
    pub detail: u32,
}

impl Alert {
    /// Payload length on the wire.
    pub const WIRE_LEN: usize = 8;

    /// `msgType` byte for the header.
    pub fn msg_type(&self) -> u8 {
        self.kind as u8
    }

    fn encode_into(&self, buf: &mut impl BufMut) {
        buf.put_u32(self.offending_seq.value());
        buf.put_u32(self.detail);
    }

    fn decode_from(msg_type: u8, buf: &mut impl Buf) -> Result<Self, DecodeError> {
        if buf.remaining() < Self::WIRE_LEN {
            return Err(DecodeError::Truncated {
                needed: Self::WIRE_LEN,
                available: buf.remaining(),
            });
        }
        let kind = AlertKind::from_wire(msg_type).map_err(|_| DecodeError::UnknownMsgType {
            hdr_type: HdrType::Alert as u8,
            msg_type,
        })?;
        Ok(Alert {
            kind,
            offending_seq: SeqNum::new(buf.get_u32()),
            detail: buf.get_u32(),
        })
    }
}

/// Which EAK step a salt message carries (Fig. 11).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum EakStep {
    /// Controller → DP: random salt `S1`.
    Salt1,
    /// DP → controller: random salt `S2`.
    Salt2,
}

/// Whether an ADHKD message opens or answers the exchange (Fig. 12).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AdhkdRole {
    /// Step 2: carries `PK1`, `S1`.
    Offer,
    /// Step 4: carries `PK2`, `S2`.
    Answer,
}

/// Which key an ADHKD exchange is establishing, and over which path
/// (Fig. 14 a–d).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum KexContext {
    /// Local-key initialization after boot (authenticated with `K_auth`).
    LocalInit = 1,
    /// Local-key rollover (authenticated with current `K_local`).
    LocalUpdate = 2,
    /// Port-key initialization, redirected DP1→C→DP2 (`initKeyExch`,
    /// authenticated per-leg with each `K_local`).
    PortInitRedirect = 3,
    /// Port-key rollover, direct DP-DP (authenticated with current
    /// `K_port`).
    PortUpdateDirect = 4,
}

impl KexContext {
    fn from_wire(raw: u8) -> Result<Self, DecodeError> {
        match raw {
            1 => Ok(KexContext::LocalInit),
            2 => Ok(KexContext::LocalUpdate),
            3 => Ok(KexContext::PortInitRedirect),
            4 => Ok(KexContext::PortUpdateDirect),
            _ => Err(DecodeError::InvalidField("kex context")),
        }
    }
}

/// Key-management protocol messages (the five message types of Fig. 14).
///
/// Wire sizes are chosen to reproduce Table III exactly: EAK = 22 B total,
/// ADHKD = 30 B, KMP control = 18 B.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum KeyExchange {
    /// EAK salt exchange (`eakExch`): 8-byte payload.
    EakSalt {
        /// Which step of Fig. 11.
        step: EakStep,
        /// The 32-bit half-salt.
        salt: u32,
    },
    /// An ADHKD half-exchange (`initKeyExch` / `updKeyExch`): 16-byte
    /// payload.
    Adhkd {
        /// Offer or answer.
        role: AdhkdRole,
        /// Which key is being established and over which path.
        context: KexContext,
        /// The modified-DH public key (`PK1` or `PK2`).
        public_key: u64,
        /// The 32-bit half-salt (`S1` or `S2`).
        salt: u32,
    },
    /// `portKeyInit`: controller tells a DP to start a port-key exchange
    /// with `peer` via the controller. 4-byte payload.
    PortKeyInit {
        /// The neighbour switch to establish a key with.
        peer: SwitchId,
        /// The local port facing that neighbour.
        peer_port: PortId,
    },
    /// `portKeyUpdate`: controller tells a DP to roll the key it shares
    /// with `peer`, directly DP-DP. 4-byte payload.
    PortKeyUpdate {
        /// The neighbour switch whose shared key rolls over.
        peer: SwitchId,
        /// The local port facing that neighbour.
        peer_port: PortId,
    },
}

impl KeyExchange {
    /// `msgType` byte for the header.
    pub fn msg_type(&self) -> u8 {
        match self {
            KeyExchange::EakSalt {
                step: EakStep::Salt1,
                ..
            } => 1,
            KeyExchange::EakSalt {
                step: EakStep::Salt2,
                ..
            } => 2,
            KeyExchange::Adhkd {
                role: AdhkdRole::Offer,
                ..
            } => 3,
            KeyExchange::Adhkd {
                role: AdhkdRole::Answer,
                ..
            } => 4,
            KeyExchange::PortKeyInit { .. } => 5,
            KeyExchange::PortKeyUpdate { .. } => 6,
        }
    }

    /// Payload length on the wire for this variant.
    pub fn wire_len(&self) -> usize {
        match self {
            KeyExchange::EakSalt { .. } => 8,
            KeyExchange::Adhkd { .. } => 16,
            KeyExchange::PortKeyInit { .. } | KeyExchange::PortKeyUpdate { .. } => 4,
        }
    }

    fn encode_into(&self, buf: &mut impl BufMut) {
        match *self {
            KeyExchange::EakSalt { salt, .. } => {
                buf.put_u32(salt);
                buf.put_u32(0); // reserved
            }
            KeyExchange::Adhkd {
                context,
                public_key,
                salt,
                ..
            } => {
                buf.put_u64(public_key);
                buf.put_u32(salt);
                buf.put_u8(context as u8);
                buf.put_u8(0);
                buf.put_u16(0); // reserved
            }
            KeyExchange::PortKeyInit { peer, peer_port }
            | KeyExchange::PortKeyUpdate { peer, peer_port } => {
                buf.put_u16(peer.value());
                buf.put_u8(peer_port.value());
                buf.put_u8(0); // reserved
            }
        }
    }

    fn decode_from(msg_type: u8, buf: &mut impl Buf) -> Result<Self, DecodeError> {
        let need = match msg_type {
            1 | 2 => 8,
            3 | 4 => 16,
            5 | 6 => 4,
            other => {
                return Err(DecodeError::UnknownMsgType {
                    hdr_type: HdrType::KeyExchange as u8,
                    msg_type: other,
                })
            }
        };
        if buf.remaining() < need {
            return Err(DecodeError::Truncated {
                needed: need,
                available: buf.remaining(),
            });
        }
        match msg_type {
            1 | 2 => {
                let salt = buf.get_u32();
                let _reserved = buf.get_u32();
                let step = if msg_type == 1 {
                    EakStep::Salt1
                } else {
                    EakStep::Salt2
                };
                Ok(KeyExchange::EakSalt { step, salt })
            }
            3 | 4 => {
                let public_key = buf.get_u64();
                let salt = buf.get_u32();
                let context = KexContext::from_wire(buf.get_u8())?;
                let _pad = buf.get_u8();
                let _reserved = buf.get_u16();
                let role = if msg_type == 3 {
                    AdhkdRole::Offer
                } else {
                    AdhkdRole::Answer
                };
                Ok(KeyExchange::Adhkd {
                    role,
                    context,
                    public_key,
                    salt,
                })
            }
            _ => {
                let peer = SwitchId::new(buf.get_u16());
                let peer_port = PortId::new(buf.get_u8());
                let _reserved = buf.get_u8();
                if msg_type == 5 {
                    Ok(KeyExchange::PortKeyInit { peer, peer_port })
                } else {
                    Ok(KeyExchange::PortKeyUpdate { peer, peer_port })
                }
            }
        }
    }
}

/// An in-network DP-DP control message (e.g. a HULA probe) wrapped in a
/// P4Auth header so its content is digest-protected hop by hop (§V,
/// "Authentication of DP-DP control messages").
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct InNetwork {
    /// Identifies the in-network system the payload belongs to (e.g. HULA).
    pub system: u8,
    /// The system-specific probe/feedback payload.
    pub payload: Vec<u8>,
}

impl InNetwork {
    /// Maximum payload bytes (length is a 16-bit field).
    pub const MAX_PAYLOAD: usize = u16::MAX as usize;

    /// Creates an in-network message.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`Self::MAX_PAYLOAD`] bytes.
    pub fn new(system: u8, payload: Vec<u8>) -> Self {
        assert!(
            payload.len() <= Self::MAX_PAYLOAD,
            "in-network payload too large"
        );
        InNetwork { system, payload }
    }

    /// `msgType` byte for the header (the system id).
    pub fn msg_type(&self) -> u8 {
        self.system
    }

    /// Payload length on the wire (2-byte length prefix + payload).
    pub fn wire_len(&self) -> usize {
        2 + self.payload.len()
    }

    fn encode_into(&self, buf: &mut impl BufMut) {
        buf.put_u16(self.payload.len() as u16);
        buf.put_slice(&self.payload);
    }

    fn decode_from(msg_type: u8, buf: &mut impl Buf) -> Result<Self, DecodeError> {
        if buf.remaining() < 2 {
            return Err(DecodeError::Truncated {
                needed: 2,
                available: buf.remaining(),
            });
        }
        let len = buf.get_u16() as usize;
        if buf.remaining() < len {
            return Err(DecodeError::Truncated {
                needed: len,
                available: buf.remaining(),
            });
        }
        let mut payload = vec![0u8; len];
        buf.copy_to_slice(&mut payload);
        Ok(InNetwork {
            system: msg_type,
            payload,
        })
    }
}

/// A typed message body; the variant implies the header's `hdrType`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Body {
    /// Register read/write traffic.
    Register(RegisterOp),
    /// Alert toward the controller.
    Alert(Alert),
    /// Key-management traffic.
    KeyExchange(KeyExchange),
    /// In-network DP-DP control message.
    InNetwork(InNetwork),
}

impl Body {
    /// The header family this body belongs to.
    pub fn hdr_type(&self) -> HdrType {
        match self {
            Body::Register(_) => HdrType::RegisterOp,
            Body::Alert(_) => HdrType::Alert,
            Body::KeyExchange(_) => HdrType::KeyExchange,
            Body::InNetwork(_) => HdrType::InNetwork,
        }
    }

    /// The header `msgType` byte this body encodes as.
    pub fn msg_type(&self) -> u8 {
        match self {
            Body::Register(op) => op.msg_type(),
            Body::Alert(a) => a.msg_type(),
            Body::KeyExchange(k) => k.msg_type(),
            Body::InNetwork(p) => p.msg_type(),
        }
    }

    /// Payload length on the wire.
    pub fn wire_len(&self) -> usize {
        match self {
            Body::Register(_) => RegisterOp::WIRE_LEN,
            Body::Alert(_) => Alert::WIRE_LEN,
            Body::KeyExchange(k) => k.wire_len(),
            Body::InNetwork(p) => p.wire_len(),
        }
    }

    /// Encodes the payload (excluding the header) into `buf`.
    pub fn encode_into(&self, buf: &mut impl BufMut) {
        match self {
            Body::Register(op) => op.encode_into(buf),
            Body::Alert(a) => a.encode_into(buf),
            Body::KeyExchange(k) => k.encode_into(buf),
            Body::InNetwork(p) => p.encode_into(buf),
        }
    }

    /// Decodes a payload of family `hdr_type` / type `msg_type` from `buf`.
    ///
    /// # Errors
    ///
    /// Propagates truncation and unknown-type errors from the family
    /// decoders.
    pub fn decode_from(
        hdr_type: HdrType,
        msg_type: u8,
        buf: &mut impl Buf,
    ) -> Result<Self, DecodeError> {
        match hdr_type {
            HdrType::RegisterOp => Ok(Body::Register(RegisterOp::decode_from(msg_type, buf)?)),
            HdrType::Alert => Ok(Body::Alert(Alert::decode_from(msg_type, buf)?)),
            HdrType::KeyExchange => Ok(Body::KeyExchange(KeyExchange::decode_from(msg_type, buf)?)),
            HdrType::InNetwork => Ok(Body::InNetwork(InNetwork::decode_from(msg_type, buf)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(body: Body) {
        let mut buf = Vec::new();
        body.encode_into(&mut buf);
        assert_eq!(buf.len(), body.wire_len(), "wire_len mismatch for {body:?}");
        let decoded =
            Body::decode_from(body.hdr_type(), body.msg_type(), &mut buf.as_slice()).unwrap();
        assert_eq!(decoded, body);
    }

    #[test]
    fn register_ops_roundtrip() {
        roundtrip(Body::Register(RegisterOp::read_req(RegId::new(1234), 5)));
        roundtrip(Body::Register(RegisterOp::write_req(
            RegId::new(9),
            0,
            u64::MAX,
        )));
        roundtrip(Body::Register(RegisterOp::Ack {
            reg: RegId::new(1),
            index: 2,
            value: 3,
        }));
        for reason in [
            NackReason::DigestMismatch,
            NackReason::UnknownRegister,
            NackReason::SeqMismatch,
            NackReason::IndexOutOfRange,
            NackReason::Quarantined,
        ] {
            roundtrip(Body::Register(RegisterOp::Nack {
                reg: RegId::new(4),
                index: 1,
                reason,
            }));
        }
    }

    #[test]
    fn alerts_roundtrip() {
        for kind in [
            AlertKind::DigestMismatch,
            AlertKind::SeqMismatch,
            AlertKind::RateLimited,
            AlertKind::KeyExchangeFailure,
        ] {
            roundtrip(Body::Alert(Alert {
                kind,
                offending_seq: SeqNum::new(77),
                detail: 3,
            }));
        }
    }

    #[test]
    fn key_exchange_roundtrip() {
        roundtrip(Body::KeyExchange(KeyExchange::EakSalt {
            step: EakStep::Salt1,
            salt: 42,
        }));
        roundtrip(Body::KeyExchange(KeyExchange::EakSalt {
            step: EakStep::Salt2,
            salt: 43,
        }));
        for context in [
            KexContext::LocalInit,
            KexContext::LocalUpdate,
            KexContext::PortInitRedirect,
            KexContext::PortUpdateDirect,
        ] {
            roundtrip(Body::KeyExchange(KeyExchange::Adhkd {
                role: AdhkdRole::Offer,
                context,
                public_key: 0xdead_beef,
                salt: 7,
            }));
            roundtrip(Body::KeyExchange(KeyExchange::Adhkd {
                role: AdhkdRole::Answer,
                context,
                public_key: 1,
                salt: 2,
            }));
        }
        roundtrip(Body::KeyExchange(KeyExchange::PortKeyInit {
            peer: SwitchId::new(3),
            peer_port: PortId::new(2),
        }));
        roundtrip(Body::KeyExchange(KeyExchange::PortKeyUpdate {
            peer: SwitchId::new(4),
            peer_port: PortId::new(9),
        }));
    }

    #[test]
    fn in_network_roundtrip() {
        roundtrip(Body::InNetwork(InNetwork::new(1, vec![1, 2, 3, 4, 5])));
        roundtrip(Body::InNetwork(InNetwork::new(9, vec![])));
    }

    #[test]
    fn msg_types_distinct_within_family() {
        let kex = [
            KeyExchange::EakSalt {
                step: EakStep::Salt1,
                salt: 0,
            }
            .msg_type(),
            KeyExchange::EakSalt {
                step: EakStep::Salt2,
                salt: 0,
            }
            .msg_type(),
            KeyExchange::Adhkd {
                role: AdhkdRole::Offer,
                context: KexContext::LocalInit,
                public_key: 0,
                salt: 0,
            }
            .msg_type(),
            KeyExchange::Adhkd {
                role: AdhkdRole::Answer,
                context: KexContext::LocalInit,
                public_key: 0,
                salt: 0,
            }
            .msg_type(),
            KeyExchange::PortKeyInit {
                peer: SwitchId::new(0),
                peer_port: PortId::new(0),
            }
            .msg_type(),
            KeyExchange::PortKeyUpdate {
                peer: SwitchId::new(0),
                peer_port: PortId::new(0),
            }
            .msg_type(),
        ];
        let mut sorted = kex.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), kex.len());
    }

    #[test]
    fn nack_with_bad_reason_rejected() {
        let mut buf = Vec::new();
        RegisterOp::Nack {
            reg: RegId::new(1),
            index: 0,
            reason: NackReason::DigestMismatch,
        }
        .encode_into(&mut buf);
        buf[15] = 200; // corrupt the reason byte
        let err = RegisterOp::decode_from(4, &mut buf.as_slice()).unwrap_err();
        assert_eq!(err, DecodeError::InvalidField("nack reason"));
    }

    #[test]
    fn unknown_msg_types_rejected() {
        let buf = vec![0u8; 32];
        assert!(matches!(
            RegisterOp::decode_from(99, &mut buf.as_slice()),
            Err(DecodeError::UnknownMsgType { .. })
        ));
        assert!(matches!(
            KeyExchange::decode_from(99, &mut buf.as_slice()),
            Err(DecodeError::UnknownMsgType { .. })
        ));
        assert!(matches!(
            Alert::decode_from(99, &mut buf.as_slice()),
            Err(DecodeError::UnknownMsgType { .. })
        ));
    }

    #[test]
    fn truncated_payloads_rejected() {
        let buf = [0u8; 3];
        assert!(matches!(
            RegisterOp::decode_from(1, &mut &buf[..]),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            Alert::decode_from(1, &mut &buf[..]),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            KeyExchange::decode_from(3, &mut &buf[..]),
            Err(DecodeError::Truncated { .. })
        ));
        // In-network message claiming more bytes than present.
        let bad = [0u8, 10u8, 1, 2];
        assert!(matches!(
            InNetwork::decode_from(1, &mut &bad[..]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn table_iii_wire_sizes() {
        // EAK payload 8 B, ADHKD 16 B, KMP control 4 B; with the 14-byte
        // header: 22, 30 and 18 bytes — the Table III message sizes.
        assert_eq!(
            KeyExchange::EakSalt {
                step: EakStep::Salt1,
                salt: 0
            }
            .wire_len(),
            8
        );
        assert_eq!(
            KeyExchange::Adhkd {
                role: AdhkdRole::Offer,
                context: KexContext::LocalInit,
                public_key: 0,
                salt: 0
            }
            .wire_len(),
            16
        );
        assert_eq!(
            KeyExchange::PortKeyInit {
                peer: SwitchId::new(1),
                peer_port: PortId::new(1)
            }
            .wire_len(),
            4
        );
    }
}
