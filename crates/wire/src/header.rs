//! The fixed P4Auth header (`p4Auth_h` in Fig. 7).

use crate::error::DecodeError;
use crate::ids::{KeyVersion, PortId, SeqNum, SwitchId};
use bytes::{Buf, BufMut};
use p4auth_primitives::Digest32;
use serde::{Deserialize, Serialize};

/// Discriminates the three message families (`hdrType` field).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum HdrType {
    /// Register read/write request-response traffic (C-DP).
    RegisterOp = 1,
    /// Alert raised on failed verification or rate limiting.
    Alert = 2,
    /// Key-management protocol traffic (EAK / ADHKD / KMP control).
    KeyExchange = 3,
    /// In-network DP-DP control message (e.g. a HULA probe) wrapped with a
    /// P4Auth digest.
    InNetwork = 4,
}

impl HdrType {
    /// Parses the wire byte.
    pub fn from_wire(raw: u8) -> Result<Self, DecodeError> {
        match raw {
            1 => Ok(HdrType::RegisterOp),
            2 => Ok(HdrType::Alert),
            3 => Ok(HdrType::KeyExchange),
            4 => Ok(HdrType::InNetwork),
            other => Err(DecodeError::UnknownHdrType(other)),
        }
    }
}

/// The P4Auth header. All fields except `digest` are covered by the digest
/// computation (Eqn. 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Header {
    /// Message family.
    pub hdr_type: HdrType,
    /// Family-specific message type (the body supplies this on encode).
    pub msg_type: u8,
    /// Request/response matching and replay defence.
    pub seq_num: SeqNum,
    /// Which key version authenticated this message (§VI-C consistent
    /// updates).
    pub key_version: KeyVersion,
    /// Originating endpoint (controller is [`SwitchId::CONTROLLER`]).
    pub sender: SwitchId,
    /// Ingress/egress port the message's key is bound to; [`PortId::CPU`]
    /// for C-DP traffic authenticated with `K_local`.
    pub port: PortId,
    /// `HMAC_K(header-without-digest || payload)`.
    pub digest: Digest32,
}

/// Size of the encoded header in bytes.
pub const HEADER_LEN: usize = 14;

impl Header {
    /// Builds a header with a zeroed digest (filled in by the auth engine).
    pub fn new(
        hdr_type: HdrType,
        msg_type: u8,
        seq_num: SeqNum,
        sender: SwitchId,
        port: PortId,
    ) -> Self {
        Header {
            hdr_type,
            msg_type,
            seq_num,
            key_version: KeyVersion::INITIAL,
            sender,
            port,
            digest: Digest32::default(),
        }
    }

    /// Encodes the header into `buf`.
    pub fn encode_into(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.hdr_type as u8);
        buf.put_u8(self.msg_type);
        buf.put_u32(self.seq_num.value());
        buf.put_u8(self.key_version.value());
        buf.put_u16(self.sender.value());
        buf.put_u8(self.port.value());
        buf.put_u32(self.digest.value());
    }

    /// The bytes covered by the digest: every header field *except* the
    /// digest itself, in wire order.
    pub fn digest_input(&self) -> [u8; HEADER_LEN - 4] {
        let mut out = [0u8; HEADER_LEN - 4];
        out[0] = self.hdr_type as u8;
        out[1] = self.msg_type;
        out[2..6].copy_from_slice(&self.seq_num.value().to_be_bytes());
        out[6] = self.key_version.value();
        out[7..9].copy_from_slice(&self.sender.value().to_be_bytes());
        out[9] = self.port.value();
        out
    }

    /// Decodes a header from `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if fewer than [`HEADER_LEN`] bytes
    /// remain, or [`DecodeError::UnknownHdrType`] for an unrecognized
    /// `hdrType` byte.
    pub fn decode_from(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        if buf.remaining() < HEADER_LEN {
            return Err(DecodeError::Truncated {
                needed: HEADER_LEN,
                available: buf.remaining(),
            });
        }
        let hdr_type = HdrType::from_wire(buf.get_u8())?;
        let msg_type = buf.get_u8();
        let seq_num = SeqNum::new(buf.get_u32());
        let key_version = KeyVersion::new(buf.get_u8());
        let sender = SwitchId::new(buf.get_u16());
        let port = PortId::new(buf.get_u8());
        let digest = Digest32::new(buf.get_u32());
        Ok(Header {
            hdr_type,
            msg_type,
            seq_num,
            key_version,
            sender,
            port,
            digest,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Header {
        Header {
            hdr_type: HdrType::RegisterOp,
            msg_type: 2,
            seq_num: SeqNum::new(0xdead_beef),
            key_version: KeyVersion::new(3),
            sender: SwitchId::new(7),
            port: PortId::new(5),
            digest: Digest32::new(0x0102_0304),
        }
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let mut buf = Vec::new();
        h.encode_into(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let decoded = Header::decode_from(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, h);
    }

    #[test]
    fn digest_input_excludes_digest() {
        let mut a = sample();
        let mut b = sample();
        a.digest = Digest32::new(1);
        b.digest = Digest32::new(2);
        assert_eq!(a.digest_input(), b.digest_input());
    }

    #[test]
    fn digest_input_covers_every_other_field() {
        let base = sample();
        let variants = [
            Header {
                hdr_type: HdrType::Alert,
                ..base
            },
            Header {
                msg_type: 99,
                ..base
            },
            Header {
                seq_num: SeqNum::new(1),
                ..base
            },
            Header {
                key_version: KeyVersion::new(9),
                ..base
            },
            Header {
                sender: SwitchId::new(1),
                ..base
            },
            Header {
                port: PortId::new(1),
                ..base
            },
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(
                v.digest_input(),
                base.digest_input(),
                "field {i} not covered"
            );
        }
    }

    #[test]
    fn truncated_rejected() {
        let h = sample();
        let mut buf = Vec::new();
        h.encode_into(&mut buf);
        let err = Header::decode_from(&mut &buf[..HEADER_LEN - 1]).unwrap_err();
        assert!(matches!(err, DecodeError::Truncated { .. }));
    }

    #[test]
    fn unknown_hdr_type_rejected() {
        let mut buf = vec![0u8; HEADER_LEN];
        buf[0] = 200;
        let err = Header::decode_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err, DecodeError::UnknownHdrType(200));
    }

    #[test]
    fn all_hdr_types_roundtrip() {
        for t in [
            HdrType::RegisterOp,
            HdrType::Alert,
            HdrType::KeyExchange,
            HdrType::InNetwork,
        ] {
            assert_eq!(HdrType::from_wire(t as u8).unwrap(), t);
        }
    }
}
