//! Property-based tests for the wire codec: arbitrary messages roundtrip,
//! arbitrary bytes never panic the decoder, and sealing/tampering behave.

use p4auth_primitives::mac::{Crc32Mac, HalfSipHashMac, Mac};
use p4auth_primitives::Key64;
use p4auth_wire::body::{
    AdhkdRole, Alert, AlertKind, Body, EakStep, InNetwork, KexContext, KeyExchange, NackReason,
    RegisterOp,
};
use p4auth_wire::ids::{KeyVersion, PortId, RegId, SeqNum, SwitchId};
use p4auth_wire::Message;
use proptest::prelude::*;

fn arb_register_op() -> impl Strategy<Value = RegisterOp> {
    prop_oneof![
        (any::<u32>(), any::<u32>()).prop_map(|(r, i)| RegisterOp::read_req(RegId::new(r), i)),
        (any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(r, i, v)| RegisterOp::write_req(
            RegId::new(r),
            i,
            v
        )),
        (any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(r, i, v)| RegisterOp::Ack {
            reg: RegId::new(r),
            index: i,
            value: v
        }),
        (any::<u32>(), any::<u32>(), 0usize..4).prop_map(|(r, i, k)| RegisterOp::Nack {
            reg: RegId::new(r),
            index: i,
            reason: [
                NackReason::DigestMismatch,
                NackReason::UnknownRegister,
                NackReason::SeqMismatch,
                NackReason::IndexOutOfRange
            ][k],
        }),
    ]
}

fn arb_alert() -> impl Strategy<Value = Alert> {
    (0usize..4, any::<u32>(), any::<u32>()).prop_map(|(k, s, d)| Alert {
        kind: [
            AlertKind::DigestMismatch,
            AlertKind::SeqMismatch,
            AlertKind::RateLimited,
            AlertKind::KeyExchangeFailure,
        ][k],
        offending_seq: SeqNum::new(s),
        detail: d,
    })
}

fn arb_kex() -> impl Strategy<Value = KeyExchange> {
    let contexts = [
        KexContext::LocalInit,
        KexContext::LocalUpdate,
        KexContext::PortInitRedirect,
        KexContext::PortUpdateDirect,
    ];
    prop_oneof![
        (any::<bool>(), any::<u32>()).prop_map(|(s, salt)| KeyExchange::EakSalt {
            step: if s { EakStep::Salt1 } else { EakStep::Salt2 },
            salt,
        }),
        (any::<bool>(), 0usize..4, any::<u64>(), any::<u32>()).prop_map(
            move |(role, c, pk, salt)| KeyExchange::Adhkd {
                role: if role {
                    AdhkdRole::Offer
                } else {
                    AdhkdRole::Answer
                },
                context: contexts[c],
                public_key: pk,
                salt,
            }
        ),
        (any::<u16>(), any::<u8>()).prop_map(|(p, q)| KeyExchange::PortKeyInit {
            peer: SwitchId::new(p),
            peer_port: PortId::new(q),
        }),
        (any::<u16>(), any::<u8>()).prop_map(|(p, q)| KeyExchange::PortKeyUpdate {
            peer: SwitchId::new(p),
            peer_port: PortId::new(q),
        }),
    ]
}

fn arb_body() -> impl Strategy<Value = Body> {
    prop_oneof![
        arb_register_op().prop_map(Body::Register),
        arb_alert().prop_map(Body::Alert),
        arb_kex().prop_map(Body::KeyExchange),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(sys, p)| Body::InNetwork(InNetwork::new(sys, p))),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        any::<u8>(),
        any::<u32>(),
        any::<u8>(),
        arb_body(),
    )
        .prop_map(|(sender, port, seq, kv, body)| {
            Message::new(
                SwitchId::new(sender),
                PortId::new(port),
                SeqNum::new(seq),
                body,
            )
            .with_key_version(KeyVersion::new(kv))
        })
}

proptest! {
    /// Every well-formed message roundtrips byte-exactly.
    #[test]
    fn roundtrip(msg in arb_message()) {
        let bytes = msg.encode();
        prop_assert_eq!(bytes.len(), msg.wire_len());
        let decoded = Message::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    /// Sealed messages verify under the sealing key and MAC, with both
    /// MAC profiles, and survive an encode/decode cycle.
    #[test]
    fn seal_survives_wire(msg in arb_message(), key: u64) {
        let k = Key64::new(key);
        for mac in [&HalfSipHashMac::default() as &dyn Mac, &Crc32Mac] {
            let sealed = msg.clone().sealed(mac, k);
            let decoded = Message::decode(&sealed.encode()).unwrap();
            prop_assert!(decoded.verify(mac, k));
        }
    }

    /// Any single flipped bit anywhere in the encoded message either makes
    /// decoding fail, makes verification fail, or decodes to a message
    /// semantically identical to the original (flips confined to reserved
    /// padding bytes, which are not protocol fields and are discarded on
    /// parse — exactly like non-PHV bytes on real hardware). Tampering with
    /// *meaningful* content never goes unnoticed.
    #[test]
    fn any_bitflip_detected(msg in arb_message(), key: u64, bit in 0usize..4096) {
        let k = Key64::new(key);
        let mac = HalfSipHashMac::default();
        let sealed = msg.sealed(&mac, k);
        let mut bytes = sealed.encode();
        let bit = bit % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        // Malformed frames are rejected even earlier (decode fails).
        if let Ok(decoded) = Message::decode(&bytes) {
            prop_assert!(!decoded.verify(&mac, k) || decoded == sealed);
        }
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn decoder_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Message::decode(&bytes);
    }

    /// Messages sealed under one key never verify under a different key.
    #[test]
    fn cross_key_rejection(msg in arb_message(), k1: u64, k2: u64) {
        prop_assume!(k1 != k2);
        let mac = HalfSipHashMac::default();
        let sealed = msg.sealed(&mac, Key64::new(k1));
        prop_assert!(!sealed.verify(&mac, Key64::new(k2)));
    }

    /// digest_input is exactly the encoded bytes minus the digest field.
    #[test]
    fn digest_input_matches_encoding(msg in arb_message()) {
        let bytes = msg.encode();
        let input = msg.digest_input();
        // Header layout: bytes 0..10 then 4-byte digest then payload.
        prop_assert_eq!(&input[..10], &bytes[..10]);
        prop_assert_eq!(&input[10..], &bytes[14..]);
    }
}
