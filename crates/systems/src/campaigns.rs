//! Scenario campaigns: deterministic fault injection composed with attack
//! overlays, each judged by explicit defence invariants.
//!
//! The security surveys in PAPERS.md stress that dataplane defences must
//! hold under *combined* failure-plus-attack conditions, not single-threat
//! microbenchmarks. A campaign here is exactly that composition, in two
//! phases sharing one [`CampaignVerdict`]:
//!
//! * **Fabric phase** — the user-scale workload ([`crate::userscale`]) on
//!   a fat tree with a [`FaultPlan`] installed: link flaps, correlated
//!   groups, pod/switch failure and recovery, boot storms. It proves the
//!   transport story (ECMP re-route, counted losses, no silent loss) and
//!   produces the benchmarked row (events, drop taxonomy, events/s).
//! * **Defence phase** — the full P4Auth harness ([`crate::harness`])
//!   under the same churn class with an attack overlay (digest flood,
//!   replay, compromised-user flood), asserting the paper's defence
//!   invariants: the defence mitigates within a latency bound, clean
//!   channels stay un-quarantined, no forged frame is ever accepted, and
//!   post-recovery key agreement converges.
//!
//! Defence-phase fault plans touch only DP-DP links: the C-DP control
//! channel models an out-of-band management network (the common
//! deployment), so recovery-time `portKeyUpdate` traffic always has a
//! path — see DESIGN §4g for the in-band discussion.
//!
//! Every phase is deterministic, so two runs of [`run_campaigns`] produce
//! byte-identical verdicts — the property `repro -- scenarios` gates in
//! CI against `BENCH_scenarios.json`.

use crate::harness::{is_dp_dp_link, Network};
use crate::scaleload::{Engine, SEND_TIMER};
use crate::userscale::{
    run_users_engine, AggregateHostNode, AggregateMode, CompromisedUser, UserScaleConfig,
};
use p4auth_attacks::replay;
use p4auth_controller::{ControllerConfig, ControllerEvent, DefenceConfig};
use p4auth_core::agent::AgentConfig;
use p4auth_dataplane::register::RegisterArray;
use p4auth_netsim::fattree::FatTree;
use p4auth_netsim::fault::FaultPlan;
use p4auth_netsim::sched::SchedulerKind;
use p4auth_netsim::time::SimTime;
use p4auth_netsim::topology::{LinkId, Topology};
use p4auth_telemetry::{Registry, SpanKind};
use p4auth_wire::body::AlertKind;
use p4auth_wire::ids::{PortId, RegId, SwitchId};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Campaign sizing knobs (the invariants themselves never change).
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Modelled users in each campaign's fabric phase.
    pub users: u64,
    /// Frames each user transmits in the fabric phase.
    pub frames_per_user: u32,
}

impl CampaignConfig {
    /// The report configuration: 100k modelled users per campaign.
    pub fn standard() -> Self {
        CampaignConfig {
            users: 100_000,
            frames_per_user: 2,
        }
    }

    /// The CI smoke configuration: same campaigns, 10k users.
    pub fn short() -> Self {
        CampaignConfig {
            users: 10_000,
            frames_per_user: 1,
        }
    }
}

/// One asserted invariant.
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// Stable invariant name.
    pub name: &'static str,
    /// Whether it held.
    pub passed: bool,
    /// Human-readable evidence (counts, values).
    pub detail: String,
}

/// Deterministic fabric-phase summary (the benchmarked row's stable
/// part; wall-clock throughput is reported separately since it is not
/// diffable).
#[derive(Clone, Copy, Debug)]
pub struct FabricSummary {
    /// Modelled users.
    pub users: u64,
    /// Events processed.
    pub events: u64,
    /// Frames the aggregates transmitted.
    pub frames_sent: u64,
    /// Frames delivered to an aggregate.
    pub frames_delivered: u64,
    /// Frames that died at a downed link (counted loss).
    pub frames_undeliverable: u64,
    /// Fault events applied.
    pub faults_applied: u64,
    /// Final simulated clock in ns.
    pub sim_ns: u64,
    /// Events per wall-clock second (nondeterministic; excluded from the
    /// determinism diff).
    pub events_per_sec: f64,
}

/// The verdict of one campaign: its invariant checks plus the fabric row.
#[derive(Clone, Debug)]
pub struct CampaignVerdict {
    /// Stable campaign name.
    pub name: &'static str,
    /// Whether the campaign combines a fault with an attack overlay
    /// (as opposed to fault-only churn).
    pub fault_attack: bool,
    /// Every invariant the campaign asserted.
    pub checks: Vec<CheckResult>,
    /// Detection-to-mitigation latency in sim-ns, when the campaign's
    /// attack tripped the defence.
    pub mitigation_latency_ns: Option<u64>,
    /// p50 of the `defence_mitigation_latency_ns` histogram over the
    /// defence phase (absent when the defence never fired).
    pub mitigation_latency_p50_ns: Option<u64>,
    /// p99 of the `defence_mitigation_latency_ns` histogram.
    pub mitigation_latency_p99_ns: Option<u64>,
    /// p50 of the `ctrl_rollover_fanout_ns` histogram (absent unless the
    /// campaign ran a bulk rollover epoch).
    pub rollover_fanout_p50_ns: Option<u64>,
    /// p99 of the `ctrl_rollover_fanout_ns` histogram.
    pub rollover_fanout_p99_ns: Option<u64>,
    /// The fabric phase's benchmarked row.
    pub fabric: FabricSummary,
}

impl CampaignVerdict {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }
}

/// Accumulates [`CheckResult`]s.
#[derive(Default)]
struct Checks(Vec<CheckResult>);

impl Checks {
    fn require(&mut self, name: &'static str, passed: bool, detail: String) {
        self.0.push(CheckResult {
            name,
            passed,
            detail,
        });
    }
}

/// Runs every campaign. The order (and everything inside each verdict
/// except `events_per_sec`) is deterministic.
pub fn run_campaigns(cfg: &CampaignConfig) -> Vec<CampaignVerdict> {
    vec![
        boot_storm_digest_flood(cfg),
        reroute_replay(cfg),
        pod_failure_compromised_flood(cfg),
        correlated_flap_churn(cfg),
        switch_failure_recovery(cfg),
    ]
}

/// The five campaigns' fabric-phase fault plans, keyed by campaign name.
/// Exposed so the engine-differential tests drive exactly the plans the
/// report runs (heap, calendar, sharded — same fingerprint).
pub fn fabric_plans() -> Vec<(&'static str, FaultPlan)> {
    let ft = FatTree::new(K);
    let topo = ft.build(1_500);

    let mut boot = FaultPlan::new();
    boot.with_boot_storm(4, 1_000_000);

    let (uplink, _) = topo
        .link_at(ft.edge(0, 0), PortId::new(3))
        .expect("edge uplink exists");
    let mut reroute = FaultPlan::new();
    reroute.flap(uplink, 50_000, 2_000_000);

    let mut pod = FaultPlan::new();
    pod.pod_failure(&topo, &ft, 1, 100_000, 3_000_000);

    let group = dp_links_of_plain(&topo, ft.agg(0, 0));
    let mut flap = FaultPlan::new();
    flap.correlated_flap(&group, 50_000, 600_000)
        .correlated_flap(&group, 1_200_000, 1_800_000);

    let mut swf = FaultPlan::new();
    swf.switch_failure(&topo, ft.agg(1, 0), 100_000, 1_000_000);

    vec![
        ("boot_storm_digest_flood", boot),
        ("reroute_replay", reroute),
        ("pod_failure_compromised_flood", pod),
        ("correlated_flap_churn", flap),
        ("switch_failure_recovery", swf),
    ]
}

/// The fabric plan for campaign `name`.
fn plan_for(name: &str) -> FaultPlan {
    fabric_plans()
        .into_iter()
        .find(|(n, _)| *n == name)
        .expect("known campaign name")
        .1
}

/// Fat-tree arity every campaign runs at.
const K: u16 = 4;
/// Defence-phase observation window in sim-ns (matches the §VII defence
/// anchor test).
const DEFENCE_WINDOW_NS: u64 = 200_000_000;
/// Trace-span buffer capacity for defence phases. Sized so the default
/// campaign configurations never drop a span (asserted by the
/// `trace_no_spans_dropped` invariant below) — zero drops is what makes
/// the exported trace bit-identical across engines.
const CAMPAIGN_TRACE_CAPACITY: usize = 16_384;
/// Trace-span source id for the campaign harness itself (phase root
/// spans); above the controller's reserved `0xFE..` range and any node.
const CAMPAIGN_TRACE_SOURCE: u16 = 0xFFFF;

/// Fabric phase: the user-scale workload with `plan` installed, plus the
/// two accounting invariants every campaign shares — no silent loss, and
/// the full fault schedule applied.
fn fabric_phase(cfg: &CampaignConfig, plan: FaultPlan, checks: &mut Checks) -> FabricSummary {
    let mut ucfg = UserScaleConfig::for_k(K, cfg.users, cfg.frames_per_user);
    let planned = plan.len() as u64;
    ucfg.faults = Some(plan);
    let run = run_users_engine(&ucfg, Engine::Sequential(SchedulerKind::Calendar), None);
    let accounted =
        run.frames_delivered + run.stats.frames_undeliverable + run.stats.frames_tapped_dropped;
    checks.require(
        "fabric_no_silent_loss",
        run.frames_sent == accounted,
        format!(
            "{} sent = {} delivered + {} undeliverable + {} tapped",
            run.frames_sent,
            run.frames_delivered,
            run.stats.frames_undeliverable,
            run.stats.frames_tapped_dropped
        ),
    );
    checks.require(
        "fabric_faults_applied",
        run.stats.faults_applied == planned,
        format!(
            "{} of {planned} scheduled faults applied",
            run.stats.faults_applied
        ),
    );
    FabricSummary {
        users: run.users,
        events: run.events,
        frames_sent: run.frames_sent,
        frames_delivered: run.frames_delivered,
        frames_undeliverable: run.stats.frames_undeliverable,
        faults_applied: run.stats.faults_applied,
        sim_ns: run.sim_ns,
        events_per_sec: run.events_per_sec(),
    }
}

/// A defence-phase network: the §VII harness with telemetry, booted keys
/// and the adaptive defence armed.
fn defence_net(
    seed: u64,
    configure: impl FnMut(SwitchId, AgentConfig) -> AgentConfig,
) -> (Network, Arc<Registry>) {
    let registry = Arc::new(Registry::with_capacities(2048, CAMPAIGN_TRACE_CAPACITY));
    let mut net = Network::build(
        Topology::fat_tree_with_controller(K, 1_000, 200_000),
        ControllerConfig::default(),
        seed,
        |_| None,
        configure,
    );
    net.enable_telemetry(registry.clone());
    net.bootstrap_keys();
    net.enable_defence(DefenceConfig::default());
    let _ = net.take_events();
    (net, registry)
}

/// Stamps a defence phase's extent as a `campaign_phase` root span, so
/// the exported trace carries the phase boundary every other span falls
/// inside. `idx` is the campaign's position in [`run_campaigns`] order.
fn campaign_phase_span(registry: &Registry, idx: u64, start_ns: u64, end_ns: u64) {
    let trace = registry.trace();
    if let Some(span) = trace.start(SpanKind::CampaignPhase, start_ns, CAMPAIGN_TRACE_SOURCE) {
        trace.end(span, end_ns.max(start_ns), idx, 0);
    }
}

/// Shared per-campaign telemetry wrap-up: asserts the bounded trace
/// buffer dropped nothing at the default campaign configuration (the
/// zero-drop property is what keeps traces bit-identical across
/// engines) and extracts the mitigation / rollover latency percentiles
/// the scenarios report surfaces. Returns
/// `[mitigation_p50, mitigation_p99, rollover_p50, rollover_p99]`.
fn finish_telemetry(registry: &Registry, checks: &mut Checks) -> [Option<u64>; 4] {
    let trace = registry.trace();
    checks.require(
        "trace_no_spans_dropped",
        trace.dropped() == 0,
        format!(
            "{} spans buffered, {} dropped (capacity {})",
            trace.len(),
            trace.dropped(),
            trace.capacity()
        ),
    );
    let snap = registry.snapshot();
    let pick = |name: &str| {
        snap.histogram(name, "controller")
            .filter(|h| h.count > 0)
            .map(|h| (h.p50, h.p99))
    };
    let mitigation = pick("defence_mitigation_latency_ns");
    let rollover = pick("ctrl_rollover_fanout_ns");
    [
        mitigation.map(|p| p.0),
        mitigation.map(|p| p.1),
        rollover.map(|p| p.0),
        rollover.map(|p| p.1),
    ]
}

/// The flight-recorder workload behind `repro -- trace`: campaign 1's
/// defence phase (digest flood on a booted, defended fat tree) with
/// tracing enabled, on a sequential engine of the given scheduler kind.
/// Returns the registry holding the recorded spans — deterministic, and
/// identical between the heap and calendar schedulers, so callers can
/// byte-diff the encoded trace across engines.
pub fn traced_defence_probe(kind: SchedulerKind, trace_capacity: usize) -> Arc<Registry> {
    let registry = Arc::new(Registry::with_capacities(2048, trace_capacity));
    let mut net = Network::build_with_scheduler(
        Topology::fat_tree_with_controller(K, 1_000, 200_000),
        kind,
        ControllerConfig::default(),
        0xb007,
        |_| None,
        |_, c| c,
    );
    net.enable_telemetry(registry.clone());
    net.bootstrap_keys();
    net.enable_defence(DefenceConfig::default());
    let _ = net.take_events();
    let _victim = arm_flood(&mut net, FatTree::new(K), 0);
    let start = net.sim.now().as_ns();
    net.sim
        .run_until(SimTime::from_ns(start + DEFENCE_WINDOW_NS));
    campaign_phase_span(&registry, 0, start, net.sim.now().as_ns());
    registry
}

/// DP-DP links terminating at `sw` (the out-of-band fault set for
/// defence-phase switch/pod failures).
fn dp_links_of(topo: &Topology, sw: SwitchId) -> Vec<LinkId> {
    topo.links()
        .iter()
        .enumerate()
        .filter(|(_, l)| is_dp_dp_link(l) && (l.a.node == sw || l.b.node == sw))
        .map(|(i, _)| LinkId(i as u32))
        .collect()
}

/// Arms the §II-A in-aggregate digest flood: host slot 0's access switch
/// gets the compromised-OS foothold and a 50-user aggregate (user 7
/// compromised) floods forged C-DP ACKs claiming to be that switch.
/// Returns the victim switch. `boot_offset_ns` delays the aggregate's
/// first timer (a boot-storm wave position).
fn arm_flood(net: &mut Network, ft: FatTree, boot_offset_ns: u64) -> SwitchId {
    let host = ft.host(0);
    let (_, victim_ep) = net
        .sim
        .topology()
        .deliver_target(host, PortId::new(1))
        .expect("host uplink exists");
    let victim = victim_ep.node;
    net.compromise_switch_os(victim);

    let mut ucfg = UserScaleConfig::for_k(K, 50, 0);
    ucfg.mode = AggregateMode::Exact;
    ucfg.compromised = Some(CompromisedUser {
        user: 7,
        victim,
        frames: 8,
        gap_ns: 10_000,
    });
    let agg = AggregateHostNode::new(
        &ucfg,
        ft,
        0,
        0,
        50,
        Arc::new(AtomicU64::new(0)),
        Arc::new(AtomicU64::new(0)),
    );
    let first = agg.first_due_ns().expect("the compromised user is active");
    net.sim.register_node(host, Box::new(agg));
    net.sim
        .schedule_timer(host, SEND_TIMER, first + boot_offset_ns);
    victim
}

/// The shared defence-invariant block for flood campaigns: exactly one
/// mitigation, the victim's local key rolled, the latency within bound,
/// no forged frame accepted, and every clean channel un-quarantined.
fn check_flood_defence(
    net: &mut Network,
    registry: &Registry,
    victim: SwitchId,
    baseline_ok: u64,
    checks: &mut Checks,
) -> Option<u64> {
    let events = net.take_events();
    let mitigations = events
        .iter()
        .filter(|e| matches!(e, ControllerEvent::DefenceMitigated { .. }))
        .count();
    checks.require(
        "one_mitigation",
        mitigations == 1,
        format!("{mitigations} DefenceMitigated events (want exactly 1)"),
    );
    checks.require(
        "victim_key_rolled",
        events
            .iter()
            .any(|e| matches!(e, ControllerEvent::LocalKeyRolled(sw) if *sw == victim)),
        format!("LocalKeyRolled({victim}) present"),
    );

    let stats = net.controller.borrow().stats();
    checks.require(
        "no_forged_frame_accepted",
        stats.responses_ok == baseline_ok && stats.rejected > 0,
        format!(
            "responses_ok {} (baseline {baseline_ok}), rejected {}",
            stats.responses_ok, stats.rejected
        ),
    );
    check_clean_channels(net, Some(victim), checks);

    let snap = registry.snapshot();
    let latency = snap
        .histogram("defence_mitigation_latency_ns", "controller")
        .filter(|h| h.count == 1)
        .map(|h| h.max);
    checks.require(
        "mitigation_within_bound",
        latency.is_some_and(|ns| ns > 0 && ns <= DEFENCE_WINDOW_NS),
        format!("detection-to-mitigation latency {latency:?} ns (bound {DEFENCE_WINDOW_NS})"),
    );
    latency
}

/// No channel is quarantined — for `exempt == None`, across every switch;
/// with a victim the invariant still holds for it here because one
/// rollover stops the modelled floods before escalation.
fn check_clean_channels(net: &Network, exempt: Option<SwitchId>, checks: &mut Checks) {
    let controller = net.controller.borrow();
    let quarantined: Vec<String> = net
        .switches
        .keys()
        .filter(|sw| controller.defence_quarantined(**sw, PortId::CPU))
        .map(|sw| sw.to_string())
        .collect();
    let _ = exempt; // rollover suffices for every modelled campaign
    checks.require(
        "clean_channels_unquarantined",
        quarantined.is_empty(),
        format!("quarantined channels: {quarantined:?}"),
    );
}

/// Post-recovery key agreement: every DP-DP link's port keys are
/// installed on both endpoints once the run drains, and the two ends
/// hold the same key.
fn check_port_keys_converged(net: &Network, checks: &mut Checks) {
    let mut bad = Vec::new();
    for l in net.sim.topology().links() {
        if !is_dp_dp_link(l) {
            continue;
        }
        let ka = net.switches[&l.a.node]
            .borrow()
            .keys()
            .port(l.a.port)
            .current();
        let kb = net.switches[&l.b.node]
            .borrow()
            .keys()
            .port(l.b.port)
            .current();
        match (ka, kb) {
            (Some(a), Some(b)) if a == b => {}
            (None, _) | (_, None) => bad.push(format!("{}-{} missing", l.a.node, l.b.node)),
            _ => bad.push(format!("{}-{} disagree", l.a.node, l.b.node)),
        }
    }
    checks.require(
        "post_recovery_keys_converged",
        bad.is_empty(),
        format!("port keys not converged: {bad:?}"),
    );
}

/// Campaign 1 — digest flood during a boot storm. Fabric: aggregates
/// boot in 4 staggered waves. Defence: the in-aggregate flood begins one
/// wave into the storm; the adaptive defence must still isolate it.
fn boot_storm_digest_flood(cfg: &CampaignConfig) -> CampaignVerdict {
    let mut checks = Checks::default();
    let plan = plan_for("boot_storm_digest_flood");
    let storm_offset = plan.boot_storm().expect("storm configured").offset_for(1);
    let fabric = fabric_phase(cfg, plan, &mut checks);

    let (mut net, registry) = defence_net(0xb007, |_, c| c);
    let baseline_ok = net.controller.borrow().stats().responses_ok;
    let victim = arm_flood(&mut net, FatTree::new(K), storm_offset);
    let start = net.sim.now().as_ns();
    net.sim
        .run_until(SimTime::from_ns(start + DEFENCE_WINDOW_NS));
    let latency = check_flood_defence(&mut net, &registry, victim, baseline_ok, &mut checks);
    campaign_phase_span(&registry, 0, start, net.sim.now().as_ns());
    let [mp50, mp99, rp50, rp99] = finish_telemetry(&registry, &mut checks);

    CampaignVerdict {
        name: "boot_storm_digest_flood",
        fault_attack: true,
        checks: checks.0,
        mitigation_latency_ns: latency,
        mitigation_latency_p50_ns: mp50,
        mitigation_latency_p99_ns: mp99,
        rollover_fanout_p50_ns: rp50,
        rollover_fanout_p99_ns: rp99,
        fabric,
    }
}

/// Campaign 2 — replay during re-route. Fabric: an edge uplink flaps and
/// ECMP detours around it. Defence: a sealed `writeReq` recorded on the
/// C-DP channel is replayed while the victim's uplink is down; sequence
/// numbers must reject it, and recovery must re-agree the port keys.
fn reroute_replay(cfg: &CampaignConfig) -> CampaignVerdict {
    const REG: RegId = RegId::new(77);
    let mut checks = Checks::default();
    let ft = FatTree::new(K);

    let fabric = fabric_phase(cfg, plan_for("reroute_replay"), &mut checks);

    let victim = ft.edge(0, 0);
    let (mut net, registry) = defence_net(0x3e91a7, move |id, c: AgentConfig| {
        if id == victim {
            c.map_register(REG, "stats")
        } else {
            c
        }
    });
    net.switches[&victim]
        .borrow_mut()
        .chassis_mut()
        .declare_register(RegisterArray::new("stats", 8, 64));

    // Record the sealed writes crossing the victim's control channel.
    let capture = replay::capture_buffer();
    let (cdp_link, _) = net
        .sim
        .topology()
        .link_at(victim, PortId::new(63))
        .expect("C-DP link exists");
    net.sim.install_tap(
        cdp_link,
        SwitchId::CONTROLLER,
        replay::record_write_requests(capture.clone()),
    );
    net.controller_write(victim, REG, 2, 7);
    net.sim.run_to_completion();
    net.controller_write(victim, REG, 2, 8);
    net.sim.run_to_completion();
    net.sim.remove_tap(cdp_link, SwitchId::CONTROLLER);
    let _ = net.take_events();
    let baseline_ok = net.controller.borrow().stats().responses_ok;

    // Flap the victim's first aggregation uplink; replay the stale write
    // mid-outage, while traffic is re-routing around the failure.
    let now = net.sim.now().as_ns();
    let (dp_link, _) = net
        .sim
        .topology()
        .link_at(victim, PortId::new(3))
        .expect("edge uplink exists");
    let mut churn = FaultPlan::new();
    churn.flap(dp_link, now + 10_000, now + 5_000_000);
    net.sim.install_fault_plan(&churn);
    net.sim.run_until(SimTime::from_ns(now + 1_000_000));

    let frames = replay::drain(&capture);
    checks.require(
        "replay_capture_recorded",
        frames.len() == 2,
        format!("{} sealed writeReqs captured (want 2)", frames.len()),
    );
    if let Some(stale) = frames.first() {
        net.sim.inject_frame(
            SwitchId::CONTROLLER,
            crate::harness::ControllerNode::port_for(victim),
            stale.clone(),
        );
    }
    net.sim.run_to_completion();

    let value = net.switches[&victim]
        .borrow()
        .chassis()
        .register("stats")
        .unwrap()
        .read(2)
        .unwrap();
    checks.require(
        "replay_did_not_regress_state",
        value == 8,
        format!("register value {value} (want the newer write, 8)"),
    );
    let events = net.take_events();
    checks.require(
        "replay_rejected_with_alert",
        events.contains(&ControllerEvent::AlertReceived {
            switch: victim,
            kind: AlertKind::SeqMismatch,
        }),
        "SeqMismatch alert from the victim".to_string(),
    );
    let stats = net.controller.borrow().stats();
    checks.require(
        "no_forged_frame_accepted",
        stats.responses_ok == baseline_ok,
        format!(
            "responses_ok {} (baseline {baseline_ok})",
            stats.responses_ok
        ),
    );
    check_clean_channels(&net, None, &mut checks);
    check_port_keys_converged(&net, &mut checks);
    campaign_phase_span(&registry, 1, now, net.sim.now().as_ns());
    let [mp50, mp99, rp50, rp99] = finish_telemetry(&registry, &mut checks);

    CampaignVerdict {
        name: "reroute_replay",
        fault_attack: true,
        checks: checks.0,
        mitigation_latency_ns: None,
        mitigation_latency_p50_ns: mp50,
        mitigation_latency_p99_ns: mp99,
        rollover_fanout_p50_ns: rp50,
        rollover_fanout_p99_ns: rp99,
        fabric,
    }
}

/// Campaign 3 — compromised-user flood during a pod failure. Fabric: pod
/// 1 fails outright (hosts included) and recovers. Defence: the flood
/// runs while pod 1's DP-DP links are dark; the defence must still
/// mitigate, and pod 1's keys must re-agree on recovery.
fn pod_failure_compromised_flood(cfg: &CampaignConfig) -> CampaignVerdict {
    let mut checks = Checks::default();
    let ft = FatTree::new(K);

    let fabric = fabric_phase(cfg, plan_for("pod_failure_compromised_flood"), &mut checks);

    let (mut net, registry) = defence_net(0xf1003, |_, c| c);
    let baseline_ok = net.controller.borrow().stats().responses_ok;
    let victim = arm_flood(&mut net, ft, 0);

    let now = net.sim.now().as_ns();
    let mut churn = FaultPlan::new();
    let mut pod_links: Vec<LinkId> = Vec::new();
    for i in 0..K / 2 {
        pod_links.extend(dp_links_of(net.sim.topology(), ft.agg(1, i)));
        pod_links.extend(dp_links_of(net.sim.topology(), ft.edge(1, i)));
    }
    pod_links.sort_by_key(|l| l.0);
    pod_links.dedup();
    churn.correlated_flap(&pod_links, now + 50_000, now + 100_000_000);
    net.sim.install_fault_plan(&churn);

    net.sim.run_until(SimTime::from_ns(now + DEFENCE_WINDOW_NS));
    net.sim.run_to_completion();
    let latency = check_flood_defence(&mut net, &registry, victim, baseline_ok, &mut checks);
    check_port_keys_converged(&net, &mut checks);
    campaign_phase_span(&registry, 2, now, net.sim.now().as_ns());
    let [mp50, mp99, rp50, rp99] = finish_telemetry(&registry, &mut checks);

    CampaignVerdict {
        name: "pod_failure_compromised_flood",
        fault_attack: true,
        checks: checks.0,
        mitigation_latency_ns: latency,
        mitigation_latency_p50_ns: mp50,
        mitigation_latency_p99_ns: mp99,
        rollover_fanout_p50_ns: rp50,
        rollover_fanout_p99_ns: rp99,
        fabric,
    }
}

/// Campaign 4 — correlated flap churn, no attack. A shared-conduit group
/// (every DP-DP link of one aggregation switch) flaps twice while the
/// controller keeps doing legitimate work. Churn alone must produce zero
/// mitigations, zero quarantines, and a converged key state.
fn correlated_flap_churn(cfg: &CampaignConfig) -> CampaignVerdict {
    let mut checks = Checks::default();
    let ft = FatTree::new(K);

    let fabric = fabric_phase(cfg, plan_for("correlated_flap_churn"), &mut checks);

    let (mut net, registry) = defence_net(0xc0991, |_, c| c);
    let baseline_ok = net.controller.borrow().stats().responses_ok;
    let now = net.sim.now().as_ns();
    let dp_group = dp_links_of(net.sim.topology(), ft.agg(0, 0));
    let mut churn = FaultPlan::new();
    churn
        .correlated_flap(&dp_group, now + 10_000, now + 300_000)
        .correlated_flap(&dp_group, now + 600_000, now + 900_000);
    net.sim.install_fault_plan(&churn);

    // Legitimate control traffic rides through the churn: reads of a
    // built-in register on switches in and out of the flapping group.
    let ops: Vec<SwitchId> = vec![ft.agg(0, 0), ft.edge(0, 0), ft.edge(1, 1), ft.core(0)];
    for &sw in &ops {
        net.controller_read(sw, RegId::new(0), 0);
    }
    net.sim.run_to_completion();

    let events = net.take_events();
    let mitigations = events
        .iter()
        .filter(|e| matches!(e, ControllerEvent::DefenceMitigated { .. }))
        .count();
    checks.require(
        "churn_no_false_mitigation",
        mitigations == 0,
        format!("{mitigations} mitigations from pure churn (want 0)"),
    );
    let stats = net.controller.borrow().stats();
    checks.require(
        "control_ops_survive_churn",
        stats.responses_ok >= baseline_ok + ops.len() as u64,
        format!(
            "responses_ok {} (baseline {baseline_ok} + {} ops)",
            stats.responses_ok,
            ops.len()
        ),
    );
    check_clean_channels(&net, None, &mut checks);
    check_port_keys_converged(&net, &mut checks);
    campaign_phase_span(&registry, 3, now, net.sim.now().as_ns());
    let [mp50, mp99, rp50, rp99] = finish_telemetry(&registry, &mut checks);

    CampaignVerdict {
        name: "correlated_flap_churn",
        fault_attack: false,
        checks: checks.0,
        mitigation_latency_ns: None,
        mitigation_latency_p50_ns: mp50,
        mitigation_latency_p99_ns: mp99,
        rollover_fanout_p50_ns: rp50,
        rollover_fanout_p99_ns: rp99,
        fabric,
    }
}

/// Campaign 5 — whole-switch failure and recovery, no attack. An
/// aggregation switch goes dark and returns; recovery must re-agree the
/// port keys on every incident link with no defence false positives.
fn switch_failure_recovery(cfg: &CampaignConfig) -> CampaignVerdict {
    let mut checks = Checks::default();
    let ft = FatTree::new(K);

    let fabric = fabric_phase(cfg, plan_for("switch_failure_recovery"), &mut checks);

    let (mut net, registry) = defence_net(0x5f41e, |_, c| c);
    let now = net.sim.now().as_ns();
    let dead = dp_links_of(net.sim.topology(), ft.agg(1, 0));
    let mut churn = FaultPlan::new();
    churn.correlated_flap(&dead, now + 10_000, now + 500_000);
    net.sim.install_fault_plan(&churn);
    net.sim.run_to_completion();

    // Post-recovery the switch answers legitimate requests again.
    let baseline_ok = net.controller.borrow().stats().responses_ok;
    net.controller_read(ft.agg(1, 0), RegId::new(0), 0);
    net.sim.run_to_completion();

    let events = net.take_events();
    let mitigations = events
        .iter()
        .filter(|e| matches!(e, ControllerEvent::DefenceMitigated { .. }))
        .count();
    checks.require(
        "failure_no_false_mitigation",
        mitigations == 0,
        format!("{mitigations} mitigations from switch failure (want 0)"),
    );
    let stats = net.controller.borrow().stats();
    checks.require(
        "recovered_switch_answers",
        stats.responses_ok == baseline_ok + 1,
        format!(
            "responses_ok {} (baseline {baseline_ok})",
            stats.responses_ok
        ),
    );
    check_clean_channels(&net, None, &mut checks);
    check_port_keys_converged(&net, &mut checks);
    campaign_phase_span(&registry, 4, now, net.sim.now().as_ns());
    let [mp50, mp99, rp50, rp99] = finish_telemetry(&registry, &mut checks);

    CampaignVerdict {
        name: "switch_failure_recovery",
        fault_attack: false,
        checks: checks.0,
        mitigation_latency_ns: None,
        mitigation_latency_p50_ns: mp50,
        mitigation_latency_p99_ns: mp99,
        rollover_fanout_p50_ns: rp50,
        rollover_fanout_p99_ns: rp99,
        fabric,
    }
}

/// Every DP-DP link of `sw` in a plain (controller-less, host-ful) fat
/// tree: host attachment links excluded so the flap group models a
/// shared switch-to-switch conduit.
fn dp_links_of_plain(topo: &Topology, sw: SwitchId) -> Vec<LinkId> {
    use p4auth_netsim::topology::HOST_ID_BASE;
    topo.links()
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            (l.a.node == sw || l.b.node == sw)
                && l.a.node.value() < HOST_ID_BASE
                && l.b.node.value() < HOST_ID_BASE
        })
        .map(|(i, _)| LinkId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full suite at smoke scale: every campaign's invariants hold.
    /// (The `repro -- scenarios` report runs the same campaigns at
    /// [`CampaignConfig::standard`] — 100k users.)
    #[test]
    fn all_campaigns_pass_at_smoke_scale() {
        let verdicts = run_campaigns(&CampaignConfig::short());
        assert_eq!(verdicts.len(), 5);
        assert_eq!(
            verdicts.iter().filter(|v| v.fault_attack).count(),
            3,
            "three campaigns must combine a fault with an attack"
        );
        for v in &verdicts {
            for c in &v.checks {
                assert!(c.passed, "{}/{}: {}", v.name, c.name, c.detail);
            }
            assert!(v.passed());
            assert!(v.fabric.frames_sent > 0, "{}: fabric ran", v.name);
        }
        // Names are stable (the baseline gate keys on them).
        let names: Vec<&str> = verdicts.iter().map(|v| v.name).collect();
        assert_eq!(
            names,
            vec![
                "boot_storm_digest_flood",
                "reroute_replay",
                "pod_failure_compromised_flood",
                "correlated_flap_churn",
                "switch_failure_recovery",
            ]
        );
    }

    /// The standard report configuration models ≥100k users per campaign.
    #[test]
    fn standard_config_is_user_scale() {
        assert!(CampaignConfig::standard().users >= 100_000);
    }

    /// The flight-recorder probe: heap and calendar schedulers produce
    /// byte-identical encoded traces, the trace is well-formed, nothing
    /// was dropped, and the mitigation critical path decomposes the
    /// recorded latency into stages that sum exactly to the total.
    #[test]
    fn traced_probe_is_engine_invariant_and_well_formed() {
        use p4auth_telemetry::trace::{encode_trace, validate_well_formed};

        let heap = traced_defence_probe(SchedulerKind::Heap, CAMPAIGN_TRACE_CAPACITY);
        let calendar = traced_defence_probe(SchedulerKind::Calendar, CAMPAIGN_TRACE_CAPACITY);
        assert_eq!(heap.trace().dropped(), 0, "probe must not drop spans");
        let a = heap.trace().sorted_records();
        let b = calendar.trace().sorted_records();
        assert_eq!(
            encode_trace(&a, 0),
            encode_trace(&b, 0),
            "heap and calendar traces must be byte-identical"
        );
        validate_well_formed(&a).expect("trace is well-formed");
        assert!(!a.is_empty(), "the probe records spans");

        // The mitigation root's stage children partition its interval.
        let root = a
            .iter()
            .find(|r| r.kind == SpanKind::Mitigation)
            .expect("the flood trips a mitigation");
        let stages: Vec<_> = a.iter().filter(|r| r.parent_id == root.span_id).collect();
        assert!(
            stages.len() >= 4,
            "want >= 4 critical-path stages, got {}",
            stages.len()
        );
        let total: u64 = stages.iter().map(|s| s.end_ns - s.start_ns).sum();
        assert_eq!(
            total,
            root.end_ns - root.start_ns,
            "stage widths must sum to the mitigation latency"
        );

        // The recorded latency matches the histogram the campaigns gate.
        let snap = heap.snapshot();
        let hist = snap
            .histogram("defence_mitigation_latency_ns", "controller")
            .expect("latency histogram present");
        assert_eq!(hist.count, 1);
        assert_eq!(root.end_ns - root.start_ns, hist.max);
    }

    /// Two runs produce identical deterministic fields — the property the
    /// CI two-run diff of `BENCH_scenarios.json` depends on.
    #[test]
    fn campaign_verdicts_are_deterministic() {
        let cfg = CampaignConfig {
            users: 2_000,
            frames_per_user: 1,
        };
        let a = run_campaigns(&cfg);
        let b = run_campaigns(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.passed(), y.passed());
            assert_eq!(x.mitigation_latency_ns, y.mitigation_latency_ns);
            assert_eq!(x.mitigation_latency_p50_ns, y.mitigation_latency_p50_ns);
            assert_eq!(x.mitigation_latency_p99_ns, y.mitigation_latency_p99_ns);
            assert_eq!(x.rollover_fanout_p50_ns, y.rollover_fanout_p50_ns);
            assert_eq!(x.rollover_fanout_p99_ns, y.rollover_fanout_p99_ns);
            assert_eq!(x.fabric.events, y.fabric.events);
            assert_eq!(x.fabric.frames_sent, y.fabric.frames_sent);
            assert_eq!(x.fabric.frames_delivered, y.fabric.frames_delivered);
            assert_eq!(x.fabric.frames_undeliverable, y.fabric.frames_undeliverable);
            assert_eq!(x.fabric.faults_applied, y.fabric.faults_applied);
            assert_eq!(x.fabric.sim_ns, y.fabric.sim_ns);
            for (cx, cy) in x.checks.iter().zip(&y.checks) {
                assert_eq!(cx.name, cy.name);
                assert_eq!(cx.passed, cy.passed);
                assert_eq!(cx.detail, cy.detail);
            }
        }
    }
}
