//! Fat-tree scale workload: the events/sec measurement behind the
//! calendar-queue scheduler and the sharded engine (`repro -- scale` and
//! the `sim_scale` bench).
//!
//! Hundreds of switches forward a fig19-style register traffic mix (two
//! 34-byte reads per 58-byte write) between random host pairs over
//! `Topology::fat_tree(k)`. Forwarding is deterministic-ECMP arithmetic
//! ([`FatTree::next_hop`]) so the run is bit-identical across schedulers
//! *and* across shard counts, and the measurement isolates the event
//! queue plus the simulator's dense hot path.
//!
//! The module lives in `p4auth-systems` (rather than the bench crate) so
//! the CI smoke runner, the Criterion bench and the `repro` reporter all
//! drive the exact same workload.

use p4auth_netsim::fattree::FatTree;
use p4auth_netsim::frame::FrameBytes;
use p4auth_netsim::sched::SchedulerKind;
use p4auth_netsim::shard::{ShardPlan, ShardedSimulator};
use p4auth_netsim::sim::{Outbox, SimNode, Simulator, TopologyEvent};
use p4auth_netsim::time::SimTime;
use p4auth_netsim::timeline::Timeline;
use p4auth_primitives::rng::{RandomSource, SplitMix64};
use p4auth_telemetry::Registry;
use p4auth_wire::ids::{PortId, SwitchId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fig19-style request sizes: header + digest + read body / write body.
/// (Shared with `userscale`, whose aggregates emit the same mix.)
pub(crate) const READ_FRAME_BYTES: usize = 34;
pub(crate) const WRITE_FRAME_BYTES: usize = 58;

/// One scale-workload configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScaleConfig {
    /// Fat-tree arity (even, ≤ 16).
    pub k: u16,
    /// Uniform one-way link latency in ns.
    pub latency_ns: u64,
    /// Per-hop switch processing delay in ns.
    pub proc_ns: u64,
    /// Frames each host transmits.
    pub frames_per_host: u32,
    /// Inter-frame gap per host in ns (smaller = more events in flight).
    pub interval_ns: u64,
    /// Traffic seed (destinations and ECMP flow labels).
    pub seed: u64,
}

impl ScaleConfig {
    /// The standard configuration for arity `k`: 1.5µs links, 500ns hop
    /// processing, one frame per host every 25ns — a loaded fabric that
    /// keeps tens of in-flight events per host outstanding, the regime
    /// the calendar queue is built for.
    pub fn for_k(k: u16, frames_per_host: u32) -> Self {
        ScaleConfig {
            k,
            latency_ns: 1_500,
            proc_ns: 500,
            frames_per_host,
            interval_ns: 25,
            seed: 0x5ca1_e000 ^ k as u64,
        }
    }
}

/// Which execution engine a scale run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Single-threaded run on the given scheduler.
    Sequential(SchedulerKind),
    /// Sharded run: pod-aligned partition, conservative safe-window
    /// rounds, always on the calendar scheduler per shard.
    Sharded {
        /// Worker shard count.
        shards: usize,
    },
}

impl Engine {
    /// Short human-readable label (`heap`, `calendar`, `sharded-4`).
    pub fn label(&self) -> String {
        match self {
            Engine::Sequential(kind) => kind.label().to_string(),
            Engine::Sharded { shards } => format!("sharded-{shards}"),
        }
    }
}

/// Result of one scale run.
#[derive(Clone, Copy, Debug)]
pub struct ScaleRun {
    /// Engine the run used.
    pub engine: Engine,
    /// Events processed (pops).
    pub events: u64,
    /// Frames that reached their destination host.
    pub frames_delivered: u64,
    /// Final simulated clock in ns.
    pub sim_ns: u64,
    /// Wall-clock duration of the run in ns.
    pub wall_ns: u64,
    /// Coordinator rendezvous rounds (0 for sequential engines).
    pub rounds: u64,
    /// Safe windows granted across all rounds (0 for sequential engines;
    /// ≥ `rounds` when chaining is on).
    pub windows: u64,
    /// Cross-shard frames exchanged through peer mailboxes (0 for
    /// sequential engines).
    pub frames_exchanged: u64,
    /// Wall-clock ns the coordinator spent waiting at rendezvous barriers
    /// (0 for sequential engines; nondeterministic, like `wall_ns`).
    pub barrier_wait_ns: u64,
}

impl ScaleRun {
    /// Simulator throughput: events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }

    /// Coordination cost normalized by work: rendezvous rounds per million
    /// events processed. 0 for sequential engines.
    pub fn rounds_per_mevents(&self) -> f64 {
        self.rounds as f64 / (self.events.max(1) as f64 / 1e6)
    }

    /// The deterministic portion of the run (everything but wall time) —
    /// must be identical across schedulers and shard counts.
    pub fn fingerprint(&self) -> (u64, u64, u64) {
        (self.events, self.frames_delivered, self.sim_ns)
    }
}

/// A fat-tree switch: pure arithmetic forwarding via [`FatTree::next_hop`].
struct Forwarder {
    ft: FatTree,
    id: SwitchId,
    proc_ns: u64,
    /// Local ports with a dead link, tracked from topology notifications
    /// (bit `p` = port `p`; fat-tree data ports are `1..=k`, far below
    /// 64). ECMP uplink choices rotate around these.
    down: u64,
}

/// Destination host id lives in payload bytes `[0..2]` (LE), the ECMP flow
/// label in byte `[2]`.
pub(crate) fn frame_dst(payload: &[u8]) -> SwitchId {
    SwitchId::new(u16::from_le_bytes([payload[0], payload[1]]))
}

impl SimNode for Forwarder {
    fn on_frame(&mut self, _now: SimTime, _ingress: PortId, payload: FrameBytes, out: &mut Outbox) {
        let dst = frame_dst(&payload);
        let flow = payload[2] as u64;
        let down = self.down;
        let is_down = |p: PortId| down & (1u64 << (p.value() & 63)) != 0;
        if let Some(port) = self.ft.next_hop_avoiding(self.id, dst, flow, is_down) {
            out.send_delayed(port, payload, self.proc_ns);
        }
    }

    fn on_topology(&mut self, _now: SimTime, event: TopologyEvent, _out: &mut Outbox) {
        let (up, a, b) = match event {
            TopologyEvent::LinkUp { a, b, .. } => (true, a, b),
            TopologyEvent::LinkDown { a, b, .. } => (false, a, b),
        };
        for ep in [a, b] {
            if ep.node == self.id {
                let bit = 1u64 << (ep.port.value() & 63);
                if up {
                    self.down &= !bit;
                } else {
                    self.down |= bit;
                }
            }
        }
    }
}

/// A host: transmits its share of the traffic mix on a timer, sinks and
/// counts whatever arrives. The arrival counter is atomic so the same
/// node type serves both the sequential and the sharded engine.
struct Host {
    index: u16,
    remaining: u32,
    sent: u32,
    interval_ns: u64,
    rng: SplitMix64,
    ft: FatTree,
    arrivals: Arc<AtomicU64>,
}

pub(crate) const SEND_TIMER: u64 = 1;

impl SimNode for Host {
    fn on_frame(&mut self, _now: SimTime, _ingress: PortId, _payload: FrameBytes, _: &mut Outbox) {
        self.arrivals.fetch_add(1, Ordering::Relaxed);
    }

    fn on_timer(&mut self, _now: SimTime, _timer_id: u64, out: &mut Outbox) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        // Pick a random *other* host as destination.
        let hosts = self.ft.host_count();
        let mut dst = (self.rng.next_u64() % (hosts as u64 - 1)) as u16;
        if dst >= self.index {
            dst += 1;
        }
        // 2 reads : 1 write, matching the fig19 request mix.
        let len = if self.sent % 3 == 2 {
            WRITE_FRAME_BYTES
        } else {
            READ_FRAME_BYTES
        };
        self.sent += 1;
        let mut buf = [0u8; WRITE_FRAME_BYTES];
        buf[..2].copy_from_slice(&self.ft.host(dst).value().to_le_bytes());
        buf[2] = (self.rng.next_u64() & 0xff) as u8;
        out.send(PortId::new(1), FrameBytes::from_slice(&buf[..len]));
        if self.remaining > 0 {
            out.set_timer(SEND_TIMER, self.interval_ns);
        }
    }
}

fn forwarder(cfg: &ScaleConfig, ft: FatTree, id: SwitchId) -> Box<Forwarder> {
    Box::new(Forwarder {
        ft,
        id,
        proc_ns: cfg.proc_ns,
        down: 0,
    })
}

/// A fabric forwarder for other workloads in this crate (`userscale`
/// reuses the exact scale-workload switch so host aggregation changes
/// nothing about the fabric).
pub(crate) fn fabric_forwarder(ft: FatTree, id: SwitchId, proc_ns: u64) -> Box<dyn SimNode + Send> {
    Box::new(Forwarder {
        ft,
        id,
        proc_ns,
        down: 0,
    })
}

fn host(cfg: &ScaleConfig, ft: FatTree, h: u16, arrivals: &Arc<AtomicU64>) -> Box<Host> {
    Box::new(Host {
        index: h,
        remaining: cfg.frames_per_host,
        sent: 0,
        interval_ns: cfg.interval_ns,
        rng: SplitMix64::new(cfg.seed ^ (h as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        ft,
        arrivals: arrivals.clone(),
    })
}

/// Staggered start so transmissions interleave instead of phasing.
pub(crate) fn boot_delay(h: u16) -> u64 {
    1 + (h as u64 % 97) * 11
}

/// Runs the workload on the given engine. Pass a registry to collect
/// `sim_event_lead_ns` (instrumentation adds per-event work, so keep
/// timed comparison runs uninstrumented).
pub fn run_scale_engine(
    cfg: ScaleConfig,
    engine: Engine,
    registry: Option<Arc<Registry>>,
) -> ScaleRun {
    let ft = FatTree::new(cfg.k);
    let arrivals = Arc::new(AtomicU64::new(0));
    let (events, sim_ns, wall_ns, coord) = match engine {
        Engine::Sequential(kind) => {
            let mut sim = Simulator::with_scheduler(ft.build(cfg.latency_ns), kind);
            if let Some(r) = registry {
                sim.set_telemetry(r);
            }
            for id in 1..=ft.switch_count() {
                let id = SwitchId::new(id);
                sim.register_node(id, forwarder(&cfg, ft, id));
            }
            for h in 0..ft.host_count() {
                sim.register_node(ft.host(h), host(&cfg, ft, h, &arrivals));
                sim.schedule_timer(ft.host(h), SEND_TIMER, boot_delay(h));
            }
            let start = std::time::Instant::now();
            let events = sim.run_to_completion();
            (
                events,
                sim.now().as_ns(),
                start.elapsed().as_nanos() as u64,
                (0, 0, 0, 0),
            )
        }
        Engine::Sharded { shards } => {
            let topo = ft.build(cfg.latency_ns);
            let plan = ShardPlan::pod_aligned(&topo, shards);
            let mut sim = ShardedSimulator::new(topo, plan);
            if let Some(r) = registry {
                sim.set_telemetry(r);
            }
            for id in 1..=ft.switch_count() {
                let id = SwitchId::new(id);
                sim.register_node(id, forwarder(&cfg, ft, id));
            }
            for h in 0..ft.host_count() {
                sim.register_node(ft.host(h), host(&cfg, ft, h, &arrivals));
                sim.schedule_timer(ft.host(h), SEND_TIMER, boot_delay(h));
            }
            let start = std::time::Instant::now();
            let report = sim.run();
            (
                report.events,
                report.now.as_ns(),
                start.elapsed().as_nanos() as u64,
                (
                    report.rounds,
                    report.windows,
                    report.frames_exchanged,
                    report.barrier_wait_ns,
                ),
            )
        }
    };
    let (rounds, windows, frames_exchanged, barrier_wait_ns) = coord;
    ScaleRun {
        engine,
        events,
        frames_delivered: arrivals.load(Ordering::Relaxed),
        sim_ns,
        wall_ns,
        rounds,
        windows,
        frames_exchanged,
        barrier_wait_ns,
    }
}

/// Runs the workload single-threaded on the given scheduler (the original
/// entry point; see [`run_scale_engine`] for the sharded variant).
pub fn run_scale(
    cfg: ScaleConfig,
    kind: SchedulerKind,
    registry: Option<Arc<Registry>>,
) -> ScaleRun {
    run_scale_engine(cfg, Engine::Sequential(kind), registry)
}

/// Runs the workload with periodic telemetry export every `interval_ns`
/// of sim-time, returning the run result and the recorded [`Timeline`].
///
/// The timeline is bit-identical across every engine — heap, calendar
/// and any shard count — because capture is driven by the sim clock and
/// the sharded merge reproduces the sequential registry state at every
/// grid boundary (asserted by `timeline_is_bit_identical_across_engines`
/// below and by the CI determinism step via `repro -- timeline`).
pub fn run_scale_timeline(
    cfg: ScaleConfig,
    engine: Engine,
    interval_ns: u64,
) -> (ScaleRun, Timeline) {
    let ft = FatTree::new(cfg.k);
    let arrivals = Arc::new(AtomicU64::new(0));
    let (events, sim_ns, wall_ns, timeline, coord) = match engine {
        Engine::Sequential(kind) => {
            let mut sim = Simulator::with_scheduler(ft.build(cfg.latency_ns), kind);
            sim.set_telemetry(Arc::new(Registry::new()));
            for id in 1..=ft.switch_count() {
                let id = SwitchId::new(id);
                sim.register_node(id, forwarder(&cfg, ft, id));
            }
            for h in 0..ft.host_count() {
                sim.register_node(ft.host(h), host(&cfg, ft, h, &arrivals));
                sim.schedule_timer(ft.host(h), SEND_TIMER, boot_delay(h));
            }
            // After boot timers: setup pushes land in the baseline, the
            // same cut the sharded workers use.
            sim.set_export_interval(interval_ns);
            let start = std::time::Instant::now();
            let events = sim.run_to_completion();
            let wall_ns = start.elapsed().as_nanos() as u64;
            let timeline = sim.take_timeline().expect("export interval was set");
            (events, sim.now().as_ns(), wall_ns, timeline, (0, 0, 0, 0))
        }
        Engine::Sharded { shards } => {
            let topo = ft.build(cfg.latency_ns);
            let plan = ShardPlan::pod_aligned(&topo, shards);
            let mut sim = ShardedSimulator::new(topo, plan);
            sim.set_export_interval(interval_ns);
            for id in 1..=ft.switch_count() {
                let id = SwitchId::new(id);
                sim.register_node(id, forwarder(&cfg, ft, id));
            }
            for h in 0..ft.host_count() {
                sim.register_node(ft.host(h), host(&cfg, ft, h, &arrivals));
                sim.schedule_timer(ft.host(h), SEND_TIMER, boot_delay(h));
            }
            let start = std::time::Instant::now();
            let (report, timeline) = sim.run_timeline();
            (
                report.events,
                report.now.as_ns(),
                start.elapsed().as_nanos() as u64,
                timeline,
                (
                    report.rounds,
                    report.windows,
                    report.frames_exchanged,
                    report.barrier_wait_ns,
                ),
            )
        }
    };
    let (rounds, windows, frames_exchanged, barrier_wait_ns) = coord;
    (
        ScaleRun {
            engine,
            events,
            frames_delivered: arrivals.load(Ordering::Relaxed),
            sim_ns,
            wall_ns,
            rounds,
            windows,
            frames_exchanged,
            barrier_wait_ns,
        },
        timeline,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedulers_agree_on_the_scale_workload() {
        let cfg = ScaleConfig::for_k(4, 20);
        let heap = run_scale(cfg, SchedulerKind::Heap, None);
        let cal = run_scale(cfg, SchedulerKind::Calendar, None);
        assert_eq!(heap.fingerprint(), cal.fingerprint());
        // Every transmitted frame must arrive (ECMP routing is loop-free
        // and complete).
        assert_eq!(cal.frames_delivered, 16 * 20);
        assert!(cal.events > cal.frames_delivered);
        assert!(cal.events_per_sec() > 0.0);
    }

    #[test]
    fn sharded_engine_agrees_on_the_scale_workload() {
        let cfg = ScaleConfig::for_k(4, 20);
        let cal = run_scale(cfg, SchedulerKind::Calendar, None);
        for shards in [1, 2, 4] {
            let sharded = run_scale_engine(cfg, Engine::Sharded { shards }, None);
            assert_eq!(
                cal.fingerprint(),
                sharded.fingerprint(),
                "sharded-{shards} diverged from calendar"
            );
        }
    }

    #[test]
    fn timeline_is_bit_identical_across_engines() {
        let cfg = ScaleConfig::for_k(4, 30);
        let interval_ns = 2_000;
        let (heap_run, heap_tl) =
            run_scale_timeline(cfg, Engine::Sequential(SchedulerKind::Heap), interval_ns);
        let (cal_run, cal_tl) = run_scale_timeline(
            cfg,
            Engine::Sequential(SchedulerKind::Calendar),
            interval_ns,
        );
        let (shard_run, shard_tl) =
            run_scale_timeline(cfg, Engine::Sharded { shards: 4 }, interval_ns);
        assert_eq!(heap_run.fingerprint(), cal_run.fingerprint());
        assert_eq!(heap_run.fingerprint(), shard_run.fingerprint());
        // The serialized timelines are byte-identical across engines.
        let json = heap_tl.to_json();
        let bin = heap_tl.to_bin();
        assert_eq!(cal_tl.to_json(), json, "calendar timeline diverged");
        assert_eq!(shard_tl.to_json(), json, "sharded timeline diverged");
        assert_eq!(cal_tl.to_bin(), bin);
        assert_eq!(shard_tl.to_bin(), bin);
        // The run spans many boundaries and actually emits deltas.
        assert!(
            heap_tl.entries.len() >= 3,
            "expected several non-empty windows, got {}",
            heap_tl.entries.len()
        );
        // baseline + Σdeltas reconstructs the final full snapshot.
        assert_eq!(heap_tl.reconstruct(), heap_tl.final_snapshot);
        // And the binary stream decodes back exactly.
        assert_eq!(Timeline::from_bin(&bin).unwrap(), heap_tl);
    }

    #[test]
    fn instrumented_run_records_event_leads() {
        let registry = Arc::new(Registry::new());
        let cfg = ScaleConfig::for_k(4, 5);
        run_scale(cfg, SchedulerKind::Calendar, Some(registry.clone()));
        let snap = registry.snapshot();
        let lead = snap.histogram("sim_event_lead_ns", "").unwrap();
        assert!(lead.count > 0);
        // Leads cluster at proc + latency = 2µs; the p99 stays in the
        // narrow band the calendar queue exploits.
        assert!(
            lead.p50 >= 1_000 && lead.p99 <= 16_384,
            "p50={} p99={}",
            lead.p50,
            lead.p99
        );
    }
}
