//! A NetWarden-style covert-channel mitigator (Xing et al., USENIX
//! Security 2020) — the Table I "IDS/IPS" row as a working system.
//!
//! The data plane tracks per-connection state and measures inter-packet
//! delays (IPDs); connections whose IPD variance looks like a timing
//! covert channel are reported to the controller, which flags them in the
//! data plane (the flag makes the data plane *pace* the connection's
//! packets, destroying the covert timing). The §II-A adversary clears the
//! suspicion flag inside the controller's update message — Table I:
//! "evasion of malicious traffic detection".

use p4auth_core::agent::InNetworkApp;
use p4auth_dataplane::chassis::{Chassis, ChassisError, PacketContext};
use p4auth_dataplane::register::RegisterArray;
use p4auth_wire::ids::PortId;

/// System id of NetWarden frames.
pub const NETWARDEN_SYSTEM_ID: u8 = 4;

/// First byte of tracked-connection frames.
pub const CONN_MAGIC: u8 = 0xCC;

/// Tracked connection slots.
pub const CONN_SLOTS: u32 = 32;

/// Data-plane register names.
pub mod regs {
    /// Last packet timestamp per connection (for IPD measurement).
    pub const LAST_TS: &str = "nw_last_ts";
    /// Accumulated IPD sum per connection (reported to the controller).
    pub const IPD_SUM: &str = "nw_ipd_sum";
    /// Packet count per connection.
    pub const PKT_COUNT: &str = "nw_pkt_count";
    /// Suspicion flag per connection (written by the controller; when
    /// set, the data plane paces the connection).
    pub const SUSPECT: &str = "nw_suspect";
    /// Packets paced (delayed) because their connection was flagged.
    pub const PACED: &str = "nw_paced";
}

/// Controller-visible register ids.
pub mod reg_ids {
    use p4auth_wire::ids::RegId;

    /// [`super::regs::IPD_SUM`].
    pub const IPD_SUM: RegId = RegId::new(5001);
    /// [`super::regs::PKT_COUNT`].
    pub const PKT_COUNT: RegId = RegId::new(5002);
    /// [`super::regs::SUSPECT`].
    pub const SUSPECT: RegId = RegId::new(5003);
}

/// A connection packet: `[0xCC, conn(4), ts_us(4)]` (the timestamp is
/// trace-driven, as the simulator's clock is per-event).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConnPacket {
    /// Connection slot id.
    pub conn: u32,
    /// Transmit timestamp in µs.
    pub ts_us: u32,
}

impl ConnPacket {
    /// Encodes the frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![CONN_MAGIC];
        out.extend_from_slice(&self.conn.to_be_bytes());
        out.extend_from_slice(&self.ts_us.to_be_bytes());
        out
    }

    /// Decodes a frame.
    pub fn decode(bytes: &[u8]) -> Option<ConnPacket> {
        if bytes.len() != 9 || bytes[0] != CONN_MAGIC {
            return None;
        }
        Some(ConnPacket {
            conn: u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]),
            ts_us: u32::from_be_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]),
        })
    }
}

/// The NetWarden data-plane program. Unflagged traffic forwards on
/// port 1; flagged (suspect) traffic is paced (still port 1, but counted
/// — the pacing itself is a queueing action the emulator counts rather
/// than models in time).
#[derive(Debug, Default)]
pub struct NetWardenApp;

impl NetWardenApp {
    /// Boxed for mounting on the agent.
    pub fn boxed() -> Box<dyn InNetworkApp> {
        Box::new(NetWardenApp)
    }
}

impl InNetworkApp for NetWardenApp {
    fn system_id(&self) -> u8 {
        NETWARDEN_SYSTEM_ID
    }

    fn setup(&mut self, chassis: &mut Chassis) {
        chassis.declare_register(RegisterArray::new(regs::LAST_TS, CONN_SLOTS, 64));
        chassis.declare_register(RegisterArray::new(regs::IPD_SUM, CONN_SLOTS, 64));
        chassis.declare_register(RegisterArray::new(regs::PKT_COUNT, CONN_SLOTS, 64));
        chassis.declare_register(RegisterArray::new(regs::SUSPECT, CONN_SLOTS, 64));
        chassis.declare_register(RegisterArray::new(regs::PACED, 1, 64));
    }

    fn on_control(
        &mut self,
        _ctx: &mut PacketContext<'_>,
        _ingress: PortId,
        _payload: &[u8],
    ) -> Result<Vec<(PortId, Vec<u8>)>, ChassisError> {
        Ok(vec![])
    }

    fn on_data(
        &mut self,
        ctx: &mut PacketContext<'_>,
        _ingress: PortId,
        bytes: &[u8],
    ) -> Result<Vec<(PortId, Vec<u8>)>, ChassisError> {
        let Some(pkt) = ConnPacket::decode(bytes) else {
            return Ok(vec![]);
        };
        let conn = pkt.conn % CONN_SLOTS;
        let last = ctx.read_register(regs::LAST_TS, conn)?;
        if last > 0 && (pkt.ts_us as u64) > last {
            let ipd = pkt.ts_us as u64 - last;
            ctx.update_register(regs::IPD_SUM, conn, |v| v.saturating_add(ipd))?;
        }
        ctx.write_register(regs::LAST_TS, conn, pkt.ts_us as u64)?;
        ctx.update_register(regs::PKT_COUNT, conn, |v| v + 1)?;

        if ctx.read_register(regs::SUSPECT, conn)? != 0 {
            // Pace the covert channel: count and forward.
            ctx.update_register(regs::PACED, 0, |v| v + 1)?;
        }
        Ok(vec![(PortId::new(1), bytes.to_vec())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4auth_dataplane::chassis::{Chassis, ChassisConfig};
    use p4auth_dataplane::packet::Packet;
    use p4auth_wire::ids::SwitchId;

    fn setup() -> (Chassis, NetWardenApp) {
        let mut app = NetWardenApp;
        let mut chassis = Chassis::new(ChassisConfig::tofino(SwitchId::new(1), 2));
        app.setup(&mut chassis);
        (chassis, app)
    }

    fn send(chassis: &mut Chassis, app: &mut NetWardenApp, conn: u32, ts_us: u32) {
        let bytes = ConnPacket { conn, ts_us }.encode();
        let pkt = Packet::from_bytes(PortId::new(2), bytes.clone());
        chassis
            .process(0, &pkt, |ctx, _| {
                app.on_data(ctx, PortId::new(2), &bytes)?;
                Ok(vec![])
            })
            .unwrap();
    }

    #[test]
    fn frame_roundtrip() {
        let p = ConnPacket {
            conn: 3,
            ts_us: 900,
        };
        assert_eq!(ConnPacket::decode(&p.encode()), Some(p));
        assert_eq!(ConnPacket::decode(&[0u8; 9]), None);
    }

    #[test]
    fn ipd_accumulates() {
        let (mut chassis, mut app) = setup();
        send(&mut chassis, &mut app, 1, 100);
        send(&mut chassis, &mut app, 1, 150);
        send(&mut chassis, &mut app, 1, 230);
        assert_eq!(
            chassis.register(regs::IPD_SUM).unwrap().read(1).unwrap(),
            130
        );
        assert_eq!(
            chassis.register(regs::PKT_COUNT).unwrap().read(1).unwrap(),
            3
        );
    }

    #[test]
    fn connections_are_isolated() {
        let (mut chassis, mut app) = setup();
        send(&mut chassis, &mut app, 1, 100);
        send(&mut chassis, &mut app, 2, 500);
        send(&mut chassis, &mut app, 1, 140);
        assert_eq!(
            chassis.register(regs::IPD_SUM).unwrap().read(1).unwrap(),
            40
        );
        assert_eq!(chassis.register(regs::IPD_SUM).unwrap().read(2).unwrap(), 0);
    }

    #[test]
    fn flagged_connections_are_paced() {
        let (mut chassis, mut app) = setup();
        chassis
            .register_mut(regs::SUSPECT)
            .unwrap()
            .write(5, 1)
            .unwrap();
        send(&mut chassis, &mut app, 5, 100);
        send(&mut chassis, &mut app, 5, 101);
        send(&mut chassis, &mut app, 6, 100); // unflagged
        assert_eq!(chassis.register(regs::PACED).unwrap().read(0).unwrap(), 2);
    }

    #[test]
    fn clearing_the_flag_is_the_table_i_evasion() {
        // The adversary's goal: a covert channel flagged by the controller
        // keeps leaking if the flag update is suppressed/cleared.
        let (mut chassis, mut app) = setup();
        chassis
            .register_mut(regs::SUSPECT)
            .unwrap()
            .write(5, 1)
            .unwrap();
        // Compromised driver clears it:
        chassis
            .register_mut(regs::SUSPECT)
            .unwrap()
            .write(5, 0)
            .unwrap();
        send(&mut chassis, &mut app, 5, 100);
        assert_eq!(
            chassis.register(regs::PACED).unwrap().read(0).unwrap(),
            0,
            "evaded"
        );
    }
}
