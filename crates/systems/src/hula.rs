//! HULA: scalable in-network load balancing (Katta et al., SOSR 2016).
//!
//! HULA switches flood periodic probes that carry the maximum link
//! utilization seen along their path from a destination ToR. Every switch
//! remembers, per destination, the best (least-utilized) next hop and the
//! utilization it advertised; data packets follow the best hop entirely in
//! the data plane. This is the paper's canonical DP-DP target system: an
//! on-link MitM that rewrites `probeUtil` (Fig. 3) drags all traffic onto a
//! congested path (Fig. 17) — unless P4Auth authenticates every probe
//! hop by hop.
//!
//! The implementation runs as an [`InNetworkApp`] mounted on the P4Auth
//! agent: probes arrive *already authenticated* (or not at all), and
//! forwarded probes are re-sealed by the agent with each egress port key.

use p4auth_core::agent::InNetworkApp;
use p4auth_dataplane::chassis::{Chassis, ChassisError, PacketContext};
use p4auth_dataplane::register::RegisterArray;
use p4auth_wire::ids::PortId;

/// The `msgType`/system id of HULA probes inside P4Auth in-network frames.
pub const HULA_SYSTEM_ID: u8 = 1;

/// First byte of HULA data frames.
pub const DATA_MAGIC: u8 = 0xDA;

/// Utilization value meaning "no path known".
pub const UTIL_UNKNOWN: u64 = 255;

/// A HULA probe: destination ToR, monotonically increasing round, and the
/// maximum path utilization (percent) accumulated so far.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Probe {
    /// Destination the probe advertises a path *to* (its originator).
    pub dst: u16,
    /// Probe round (originator-monotonic; doubles as freshness stamp).
    pub round: u32,
    /// Max link utilization along the path so far (0–100).
    pub util: u8,
}

impl Probe {
    /// Wire length of an encoded probe.
    pub const WIRE_LEN: usize = 7;

    /// Encodes the probe payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::WIRE_LEN);
        out.extend_from_slice(&self.dst.to_be_bytes());
        out.extend_from_slice(&self.round.to_be_bytes());
        out.push(self.util);
        out
    }

    /// Decodes a probe payload.
    pub fn decode(bytes: &[u8]) -> Option<Probe> {
        if bytes.len() != Self::WIRE_LEN {
            return None;
        }
        Some(Probe {
            dst: u16::from_be_bytes([bytes[0], bytes[1]]),
            round: u32::from_be_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]),
            util: bytes[6],
        })
    }
}

/// A HULA data frame: `[0xDA, dst_hi, dst_lo, flow_id…]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DataFrame {
    /// Destination switch id.
    pub dst: u16,
    /// Flow identifier (for flowlet bookkeeping and statistics).
    pub flow: u32,
}

impl DataFrame {
    /// Encodes a data frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![DATA_MAGIC];
        out.extend_from_slice(&self.dst.to_be_bytes());
        out.extend_from_slice(&self.flow.to_be_bytes());
        out
    }

    /// Decodes a data frame.
    pub fn decode(bytes: &[u8]) -> Option<DataFrame> {
        if bytes.len() != 7 || bytes[0] != DATA_MAGIC {
            return None;
        }
        Some(DataFrame {
            dst: u16::from_be_bytes([bytes[1], bytes[2]]),
            flow: u32::from_be_bytes([bytes[3], bytes[4], bytes[5], bytes[6]]),
        })
    }
}

/// Per-switch HULA configuration.
#[derive(Clone, Debug)]
pub struct HulaConfig {
    /// Largest destination id the tables are sized for.
    pub max_dst: u16,
    /// This switch's data ports (probes flood these; the C-DP port is
    /// excluded).
    pub data_ports: Vec<PortId>,
    /// A best-hop entry older than this many rounds is considered stale
    /// and replaceable by any fresh probe (HULA's aging).
    pub age_rounds: u32,
}

impl HulaConfig {
    /// Config for a switch with data ports `1..=n`.
    pub fn new(max_dst: u16, num_data_ports: u8) -> Self {
        HulaConfig {
            max_dst,
            data_ports: (1..=num_data_ports).map(PortId::new).collect(),
            age_rounds: 3,
        }
    }
}

/// Register names (public so experiments and attacks can reach the state —
/// the whole point of the paper is that this state is reachable).
pub mod regs {
    /// Best advertised utilization per destination.
    pub const BEST_UTIL: &str = "hula_best_util";
    /// Best next-hop port per destination.
    pub const BEST_HOP: &str = "hula_best_hop";
    /// Round of the last accepted probe per destination.
    pub const BEST_ROUND: &str = "hula_best_round";
    /// Highest probe round forwarded per destination (flood dedup).
    pub const SEEN_ROUND: &str = "hula_seen_round";
    /// Local link utilization percent per port.
    pub const LOCAL_UTIL: &str = "hula_local_util";
    /// Data packets transmitted per egress port (Fig. 17's measurement).
    pub const TX_COUNT: &str = "hula_tx_count";
    /// Data packets delivered locally (this switch was the destination).
    pub const DELIVERED: &str = "hula_delivered";
}

/// The HULA data-plane program.
#[derive(Debug)]
pub struct HulaApp {
    config: HulaConfig,
}

impl HulaApp {
    /// Creates the app.
    pub fn new(config: HulaConfig) -> Self {
        HulaApp { config }
    }

    /// Convenience: boxed for mounting on the agent.
    pub fn boxed(config: HulaConfig) -> Box<dyn InNetworkApp> {
        Box::new(HulaApp::new(config))
    }
}

impl InNetworkApp for HulaApp {
    fn system_id(&self) -> u8 {
        HULA_SYSTEM_ID
    }

    fn setup(&mut self, chassis: &mut Chassis) {
        let dsts = self.config.max_dst as u32 + 1;
        let ports = 64;
        let mut best_util = RegisterArray::new(regs::BEST_UTIL, dsts, 64);
        for i in 0..dsts {
            best_util.write(i, UTIL_UNKNOWN).expect("in range");
        }
        chassis.declare_register(best_util);
        chassis.declare_register(RegisterArray::new(regs::BEST_HOP, dsts, 64));
        chassis.declare_register(RegisterArray::new(regs::BEST_ROUND, dsts, 64));
        chassis.declare_register(RegisterArray::new(regs::SEEN_ROUND, dsts, 64));
        chassis.declare_register(RegisterArray::new(regs::LOCAL_UTIL, ports, 64));
        chassis.declare_register(RegisterArray::new(regs::TX_COUNT, ports, 64));
        chassis.declare_register(RegisterArray::new(regs::DELIVERED, dsts, 64));
    }

    fn on_control(
        &mut self,
        ctx: &mut PacketContext<'_>,
        ingress: PortId,
        payload: &[u8],
    ) -> Result<Vec<(PortId, Vec<u8>)>, ChassisError> {
        let Some(probe) = Probe::decode(payload) else {
            return Ok(vec![]);
        };
        if probe.dst > self.config.max_dst {
            return Ok(vec![]);
        }
        let dst = probe.dst as u32;

        // Path utilization via this ingress = max(probe util, local link
        // utilization of the ingress port).
        let local = ctx.read_register(regs::LOCAL_UTIL, ingress.value() as u32)?;
        let candidate = (probe.util as u64).max(local);

        let best_util = ctx.read_register(regs::BEST_UTIL, dst)?;
        let best_hop = ctx.read_register(regs::BEST_HOP, dst)?;
        let best_round = ctx.read_register(regs::BEST_ROUND, dst)?;
        let stale = probe.round as u64 > best_round + self.config.age_rounds as u64;

        let is_current_best = best_hop == ingress.value() as u64 && best_util != UTIL_UNKNOWN;
        if is_current_best || candidate < best_util || stale {
            ctx.write_register(regs::BEST_UTIL, dst, candidate)?;
            ctx.write_register(regs::BEST_HOP, dst, ingress.value() as u64)?;
            ctx.write_register(regs::BEST_ROUND, dst, probe.round as u64)?;
        }

        // Flood dedup: forward each (dst, round) at most once.
        let seen = ctx.read_register(regs::SEEN_ROUND, dst)?;
        if probe.round as u64 <= seen {
            return Ok(vec![]);
        }
        ctx.write_register(regs::SEEN_ROUND, dst, probe.round as u64)?;

        let mut out = Vec::new();
        for &port in &self.config.data_ports {
            if port == ingress {
                continue;
            }
            let fwd = Probe {
                util: candidate.min(255) as u8,
                ..probe
            };
            out.push((port, fwd.encode()));
        }
        Ok(out)
    }

    fn on_data(
        &mut self,
        ctx: &mut PacketContext<'_>,
        _ingress: PortId,
        bytes: &[u8],
    ) -> Result<Vec<(PortId, Vec<u8>)>, ChassisError> {
        let Some(frame) = DataFrame::decode(bytes) else {
            return Ok(vec![]);
        };
        if frame.dst > self.config.max_dst {
            return Ok(vec![]);
        }
        let dst = frame.dst as u32;
        if ctx.switch_id().value() == frame.dst {
            ctx.update_register(regs::DELIVERED, dst, |v| v + 1)?;
            return Ok(vec![]);
        }
        let best_util = ctx.read_register(regs::BEST_UTIL, dst)?;
        if best_util == UTIL_UNKNOWN {
            return Ok(vec![]); // no known path; drop
        }
        let port = ctx.read_register(regs::BEST_HOP, dst)? as u8;
        ctx.update_register(regs::TX_COUNT, port as u32, |v| v + 1)?;
        Ok(vec![(PortId::new(port), bytes.to_vec())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4auth_dataplane::chassis::ChassisConfig;
    use p4auth_dataplane::packet::Packet;
    use p4auth_wire::ids::SwitchId;

    fn chassis_with_app() -> (Chassis, HulaApp) {
        let mut app = HulaApp::new(HulaConfig::new(8, 3));
        let mut chassis = Chassis::new(ChassisConfig::tofino(SwitchId::new(1), 4));
        app.setup(&mut chassis);
        (chassis, app)
    }

    fn run_probe(
        chassis: &mut Chassis,
        app: &mut HulaApp,
        ingress: PortId,
        probe: Probe,
    ) -> Vec<(PortId, Vec<u8>)> {
        let pkt = Packet::from_bytes(ingress, probe.encode());
        let mut outs = Vec::new();
        chassis
            .process(0, &pkt, |ctx, _| {
                outs = app.on_control(ctx, ingress, &probe.encode())?;
                Ok(vec![])
            })
            .unwrap();
        outs
    }

    fn run_data(
        chassis: &mut Chassis,
        app: &mut HulaApp,
        frame: DataFrame,
    ) -> Vec<(PortId, Vec<u8>)> {
        let bytes = frame.encode();
        let pkt = Packet::from_bytes(PortId::new(1), bytes.clone());
        let mut outs = Vec::new();
        chassis
            .process(0, &pkt, |ctx, _| {
                outs = app.on_data(ctx, PortId::new(1), &bytes)?;
                Ok(vec![])
            })
            .unwrap();
        outs
    }

    #[test]
    fn probe_roundtrip() {
        let p = Probe {
            dst: 5,
            round: 9,
            util: 42,
        };
        assert_eq!(Probe::decode(&p.encode()), Some(p));
        assert_eq!(Probe::decode(&[1, 2]), None);
    }

    #[test]
    fn data_frame_roundtrip() {
        let f = DataFrame { dst: 3, flow: 77 };
        assert_eq!(DataFrame::decode(&f.encode()), Some(f));
        assert_eq!(DataFrame::decode(&[0x00; 7]), None);
    }

    #[test]
    fn first_probe_installs_best_hop_and_floods() {
        let (mut chassis, mut app) = chassis_with_app();
        let outs = run_probe(
            &mut chassis,
            &mut app,
            PortId::new(1),
            Probe {
                dst: 5,
                round: 1,
                util: 20,
            },
        );
        // Flooded to data ports 2 and 3 (not back to 1).
        assert_eq!(outs.len(), 2);
        assert!(outs.iter().all(|(p, _)| *p != PortId::new(1)));
        assert_eq!(
            chassis.register(regs::BEST_HOP).unwrap().read(5).unwrap(),
            1
        );
        assert_eq!(
            chassis.register(regs::BEST_UTIL).unwrap().read(5).unwrap(),
            20
        );
        // Forwarded probes carry the (possibly raised) util.
        let fwd = Probe::decode(&outs[0].1).unwrap();
        assert_eq!(fwd.util, 20);
        assert_eq!(fwd.round, 1);
    }

    #[test]
    fn better_probe_wins_worse_loses() {
        let (mut chassis, mut app) = chassis_with_app();
        run_probe(
            &mut chassis,
            &mut app,
            PortId::new(1),
            Probe {
                dst: 5,
                round: 1,
                util: 30,
            },
        );
        // Worse util via port 2: best unchanged.
        run_probe(
            &mut chassis,
            &mut app,
            PortId::new(2),
            Probe {
                dst: 5,
                round: 1,
                util: 50,
            },
        );
        assert_eq!(
            chassis.register(regs::BEST_HOP).unwrap().read(5).unwrap(),
            1
        );
        // Better util via port 3: takes over.
        run_probe(
            &mut chassis,
            &mut app,
            PortId::new(3),
            Probe {
                dst: 5,
                round: 1,
                util: 10,
            },
        );
        assert_eq!(
            chassis.register(regs::BEST_HOP).unwrap().read(5).unwrap(),
            3
        );
        assert_eq!(
            chassis.register(regs::BEST_UTIL).unwrap().read(5).unwrap(),
            10
        );
    }

    #[test]
    fn current_best_hop_refreshes_even_if_util_rises() {
        let (mut chassis, mut app) = chassis_with_app();
        run_probe(
            &mut chassis,
            &mut app,
            PortId::new(1),
            Probe {
                dst: 5,
                round: 1,
                util: 10,
            },
        );
        run_probe(
            &mut chassis,
            &mut app,
            PortId::new(1),
            Probe {
                dst: 5,
                round: 2,
                util: 60,
            },
        );
        assert_eq!(
            chassis.register(regs::BEST_UTIL).unwrap().read(5).unwrap(),
            60
        );
        // Now port 2 with util 30 beats the refreshed 60.
        run_probe(
            &mut chassis,
            &mut app,
            PortId::new(2),
            Probe {
                dst: 5,
                round: 2,
                util: 30,
            },
        );
        assert_eq!(
            chassis.register(regs::BEST_HOP).unwrap().read(5).unwrap(),
            2
        );
    }

    #[test]
    fn local_utilization_raises_advertised_util() {
        let (mut chassis, mut app) = chassis_with_app();
        chassis
            .register_mut(regs::LOCAL_UTIL)
            .unwrap()
            .write(1, 70)
            .unwrap();
        let outs = run_probe(
            &mut chassis,
            &mut app,
            PortId::new(1),
            Probe {
                dst: 5,
                round: 1,
                util: 20,
            },
        );
        assert_eq!(
            chassis.register(regs::BEST_UTIL).unwrap().read(5).unwrap(),
            70
        );
        assert_eq!(Probe::decode(&outs[0].1).unwrap().util, 70);
    }

    #[test]
    fn flood_dedup_by_round() {
        let (mut chassis, mut app) = chassis_with_app();
        let outs1 = run_probe(
            &mut chassis,
            &mut app,
            PortId::new(1),
            Probe {
                dst: 5,
                round: 1,
                util: 20,
            },
        );
        assert_eq!(outs1.len(), 2);
        // Same round via another port: state may update, but no re-flood.
        let outs2 = run_probe(
            &mut chassis,
            &mut app,
            PortId::new(2),
            Probe {
                dst: 5,
                round: 1,
                util: 10,
            },
        );
        assert!(outs2.is_empty());
        // Next round floods again.
        let outs3 = run_probe(
            &mut chassis,
            &mut app,
            PortId::new(1),
            Probe {
                dst: 5,
                round: 2,
                util: 20,
            },
        );
        assert_eq!(outs3.len(), 2);
    }

    #[test]
    fn stale_entries_are_replaceable() {
        let (mut chassis, mut app) = chassis_with_app();
        run_probe(
            &mut chassis,
            &mut app,
            PortId::new(1),
            Probe {
                dst: 5,
                round: 1,
                util: 10,
            },
        );
        // Rounds pass without refresh (e.g. P4Auth dropping tampered
        // probes on port 1); a worse-util probe on port 2 takes over
        // because the entry aged out.
        run_probe(
            &mut chassis,
            &mut app,
            PortId::new(2),
            Probe {
                dst: 5,
                round: 6,
                util: 40,
            },
        );
        assert_eq!(
            chassis.register(regs::BEST_HOP).unwrap().read(5).unwrap(),
            2
        );
    }

    #[test]
    fn data_follows_best_hop_and_counts() {
        let (mut chassis, mut app) = chassis_with_app();
        run_probe(
            &mut chassis,
            &mut app,
            PortId::new(3),
            Probe {
                dst: 5,
                round: 1,
                util: 5,
            },
        );
        let outs = run_data(&mut chassis, &mut app, DataFrame { dst: 5, flow: 1 });
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, PortId::new(3));
        assert_eq!(
            chassis.register(regs::TX_COUNT).unwrap().read(3).unwrap(),
            1
        );
    }

    #[test]
    fn data_with_no_known_path_dropped() {
        let (mut chassis, mut app) = chassis_with_app();
        let outs = run_data(&mut chassis, &mut app, DataFrame { dst: 7, flow: 1 });
        assert!(outs.is_empty());
    }

    #[test]
    fn data_delivered_at_destination() {
        let (mut chassis, mut app) = chassis_with_app();
        // This chassis is switch 1.
        let outs = run_data(&mut chassis, &mut app, DataFrame { dst: 1, flow: 9 });
        assert!(outs.is_empty());
        assert_eq!(
            chassis.register(regs::DELIVERED).unwrap().read(1).unwrap(),
            1
        );
    }

    #[test]
    fn out_of_range_dst_ignored() {
        let (mut chassis, mut app) = chassis_with_app();
        let outs = run_probe(
            &mut chassis,
            &mut app,
            PortId::new(1),
            Probe {
                dst: 999,
                round: 1,
                util: 1,
            },
        );
        assert!(outs.is_empty());
    }
}
