//! Host aggregation: millions of modelled users at near-constant per-user
//! cost (`repro -- users` and `BENCH_users.json`).
//!
//! The scale workload ([`crate::scaleload`]) registers one [`SimNode`] per
//! host, which caps a run at tens of thousands of modelled endpoints: every
//! host costs a boxed node, a timer chain and per-event dispatch. This
//! module replaces each access-port host with one [`AggregateHostNode`]
//! modelling *N* edge users behind that port. Per-user flowlet state lives
//! in flat structure-of-arrays columns (RNG word, next-due time, remaining
//! frames, sequence counter, burst counter, trace cursor, modelled replay
//! window, pending-frame credits — ~50 bytes/user), so a million users is
//! ~50 MB of `Vec`s rather than a million boxed nodes.
//!
//! Every user stream is deterministic from `(seed, global user index)`
//! alone via [`workloads::flows::user_seed`], independent of aggregate
//! boundaries and emission order. Two execution modes share the same
//! per-user state machine:
//!
//! * [`AggregateMode::Exact`] keeps one outstanding timer per aggregate at
//!   the earliest per-user due time and emits each frame at exactly its
//!   due instant. With one user per aggregate this reproduces an
//!   individual [`crate::scaleload`] host *bit for bit* — same RNG draws,
//!   same timer chain, same frame bytes — which is the correctness anchor
//!   the tests pin. Cost: one timer event per distinct due instant and an
//!   `O(users)` scan per firing.
//! * [`AggregateMode::Amortized`] wakes once per window and batch-emits
//!   every frame due inside it with per-frame processing offsets, so each
//!   frame still *arrives* at exactly the instant the exact mode would
//!   deliver it (host links are latency-only). Cost: `O(users)` per
//!   window — the near-constant per-user cost the bench measures. The two
//!   modes may interleave same-instant events differently, so `Amortized`
//!   is deterministic but not event-count-identical to `Exact`.
//!
//! The fabric is untouched: aggregates send the same fig19 read/write mix
//! through the same [`crate::scaleload`] forwarders, so everything
//! upstream of the access port is oblivious to how many users an
//! aggregate models.
//!
//! [`SimNode`]: p4auth_netsim::SimNode

use crate::scaleload::{
    fabric_forwarder, Engine, ScaleConfig, READ_FRAME_BYTES, SEND_TIMER, WRITE_FRAME_BYTES,
};
use p4auth_attacks::digest_flood;
use p4auth_netsim::fattree::FatTree;
use p4auth_netsim::fault::FaultPlan;
use p4auth_netsim::frame::FrameBytes;
use p4auth_netsim::shard::{ShardPlan, ShardedSimulator};
use p4auth_netsim::sim::{Outbox, SimNode, SimStats, Simulator};
use p4auth_netsim::time::SimTime;
use p4auth_primitives::rng::SplitMix64;
use p4auth_telemetry::Registry;
use p4auth_wire::ids::{PortId, SwitchId};
use p4auth_workloads::flows::{splitmix_next, user_seed, ArrivalMix};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How an aggregate turns per-user due times into simulator events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateMode {
    /// One timer at the earliest due time; frames are emitted at exactly
    /// their due instants. Bit-identical to individual hosts at one user
    /// per aggregate; `O(users)` per frame event.
    Exact,
    /// One timer per window; frames due inside the window are batch-sent
    /// with per-frame processing offsets so arrival times match `Exact`.
    Amortized {
        /// Window length in ns of simulated time.
        window_ns: u64,
    },
}

/// One compromised user inside an aggregate: instead of the fig19 mix it
/// emits forged control-plane ACKs claiming to come from `victim` (the
/// digest-flood of §VII), paced at `gap_ns`. The frames are deterministic
/// from the user's own seed, so the attack is part of the reproducible
/// run, not a side channel.
#[derive(Clone, Copy, Debug)]
pub struct CompromisedUser {
    /// Global index of the compromised user.
    pub user: u64,
    /// Switch whose identity the forged frames claim.
    pub victim: SwitchId,
    /// Number of forged frames the user emits.
    pub frames: u32,
    /// Fixed gap between forged frames in ns.
    pub gap_ns: u64,
}

/// One user-scale configuration.
#[derive(Clone, Debug)]
pub struct UserScaleConfig {
    /// Fat-tree arity (even, ≤ 16).
    pub k: u16,
    /// Uniform one-way link latency in ns.
    pub latency_ns: u64,
    /// Per-hop switch processing delay in ns.
    pub proc_ns: u64,
    /// Total modelled users, spread across the fat tree's host slots
    /// (first `users % slots` slots get the extra user).
    pub users: u64,
    /// Frames each user transmits.
    pub frames_per_user: u32,
    /// Per-user arrival process.
    pub mix: ArrivalMix,
    /// Traffic seed (destinations, flow labels, arrival draws).
    pub seed: u64,
    /// Timer strategy.
    pub mode: AggregateMode,
    /// Per-user frame budget per amortized window (uplink backpressure:
    /// a user whose window emission hits this cap has the rest of its
    /// stream deferred to the next window). Ignored by `Exact`.
    pub credits_per_window: u16,
    /// Optional compromised user (see [`CompromisedUser`]).
    pub compromised: Option<CompromisedUser>,
    /// Optional deterministic fault schedule: link churn installed as
    /// first-class sim events on every engine, plus a boot-storm stagger
    /// applied to the aggregates' first timers.
    pub faults: Option<FaultPlan>,
}

impl UserScaleConfig {
    /// The standard user-scale configuration for arity `k`: the scale
    /// workload's fabric timings with a heavy-tailed elephant/mice
    /// arrival mix and 10 µs amortized windows.
    pub fn for_k(k: u16, users: u64, frames_per_user: u32) -> Self {
        UserScaleConfig {
            k,
            latency_ns: 1_500,
            proc_ns: 500,
            users,
            frames_per_user,
            mix: ArrivalMix::HeavyTailed(Default::default()),
            seed: 0x05e7_5ca1 ^ k as u64,
            mode: AggregateMode::Amortized { window_ns: 10_000 },
            credits_per_window: 64,
            compromised: None,
            faults: None,
        }
    }

    /// The exact twin of a [`ScaleConfig`]: one user per host slot, the
    /// same seed, the same fixed send interval, exact timers. A run under
    /// this configuration is bit-identical to [`crate::scaleload`]'s
    /// individual-host run of `scale` — the equivalence anchor.
    pub fn mirror_scale(scale: &ScaleConfig) -> Self {
        UserScaleConfig {
            k: scale.k,
            latency_ns: scale.latency_ns,
            proc_ns: scale.proc_ns,
            users: FatTree::new(scale.k).host_count() as u64,
            frames_per_user: scale.frames_per_host,
            mix: ArrivalMix::Uniform {
                gap_ns: scale.interval_ns,
            },
            seed: scale.seed,
            mode: AggregateMode::Exact,
            credits_per_window: u16::MAX,
            compromised: None,
            faults: None,
        }
    }
}

/// Per-user boot delay: the same staggered start individual hosts use
/// ([`boot_delay`]), extended to global user indices beyond `u16`.
fn user_boot(g: u64) -> u64 {
    1 + (g % 97) * 11
}

/// The forged-frame queue of a compromised user (precomputed at node
/// construction so emission stays allocation-free).
struct CompromisedState {
    local: usize,
    gap_ns: u64,
    frames: VecDeque<Vec<u8>>,
}

/// N modelled users behind one access port, as a single [`SimNode`].
///
/// All per-user state is structure-of-arrays; the node owns no per-user
/// allocations beyond the flat columns (plus the forged-frame queue of an
/// optional compromised user).
pub struct AggregateHostNode {
    slot: u16,
    base_user: u64,
    mix: ArrivalMix,
    mode: AggregateMode,
    ft: FatTree,
    credit_max: u16,
    // --- flat per-user columns -------------------------------------------
    rng: Vec<u64>,
    next_due: Vec<u64>,
    remaining: Vec<u32>,
    seq: Vec<u32>,
    burst_left: Vec<u32>,
    trace_pos: Vec<u32>,
    replay_win: Vec<u64>,
    credits: Vec<u16>,
    // ---------------------------------------------------------------------
    active: u64,
    arrivals: Arc<AtomicU64>,
    sent_total: Arc<AtomicU64>,
    compromised: Option<CompromisedState>,
}

impl AggregateHostNode {
    /// Builds the aggregate for host slot `slot`, modelling `users` users
    /// with global indices `base_user..base_user + users`. `arrivals` and
    /// `sent_total` are shared counters the runner reads after the run
    /// (atomics so the same node type serves the sharded engine).
    pub fn new(
        cfg: &UserScaleConfig,
        ft: FatTree,
        slot: u16,
        base_user: u64,
        users: u64,
        arrivals: Arc<AtomicU64>,
        sent_total: Arc<AtomicU64>,
    ) -> Self {
        let n = users as usize;
        let mut rng = Vec::with_capacity(n);
        let mut next_due = Vec::with_capacity(n);
        let mut trace_pos = Vec::with_capacity(n);
        let mut burst_left = Vec::with_capacity(n);
        for u in 0..users {
            let g = base_user + u;
            let (mut word, mut pos) = cfg.mix.init_state(cfg.seed, g);
            // First frame at boot + the mix's initial offset: uniform
            // users start at boot (bit-identity with individual hosts),
            // heavy-tailed users idle before their first burst — without
            // the offset a million users' first frames would all land
            // inside the ~1.1 µs boot stagger and the event queue would
            // hold O(users) in-flight frames at once.
            let mut burst = 0u32;
            let first = user_boot(g) + cfg.mix.initial_gap_ns(&mut word, &mut burst, &mut pos);
            rng.push(word);
            trace_pos.push(pos);
            burst_left.push(burst);
            next_due.push(first);
        }
        let mut remaining = vec![cfg.frames_per_user; n];
        let compromised = cfg.compromised.as_ref().and_then(|c| {
            if c.user < base_user || c.user >= base_user + users {
                return None;
            }
            let local = (c.user - base_user) as usize;
            remaining[local] = c.frames;
            let mut flood_rng = SplitMix64::new(user_seed(cfg.seed, c.user) ^ 0xf100d);
            Some(CompromisedState {
                local,
                gap_ns: c.gap_ns,
                frames: digest_flood::forged_acks(c.frames, c.victim, 40_000, &mut flood_rng)
                    .into(),
            })
        });
        let active = remaining.iter().filter(|&&r| r > 0).count() as u64;
        AggregateHostNode {
            slot,
            base_user,
            mix: cfg.mix.clone(),
            mode: cfg.mode,
            ft,
            credit_max: cfg.credits_per_window.max(1),
            rng,
            next_due,
            remaining,
            seq: vec![0; n],
            burst_left,
            trace_pos,
            replay_win: vec![0; n],
            credits: vec![cfg.credits_per_window.max(1); n],
            active,
            arrivals,
            sent_total,
            compromised,
        }
    }

    /// Users this aggregate models.
    pub fn users(&self) -> u64 {
        self.rng.len() as u64
    }

    /// Global index of this aggregate's first user (user `u` of the
    /// aggregate has global index `base_user() + u`).
    pub fn base_user(&self) -> u64 {
        self.base_user
    }

    /// Delay (from sim start) of the first timer the runner must arm, or
    /// `None` when no user will ever transmit. `Exact` wakes at the
    /// earliest user's boot; `Amortized` wakes immediately and sweeps.
    pub fn first_due_ns(&self) -> Option<u64> {
        if self.active == 0 {
            return None;
        }
        match self.mode {
            AggregateMode::Exact => self.min_due(),
            AggregateMode::Amortized { .. } => Some(0),
        }
    }

    /// Total set bits across the modelled per-user replay windows (tests
    /// use this to pin that delivery attribution really updates per-user
    /// flowlet state).
    pub fn replay_window_occupancy(&self) -> u64 {
        self.replay_win.iter().map(|w| w.count_ones() as u64).sum()
    }

    fn min_due(&self) -> Option<u64> {
        self.next_due
            .iter()
            .zip(&self.remaining)
            .filter(|&(_, &r)| r > 0)
            .map(|(&d, _)| d)
            .min()
    }

    /// Builds user `u`'s next frame: the fig19 2-reads-1-write register mix
    /// with the destination and flow label drawn from the user's own RNG
    /// stream — the same draws, in the same order, as an individual
    /// [`crate::scaleload`] host. A compromised user pops its next forged
    /// control frame instead.
    fn build_frame(&mut self, u: usize) -> FrameBytes {
        if let Some(c) = &mut self.compromised {
            if c.local == u {
                return FrameBytes::from(c.frames.pop_front().unwrap_or_default());
            }
        }
        let slots = self.ft.host_count();
        let mut dst = (splitmix_next(&mut self.rng[u]) % (slots as u64 - 1)) as u16;
        if dst >= self.slot {
            dst += 1;
        }
        let len = if self.seq[u] % 3 == 2 {
            WRITE_FRAME_BYTES
        } else {
            READ_FRAME_BYTES
        };
        self.seq[u] += 1;
        let mut buf = [0u8; WRITE_FRAME_BYTES];
        buf[..2].copy_from_slice(&self.ft.host(dst).value().to_le_bytes());
        buf[2] = (splitmix_next(&mut self.rng[u]) & 0xff) as u8;
        FrameBytes::from_slice(&buf[..len])
    }

    /// Consumes one frame of user `u`'s budget and advances its due time
    /// from `from_ns` (the emitted frame's due instant) by the user's next
    /// arrival gap.
    fn advance(&mut self, u: usize, from_ns: u64) {
        self.remaining[u] -= 1;
        if self.remaining[u] == 0 {
            self.active -= 1;
            return;
        }
        let gap = match &self.compromised {
            Some(c) if c.local == u => c.gap_ns.max(1),
            _ => self.mix.next_gap(
                &mut self.rng[u],
                &mut self.burst_left[u],
                &mut self.trace_pos[u],
            ),
        };
        self.next_due[u] = from_ns + gap;
    }

    fn on_timer_exact(&mut self, now_ns: u64, out: &mut Outbox) {
        let n = self.rng.len();
        let mut sent = 0u64;
        for u in 0..n {
            if self.remaining[u] > 0 && self.next_due[u] <= now_ns {
                let frame = self.build_frame(u);
                out.send(PortId::new(1), frame);
                sent += 1;
                self.advance(u, now_ns);
            }
        }
        self.sent_total.fetch_add(sent, Ordering::Relaxed);
        if let Some(min) = self.min_due() {
            out.set_timer(SEND_TIMER, min - now_ns);
        }
    }

    fn on_timer_amortized(&mut self, now_ns: u64, window_ns: u64, out: &mut Outbox) {
        let window_end = now_ns + window_ns.max(1);
        let n = self.rng.len();
        let mut batch: Vec<(FrameBytes, u64)> = Vec::new();
        for u in 0..n {
            if self.remaining[u] == 0 {
                continue;
            }
            self.credits[u] = self.credit_max;
            while self.remaining[u] > 0 && self.next_due[u] < window_end {
                if self.credits[u] == 0 {
                    // Uplink backpressure: the rest of this user's stream
                    // is deferred to the next window.
                    self.next_due[u] = window_end;
                    break;
                }
                self.credits[u] -= 1;
                let due = self.next_due[u];
                // A boot-storm wave starts the aggregate after some users'
                // first arrivals; that backlog drains at boot (delay 0) —
                // the burst a real staggered boot produces.
                let frame = self.build_frame(u);
                batch.push((frame, due.saturating_sub(now_ns)));
                self.advance(u, due);
            }
        }
        self.sent_total
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        out.send_batch(PortId::new(1), batch);
        if self.active > 0 {
            out.set_timer(SEND_TIMER, window_ns.max(1));
        }
    }
}

impl SimNode for AggregateHostNode {
    fn on_frame(&mut self, _now: SimTime, _ingress: PortId, payload: FrameBytes, _: &mut Outbox) {
        self.arrivals.fetch_add(1, Ordering::Relaxed);
        // Modelled per-user anti-replay window: attribute the delivery by
        // flow label and slide that user's 64-frame bitmap. (Delivered
        // scale frames carry no user field — attribution is a model, and
        // documented as such in DESIGN.md §4f.)
        let n = self.replay_win.len();
        if n > 0 && payload.len() >= 3 {
            let u = payload[2] as usize % n;
            self.replay_win[u] = (self.replay_win[u] << 1) | 1;
        }
    }

    fn on_timer(&mut self, now: SimTime, timer_id: u64, out: &mut Outbox) {
        if timer_id != SEND_TIMER {
            return;
        }
        match self.mode {
            AggregateMode::Exact => self.on_timer_exact(now.as_ns(), out),
            AggregateMode::Amortized { window_ns } => {
                self.on_timer_amortized(now.as_ns(), window_ns, out)
            }
        }
    }
}

/// Result of one user-scale run.
#[derive(Clone, Copy, Debug)]
pub struct UserScaleRun {
    /// Engine the run used.
    pub engine: Engine,
    /// Total modelled users.
    pub users: u64,
    /// Aggregate nodes (one per host slot).
    pub aggregates: u16,
    /// Events processed (pops).
    pub events: u64,
    /// Frames the aggregates transmitted.
    pub frames_sent: u64,
    /// Frames that reached a destination aggregate.
    pub frames_delivered: u64,
    /// Final simulated clock in ns.
    pub sim_ns: u64,
    /// Wall-clock duration of the run in ns.
    pub wall_ns: u64,
    /// The simulator's drop taxonomy and event tallies (deterministic;
    /// identical across engines). `frames_sent == frames_delivered +
    /// stats.frames_undeliverable + stats.frames_tapped_dropped` accounts
    /// for every frame a completed run injected — no silent loss.
    pub stats: SimStats,
}

impl UserScaleRun {
    /// The deterministic portion of the run — identical across schedulers
    /// and shard counts for a given mode.
    pub fn fingerprint(&self) -> (u64, u64, u64, u64) {
        (
            self.events,
            self.frames_sent,
            self.frames_delivered,
            self.sim_ns,
        )
    }

    /// Simulator throughput: events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }

    /// Wall-clock cost per modelled user in ns — the number the bench
    /// tracks for near-constancy as `users` grows.
    pub fn ns_per_user(&self) -> f64 {
        self.wall_ns as f64 / self.users.max(1) as f64
    }

    /// Per-user cost normalized by simulated duration: ns of wall clock
    /// per modelled user per second of simulated time.
    pub fn ns_per_user_per_sim_sec(&self) -> f64 {
        self.ns_per_user() / (self.sim_ns.max(1) as f64 / 1e9)
    }
}

/// Distributes `users` over `slots` host slots: slot `s` models
/// `ceil` users when `s < users % slots`, else `floor`.
fn slot_span(users: u64, slots: u16, s: u16) -> (u64, u64) {
    let q = users / slots as u64;
    let rem = users % slots as u64;
    let s64 = s as u64;
    if s64 < rem {
        (s64 * (q + 1), q + 1)
    } else {
        (rem * (q + 1) + (s64 - rem) * q, q)
    }
}

/// Runs the user-scale workload on the given engine. With a registry the
/// run also publishes per-aggregate `userscale_users` / `userscale_frames_sent`
/// gauges (labelled `agg<slot>`) after completion, plus the simulator's own
/// instrumentation during it.
pub fn run_users_engine(
    cfg: &UserScaleConfig,
    engine: Engine,
    registry: Option<Arc<Registry>>,
) -> UserScaleRun {
    let ft = FatTree::new(cfg.k);
    let slots = ft.host_count();
    let arrivals = Arc::new(AtomicU64::new(0));
    let sent: Vec<Arc<AtomicU64>> = (0..slots).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let spans: Vec<(u64, u64)> = (0..slots).map(|s| slot_span(cfg.users, slots, s)).collect();
    let make_agg = |s: u16| {
        let (base, n) = spans[s as usize];
        AggregateHostNode::new(
            cfg,
            ft,
            s,
            base,
            n,
            arrivals.clone(),
            sent[s as usize].clone(),
        )
    };

    // Boot-storm stagger: wave offsets added to each aggregate's first
    // timer, identically on every engine.
    let storm = cfg.faults.as_ref().and_then(|p| p.boot_storm());
    let boot_at = |s: u16, first: u64| first + storm.map_or(0, |st| st.offset_for(s));

    let (events, sim_ns, wall_ns, stats) = match engine {
        Engine::Sequential(kind) => {
            let mut sim = Simulator::with_scheduler(ft.build(cfg.latency_ns), kind);
            if let Some(r) = &registry {
                sim.set_telemetry(r.clone());
            }
            for id in 1..=ft.switch_count() {
                let id = SwitchId::new(id);
                sim.register_node(id, fabric_forwarder(ft, id, cfg.proc_ns));
            }
            for s in 0..slots {
                let agg = make_agg(s);
                let first = agg.first_due_ns();
                sim.register_node(ft.host(s), Box::new(agg));
                if let Some(at) = first {
                    sim.schedule_timer(ft.host(s), SEND_TIMER, boot_at(s, at));
                }
            }
            if let Some(plan) = &cfg.faults {
                sim.install_fault_plan(plan);
            }
            let start = std::time::Instant::now();
            let events = sim.run_to_completion();
            (
                events,
                sim.now().as_ns(),
                start.elapsed().as_nanos() as u64,
                sim.stats(),
            )
        }
        Engine::Sharded { shards } => {
            let topo = ft.build(cfg.latency_ns);
            let plan = ShardPlan::pod_aligned(&topo, shards);
            let mut sim = ShardedSimulator::new(topo, plan);
            if let Some(r) = &registry {
                sim.set_telemetry(r.clone());
            }
            for id in 1..=ft.switch_count() {
                let id = SwitchId::new(id);
                sim.register_node(id, fabric_forwarder(ft, id, cfg.proc_ns));
            }
            for s in 0..slots {
                let agg = make_agg(s);
                let first = agg.first_due_ns();
                sim.register_node(ft.host(s), Box::new(agg));
                if let Some(at) = first {
                    sim.schedule_timer(ft.host(s), SEND_TIMER, boot_at(s, at));
                }
            }
            if let Some(plan) = &cfg.faults {
                sim.set_fault_plan(plan.clone());
            }
            let start = std::time::Instant::now();
            let report = sim.run();
            (
                report.events,
                report.now.as_ns(),
                start.elapsed().as_nanos() as u64,
                report.stats,
            )
        }
    };

    if let Some(r) = &registry {
        for s in 0..slots {
            let label = format!("agg{s}");
            r.set_gauge_with("userscale_users", &label, spans[s as usize].1 as i64);
            r.set_gauge_with(
                "userscale_frames_sent",
                &label,
                sent[s as usize].load(Ordering::Relaxed) as i64,
            );
        }
    }

    UserScaleRun {
        engine,
        users: cfg.users,
        aggregates: slots,
        events,
        frames_sent: sent.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
        frames_delivered: arrivals.load(Ordering::Relaxed),
        sim_ns,
        wall_ns,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaleload::{boot_delay, frame_dst, run_scale_engine};
    use p4auth_netsim::sched::SchedulerKind;

    #[test]
    fn user_boot_extends_host_boot_delay() {
        for h in [0u16, 1, 13, 96, 97, 1024, u16::MAX] {
            assert_eq!(user_boot(h as u64), boot_delay(h));
        }
    }

    #[test]
    fn emitted_frames_decode_with_the_scale_header_layout() {
        let cfg = UserScaleConfig::for_k(4, 16, 1);
        let ft = FatTree::new(4);
        let mut agg = AggregateHostNode::new(
            &cfg,
            ft,
            3,
            3,
            1,
            Arc::new(AtomicU64::new(0)),
            Arc::new(AtomicU64::new(0)),
        );
        let frame = agg.build_frame(0);
        let dst = frame_dst(&frame);
        assert_ne!(dst, ft.host(3), "a user never sends to its own slot");
        assert!((0..ft.host_count()).any(|h| ft.host(h) == dst));
        assert_eq!(frame.len(), READ_FRAME_BYTES);
    }

    #[test]
    fn aggregate_of_one_is_bit_identical_to_individual_hosts() {
        let scale_cfg = ScaleConfig::for_k(4, 20);
        let users_cfg = UserScaleConfig::mirror_scale(&scale_cfg);
        assert_eq!(users_cfg.users, 16);

        let scale_reg = Arc::new(Registry::new());
        let users_reg = Arc::new(Registry::new());
        let scale = run_scale_engine(
            scale_cfg,
            Engine::Sequential(SchedulerKind::Calendar),
            Some(scale_reg.clone()),
        );
        let users = run_users_engine(
            &users_cfg,
            Engine::Sequential(SchedulerKind::Calendar),
            Some(users_reg.clone()),
        );

        // Same events, same deliveries, same final clock.
        assert_eq!(
            (users.events, users.frames_delivered, users.sim_ns),
            scale.fingerprint(),
        );
        assert_eq!(users.frames_sent, 16 * 20);

        // Same simulator-level telemetry, frame for frame and event for
        // event; only the userscale_* gauges (absent from scaleload) may
        // differ.
        let mut users_snap = users_reg.snapshot();
        users_snap
            .gauges
            .retain(|g| !g.name.starts_with("userscale_"));
        assert_eq!(users_snap.to_json(), scale_reg.snapshot().to_json());
    }

    #[test]
    fn amortized_mode_delivers_the_same_frames() {
        let scale_cfg = ScaleConfig::for_k(4, 12);
        let exact_cfg = UserScaleConfig::mirror_scale(&scale_cfg);
        let mut amortized_cfg = exact_cfg.clone();
        amortized_cfg.mode = AggregateMode::Amortized { window_ns: 1_000 };

        let exact = run_users_engine(
            &exact_cfg,
            Engine::Sequential(SchedulerKind::Calendar),
            None,
        );
        let amortized = run_users_engine(
            &amortized_cfg,
            Engine::Sequential(SchedulerKind::Calendar),
            None,
        );
        // Frames still *arrive* at their exact-mode instants (send_delayed
        // preserves due times), so deliveries and the final clock agree;
        // only the timer/event accounting differs.
        assert_eq!(amortized.frames_sent, exact.frames_sent);
        assert_eq!(amortized.frames_delivered, exact.frames_delivered);
        assert_eq!(amortized.sim_ns, exact.sim_ns);
        assert!(
            amortized.events < exact.events,
            "amortization must shed events"
        );
    }

    #[test]
    fn amortized_runs_are_deterministic_across_schedulers() {
        let cfg = UserScaleConfig::for_k(4, 1_000, 3);
        let heap = run_users_engine(&cfg, Engine::Sequential(SchedulerKind::Heap), None);
        let cal = run_users_engine(&cfg, Engine::Sequential(SchedulerKind::Calendar), None);
        assert_eq!(heap.fingerprint(), cal.fingerprint());
        assert_eq!(cal.frames_sent, 3_000);
        assert_eq!(cal.frames_delivered, 3_000);
        assert!(cal.users > cal.aggregates as u64, "users share aggregates");
    }

    #[test]
    fn credits_throttle_but_never_lose_frames() {
        let mut cfg = UserScaleConfig::for_k(4, 64, 8);
        cfg.mix = ArrivalMix::Uniform { gap_ns: 10 };
        cfg.mode = AggregateMode::Amortized { window_ns: 100 };
        let free = run_users_engine(&cfg, Engine::Sequential(SchedulerKind::Calendar), None);
        cfg.credits_per_window = 2;
        let throttled = run_users_engine(&cfg, Engine::Sequential(SchedulerKind::Calendar), None);
        assert_eq!(free.frames_sent, 64 * 8);
        assert_eq!(throttled.frames_sent, 64 * 8);
        assert_eq!(throttled.frames_delivered, 64 * 8);
        // Backpressure stretches the schedule out in sim time.
        assert!(throttled.sim_ns > free.sim_ns);
    }

    #[test]
    fn user_streams_ignore_aggregate_boundaries() {
        // The same 40 users run as 16 aggregates (fat-tree slots) and the
        // per-slot frame counts depend only on the ceil/floor split, while
        // totals are invariant across modes.
        let cfg = UserScaleConfig::for_k(4, 40, 4);
        let run = run_users_engine(&cfg, Engine::Sequential(SchedulerKind::Calendar), None);
        assert_eq!(run.frames_sent, 160);
        assert_eq!(run.aggregates, 16);
        // 40 users over 16 slots: 8 slots of 3, 8 slots of 2.
        let spans: Vec<u64> = (0..16).map(|s| slot_span(40, 16, s).1).collect();
        assert_eq!(spans.iter().sum::<u64>(), 40);
        assert_eq!(spans.iter().filter(|&&n| n == 3).count(), 8);
        // Spans tile the user range contiguously.
        let mut next = 0;
        for s in 0..16 {
            let (base, n) = slot_span(40, 16, s);
            assert_eq!(base, next);
            next = base + n;
        }
        assert_eq!(next, 40);
    }

    /// The §VII anchor: a digest flood sourced by ONE compromised user
    /// inside an aggregate — relayed onto the C-DP channel by the victim
    /// switch's compromised OS (§II-A) — still trips the controller's
    /// adaptive defence: one mitigation, the victim's local key rolls,
    /// and the detection-to-mitigation latency lands in telemetry.
    #[test]
    fn in_aggregate_digest_flood_still_trips_the_defence() {
        use crate::harness::Network;
        use p4auth_controller::{ControllerConfig, ControllerEvent, DefenceConfig};
        use p4auth_netsim::topology::Topology;

        let registry = Arc::new(Registry::with_event_capacity(2048));
        let mut net = Network::build(
            Topology::fat_tree_with_controller(4, 1_000, 200_000),
            ControllerConfig::default(),
            0xa66,
            |_| None,
            |_, c| c,
        );
        net.enable_telemetry(registry.clone());
        net.bootstrap_keys();
        net.enable_defence(DefenceConfig::default());
        let _ = net.take_events();

        // Host slot 0's access switch is the victim; its OS has the
        // modelled §II-A foothold.
        let ft = FatTree::new(4);
        let host = ft.host(0);
        let (_, victim_ep) = net
            .sim
            .topology()
            .deliver_target(host, PortId::new(1))
            .expect("host uplink exists");
        let victim = victim_ep.node;
        net.compromise_switch_os(victim);

        // 50 users behind the port; user 7 is compromised and floods
        // forged C-DP ACKs claiming to be the victim switch. The other 49
        // stay idle (frames_per_user = 0) so every reject the controller
        // counts is attributable to the flood.
        let mut cfg = UserScaleConfig::for_k(4, 50, 0);
        cfg.mode = AggregateMode::Exact;
        cfg.compromised = Some(CompromisedUser {
            user: 7,
            victim,
            frames: 8,
            gap_ns: 10_000,
        });
        let agg = AggregateHostNode::new(
            &cfg,
            ft,
            0,
            0,
            50,
            Arc::new(AtomicU64::new(0)),
            Arc::new(AtomicU64::new(0)),
        );
        let first = agg.first_due_ns().expect("the compromised user is active");
        net.sim.register_node(host, Box::new(agg));
        net.sim.schedule_timer(host, SEND_TIMER, first);

        let start_ns = net.sim.now().as_ns();
        net.sim.run_until(SimTime::from_ns(start_ns + 200_000_000));

        let events = net.take_events();
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, ControllerEvent::DefenceMitigated { .. }))
                .count(),
            1,
            "one threshold crossing, one mitigation"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, ControllerEvent::LocalKeyRolled(sw) if *sw == victim)),
            "the victim's local key must roll automatically"
        );
        let snap = registry.snapshot();
        let hist = snap
            .histogram("defence_mitigation_latency_ns", "controller")
            .expect("detection latency recorded");
        assert_eq!(hist.count, 1);
        assert!(hist.min > 0, "latency measured in sim-ns");
    }

    #[test]
    fn replay_windows_track_deliveries() {
        let cfg = UserScaleConfig::for_k(4, 8, 2);
        let mut agg = AggregateHostNode::new(
            &cfg,
            FatTree::new(4),
            0,
            0,
            8,
            Arc::new(AtomicU64::new(0)),
            Arc::new(AtomicU64::new(0)),
        );
        assert_eq!(agg.replay_window_occupancy(), 0);
        for flow in [0u8, 0, 7] {
            let mut sim_out = Outbox::default();
            let frame = FrameBytes::from_slice(&[1, 0, flow, 9]);
            agg.on_frame(SimTime::from_ns(10), PortId::new(1), frame, &mut sim_out);
        }
        // Two deliveries attributed to user 0 (three window bits would mean
        // mis-attribution), one to user 7.
        assert_eq!(agg.replay_window_occupancy(), 3);
    }
}
