//! A FlowRadar-style measurement system (Li et al., NSDI 2016) — the
//! Table I "Measurement" row as a working system.
//!
//! FlowRadar encodes per-flow counters into a compact Invertible Bloom
//! Lookup Table (IBLT) in the data plane and periodically exports it to
//! the controller, which decodes exact per-flow counts and runs loss
//! analysis by differencing counters across switches. Table I's attack:
//! tamper with the exported digest ("DP periodically exports encoded
//! flowlet information … to C") so the decoded counts — and therefore the
//! loss analysis — are poisoned.
//!
//! The IBLT here is a faithful miniature: `k` hash cells per flow, each
//! cell holding `(count_sum, flow_xor, packet_sum)`; single-flow cells
//! peel off iteratively, exactly like the real decode.

use p4auth_core::agent::InNetworkApp;
use p4auth_dataplane::chassis::{Chassis, ChassisError, PacketContext};
use p4auth_dataplane::register::RegisterArray;
use p4auth_wire::ids::PortId;
use std::collections::HashMap;

/// System id of FlowRadar frames.
pub const FLOWRADAR_SYSTEM_ID: u8 = 7;

/// First byte of measured data frames.
pub const DATA_MAGIC: u8 = 0xFB;

/// IBLT cells.
pub const CELLS: u32 = 64;
/// Hash functions per flow.
pub const K_HASHES: u32 = 3;

/// Data-plane register names: the encoded flow table, one register per
/// IBLT field (a P4 program would use three register arrays exactly so).
pub mod regs {
    /// Per-cell flow-count sum.
    pub const CELL_COUNT: &str = "fr_cell_count";
    /// Per-cell XOR of flow ids.
    pub const CELL_FLOWXOR: &str = "fr_cell_flowxor";
    /// Per-cell packet-count sum.
    pub const CELL_PKTSUM: &str = "fr_cell_pktsum";
}

/// Controller-visible register ids.
pub mod reg_ids {
    use p4auth_wire::ids::RegId;

    /// [`super::regs::CELL_COUNT`].
    pub const CELL_COUNT: RegId = RegId::new(8001);
    /// [`super::regs::CELL_FLOWXOR`].
    pub const CELL_FLOWXOR: RegId = RegId::new(8002);
    /// [`super::regs::CELL_PKTSUM`].
    pub const CELL_PKTSUM: RegId = RegId::new(8003);
}

/// The cell indices a flow hashes to.
pub fn cells_for(flow: u32) -> [u32; K_HASHES as usize] {
    let mut out = [0u32; K_HASHES as usize];
    for (i, slot) in out.iter_mut().enumerate() {
        let h = (flow ^ (i as u32).wrapping_mul(0x9e37_79b9)).wrapping_mul(2_654_435_761);
        *slot = h % CELLS;
    }
    out
}

/// A measured data frame: `[0xFB, flow(4)]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FrFrame {
    /// Flow id.
    pub flow: u32,
}

impl FrFrame {
    /// Encodes the frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![DATA_MAGIC];
        out.extend_from_slice(&self.flow.to_be_bytes());
        out
    }

    /// Decodes a frame.
    pub fn decode(bytes: &[u8]) -> Option<FrFrame> {
        if bytes.len() != 5 || bytes[0] != DATA_MAGIC {
            return None;
        }
        Some(FrFrame {
            flow: u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]),
        })
    }
}

/// One exported IBLT snapshot (what the controller reads over C-DP).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Export {
    /// Per-cell flow-count sums.
    pub count: Vec<u64>,
    /// Per-cell flow-id XORs.
    pub flowxor: Vec<u64>,
    /// Per-cell packet sums.
    pub pktsum: Vec<u64>,
}

impl Export {
    /// Reads a snapshot directly from a chassis (the driver-level surface
    /// the adversary can also reach).
    pub fn read_from(chassis: &Chassis) -> Self {
        let read_all = |name: &str| {
            (0..CELLS)
                .map(|i| {
                    chassis
                        .register(name)
                        .expect("declared")
                        .read(i)
                        .expect("in range")
                })
                .collect::<Vec<u64>>()
        };
        Export {
            count: read_all(regs::CELL_COUNT),
            flowxor: read_all(regs::CELL_FLOWXOR),
            pktsum: read_all(regs::CELL_PKTSUM),
        }
    }

    /// IBLT decode: iteratively peel cells containing exactly one flow.
    /// Returns `(flow → packet count)` for everything decodable.
    pub fn decode(&self) -> HashMap<u32, u64> {
        let mut count = self.count.clone();
        let mut flowxor = self.flowxor.clone();
        let mut pktsum = self.pktsum.clone();
        let mut out = HashMap::new();
        while let Some(cell) = (0..CELLS as usize).find(|&i| count[i] == 1) {
            let flow = flowxor[cell] as u32;
            let pkts = pktsum[cell];
            out.insert(flow, pkts);
            for c in cells_for(flow) {
                let c = c as usize;
                count[c] = count[c].saturating_sub(1);
                flowxor[c] ^= flow as u64;
                pktsum[c] = pktsum[c].saturating_sub(pkts);
            }
        }
        out
    }
}

/// The FlowRadar data-plane program: every packet updates the three IBLT
/// registers at `k` cells (new flows also bump the flow counters).
#[derive(Debug, Default)]
pub struct FlowRadarApp {
    seen: std::collections::HashSet<u32>,
}

impl FlowRadarApp {
    /// Boxed for mounting on the agent.
    pub fn boxed() -> Box<dyn InNetworkApp> {
        Box::new(FlowRadarApp::default())
    }
}

impl InNetworkApp for FlowRadarApp {
    fn system_id(&self) -> u8 {
        FLOWRADAR_SYSTEM_ID
    }

    fn setup(&mut self, chassis: &mut Chassis) {
        chassis.declare_register(RegisterArray::new(regs::CELL_COUNT, CELLS, 64));
        chassis.declare_register(RegisterArray::new(regs::CELL_FLOWXOR, CELLS, 64));
        chassis.declare_register(RegisterArray::new(regs::CELL_PKTSUM, CELLS, 64));
    }

    fn on_control(
        &mut self,
        _ctx: &mut PacketContext<'_>,
        _ingress: PortId,
        _payload: &[u8],
    ) -> Result<Vec<(PortId, Vec<u8>)>, ChassisError> {
        Ok(vec![])
    }

    fn on_data(
        &mut self,
        ctx: &mut PacketContext<'_>,
        _ingress: PortId,
        bytes: &[u8],
    ) -> Result<Vec<(PortId, Vec<u8>)>, ChassisError> {
        let Some(frame) = FrFrame::decode(bytes) else {
            return Ok(vec![]);
        };
        // In the real FlowRadar the "new flow" test is a bloom filter in
        // the pipeline; a HashSet keeps the miniature honest and small.
        let is_new = self.seen.insert(frame.flow);
        for cell in cells_for(frame.flow) {
            if is_new {
                ctx.update_register(regs::CELL_COUNT, cell, |v| v + 1)?;
                ctx.update_register(regs::CELL_FLOWXOR, cell, |v| v ^ frame.flow as u64)?;
            }
            ctx.update_register(regs::CELL_PKTSUM, cell, |v| v + 1)?;
        }
        Ok(vec![(PortId::new(1), bytes.to_vec())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4auth_dataplane::chassis::{Chassis, ChassisConfig};
    use p4auth_dataplane::packet::Packet;
    use p4auth_wire::ids::SwitchId;

    fn setup() -> (Chassis, FlowRadarApp) {
        let mut app = FlowRadarApp::default();
        let mut chassis = Chassis::new(ChassisConfig::tofino(SwitchId::new(1), 2));
        app.setup(&mut chassis);
        (chassis, app)
    }

    fn send(chassis: &mut Chassis, app: &mut FlowRadarApp, flow: u32, n: u64) {
        for _ in 0..n {
            let bytes = FrFrame { flow }.encode();
            let pkt = Packet::from_bytes(PortId::new(2), bytes.clone());
            chassis
                .process(0, &pkt, |ctx, _| {
                    app.on_data(ctx, PortId::new(2), &bytes)?;
                    Ok(vec![])
                })
                .unwrap();
        }
    }

    #[test]
    fn frame_roundtrip() {
        let f = FrFrame { flow: 77 };
        assert_eq!(FrFrame::decode(&f.encode()), Some(f));
        assert_eq!(FrFrame::decode(&[0u8; 5]), None);
    }

    #[test]
    fn cells_are_deterministic_and_spread() {
        assert_eq!(cells_for(5), cells_for(5));
        let a = cells_for(5);
        assert!(a.iter().all(|&c| c < CELLS));
    }

    #[test]
    fn decode_recovers_exact_flow_counts() {
        let (mut chassis, mut app) = setup();
        send(&mut chassis, &mut app, 101, 7);
        send(&mut chassis, &mut app, 202, 3);
        send(&mut chassis, &mut app, 303, 12);
        let decoded = Export::read_from(&chassis).decode();
        assert_eq!(decoded.get(&101), Some(&7));
        assert_eq!(decoded.get(&202), Some(&3));
        assert_eq!(decoded.get(&303), Some(&12));
        assert_eq!(decoded.len(), 3);
    }

    #[test]
    fn loss_analysis_differences_two_switches() {
        // Upstream saw 10 packets of flow 9; downstream saw 8 → 2 lost.
        let (mut up_c, mut up_a) = setup();
        let (mut down_c, mut down_a) = setup();
        send(&mut up_c, &mut up_a, 9, 10);
        send(&mut down_c, &mut down_a, 9, 8);
        let up = Export::read_from(&up_c).decode();
        let down = Export::read_from(&down_c).decode();
        assert_eq!(up[&9] - down[&9], 2);
    }

    #[test]
    fn tampered_export_poisons_loss_analysis() {
        // The Table I attack: the adversary rewrites the exported packet
        // sums; decode "succeeds" with wrong counts and the loss analysis
        // accuses the wrong segment.
        let (mut up_c, mut up_a) = setup();
        let (mut down_c, mut down_a) = setup();
        send(&mut up_c, &mut up_a, 9, 10);
        send(&mut down_c, &mut down_a, 9, 10); // no real loss
        let up = Export::read_from(&up_c).decode();

        // Adversary subtracts 4 packets from every cell of flow 9 in the
        // downstream export (driver-level tampering).
        for cell in cells_for(9) {
            down_c
                .register_mut(regs::CELL_PKTSUM)
                .unwrap()
                .update(cell, |v| v - 4)
                .unwrap();
        }
        let down = Export::read_from(&down_c).decode();
        let fake_loss = up[&9] as i64 - down[&9] as i64;
        assert_eq!(fake_loss, 4, "phantom loss fabricated by the adversary");
    }

    #[test]
    fn multiple_packets_of_known_flow_only_bump_pktsum() {
        let (mut chassis, mut app) = setup();
        send(&mut chassis, &mut app, 55, 5);
        let export = Export::read_from(&chassis);
        for cell in cells_for(55) {
            assert_eq!(export.count[cell as usize], 1, "flow counted once");
            assert_eq!(export.pktsum[cell as usize], 5);
        }
    }

    #[test]
    fn decode_handles_colliding_flows_via_peeling() {
        let (mut chassis, mut app) = setup();
        // Enough flows that some cells hold multiple entries.
        for flow in 0..20u32 {
            send(&mut chassis, &mut app, 1000 + flow, (flow + 1) as u64);
        }
        let decoded = Export::read_from(&chassis).decode();
        assert_eq!(decoded.len(), 20, "all flows should peel");
        for flow in 0..20u32 {
            assert_eq!(decoded[&(1000 + flow)], (flow + 1) as u64);
        }
    }
}
