//! Simulation harness: adapters that mount P4Auth agents and the
//! controller on the network simulator, plus a network builder that runs
//! the key-management bootstrap.

use p4auth_controller::{
    Controller, ControllerConfig, ControllerEvent, DefenceConfig, MitigationKind, Outgoing,
    ReplicaSet,
};
use p4auth_core::agent::{AgentConfig, AgentEvent, InNetworkApp, P4AuthSwitch};
use p4auth_netsim::frame::FrameBytes;
use p4auth_netsim::sim::{Outbox, SimNode, Simulator, TopologyEvent};
use p4auth_netsim::time::SimTime;
use p4auth_netsim::topology::Topology;

pub use p4auth_netsim::sched::SchedulerKind;
pub use p4auth_netsim::topology::HOST_ID_BASE;
use p4auth_primitives::Key64;
use p4auth_wire::ids::{PortId, RegId, SwitchId};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// Whether a link connects two switch data planes (as opposed to touching
/// the controller or a host).
pub(crate) fn is_dp_dp_link(l: &p4auth_netsim::topology::Link) -> bool {
    let is_switch = |id: SwitchId| !id.is_controller() && id.value() < HOST_ID_BASE;
    is_switch(l.a.node) && is_switch(l.b.node)
}

/// Shared handle to a switch agent (the harness keeps one, the sim node
/// keeps the other).
pub type SharedSwitch = Rc<RefCell<P4AuthSwitch>>;
/// Shared handle to the controller.
pub type SharedController = Rc<RefCell<Controller>>;

/// Extra controller-side processing delay per message (the Python agent of
/// the prototype); applied by the controller node when transmitting.
pub const CONTROLLER_PROC_NS: u64 = 150_000;

/// Callback a [`SwitchNode`] invokes when a DP-DP port key lands:
/// `(sim-ns, switch, port)`. The control plane only redirects port-key
/// legs and never sees them finish; the defence loop needs the
/// completion for its detection-to-mitigation latency accounting.
pub type PortKeyNotifier = Rc<RefCell<dyn FnMut(u64, SwitchId, PortId)>>;

/// A [`SimNode`] wrapping a [`P4AuthSwitch`]. Frames are processed by the
/// agent; outputs are transmitted after the agent's modelled processing
/// cost.
///
/// The agent addresses the control plane through its logical CPU port
/// (port 0, a PCIe channel on real hardware); in the simulated topology the
/// C-DP link hangs off a front-panel port (`cpu_netport`). The node
/// translates between the two.
pub struct SwitchNode {
    id: SwitchId,
    agent: SharedSwitch,
    cpu_netport: Option<PortId>,
    notify: Option<PortKeyNotifier>,
    /// §II-A compromised-switch-OS model (default off; see
    /// [`Network::compromise_switch_os`]): when set, frames arriving from
    /// data ports that impersonate this switch's own C-DP traffic are
    /// relayed out the control uplink unauthenticated.
    compromised: Rc<Cell<bool>>,
}

impl SwitchNode {
    /// Wraps a shared agent; `cpu_netport` is the topology port carrying
    /// the C-DP channel (if any). Port-key completions are reported to
    /// `controller` (the single-controller wiring).
    pub fn new(
        id: SwitchId,
        agent: SharedSwitch,
        cpu_netport: Option<PortId>,
        controller: Option<SharedController>,
    ) -> Self {
        let notify = controller.map(|c| {
            let f: PortKeyNotifier = Rc::new(RefCell::new(
                move |now_ns: u64, peer: SwitchId, channel: PortId| {
                    let mut c = c.borrow_mut();
                    c.set_now(now_ns);
                    c.notify_port_key_installed(peer, channel);
                },
            ));
            f
        });
        SwitchNode {
            id,
            agent,
            cpu_netport,
            notify,
            compromised: Rc::new(Cell::new(false)),
        }
    }

    /// Like [`SwitchNode::new`] but with an arbitrary completion
    /// callback — the replicated wiring routes completions to the owner
    /// replica instead of a single controller.
    pub fn with_notifier(
        id: SwitchId,
        agent: SharedSwitch,
        cpu_netport: Option<PortId>,
        notify: Option<PortKeyNotifier>,
    ) -> Self {
        SwitchNode {
            id,
            agent,
            cpu_netport,
            notify,
            compromised: Rc::new(Cell::new(false)),
        }
    }
}

impl SimNode for SwitchNode {
    fn on_frame(&mut self, now: SimTime, ingress: PortId, payload: FrameBytes, out: &mut Outbox) {
        let logical_ingress = if Some(ingress) == self.cpu_netport {
            PortId::CPU
        } else {
            ingress
        };
        // §II-A compromised switch OS (modelled, default off): an attacker
        // foothold in the switch's OS hijacks frames arriving from data
        // ports that impersonate the switch's own control-plane traffic and
        // relays them out the C-DP uplink without authentication — the path
        // by which a digest flood sourced at an edge user reaches the
        // controller. Legitimate DP-DP traffic is untouched (peers never
        // claim *this* switch as sender).
        if self.compromised.get() && logical_ingress != PortId::CPU {
            if let (Some(cpu), Ok(msg)) = (self.cpu_netport, p4auth_wire::Message::decode(&payload))
            {
                if msg.header().sender == self.id && msg.header().port.is_cpu() {
                    out.send_delayed(cpu, payload, 1_000);
                    return;
                }
            }
        }
        let output = self
            .agent
            .borrow_mut()
            .on_packet(now.as_ns(), logical_ingress, &payload);
        if let Some(notify) = &self.notify {
            for ev in &output.events {
                if let AgentEvent::KeyInstalled { port } | AgentEvent::KeyRolled { port } = ev {
                    if !port.is_cpu() {
                        (notify.borrow_mut())(now.as_ns(), self.id, *port);
                    }
                }
            }
        }
        for (port, bytes) in output.outputs {
            let physical = if port.is_cpu() {
                match self.cpu_netport {
                    Some(p) => p,
                    None => continue, // no control channel attached
                }
            } else {
                port
            };
            out.send_delayed(physical, bytes, output.cost_ns);
        }
    }
}

/// A scheduled periodic key-rollover plan (§VI-C: keys are updated
/// "automatically ... at regular intervals").
#[derive(Clone, Debug, Default)]
pub struct RolloverPlan {
    /// Rollover period in nanoseconds of simulated time.
    pub period_ns: u64,
    /// Switches whose local keys roll.
    pub switches: Vec<SwitchId>,
    /// DP-DP links whose port keys roll: `(initiator, initiator port,
    /// responder)`.
    pub links: Vec<(SwitchId, PortId, SwitchId)>,
}

/// Shared handle to the (optional) rollover plan.
pub type SharedRollover = Rc<RefCell<Option<RolloverPlan>>>;

/// Timer id the controller node uses for periodic rollover.
pub const ROLLOVER_TIMER: u64 = 0x5011;

/// Timer id used by [`TrafficSource`].
const TRAFFIC_TIMER: u64 = 0x7a1c;

/// A host that transmits a pre-computed schedule of frames at their
/// timestamps (the simulator-side equivalent of a packet replay tool).
pub struct TrafficSource {
    /// `(transmit time ns, egress port, frame)` sorted by time.
    schedule: std::collections::VecDeque<(u64, PortId, Vec<u8>)>,
}

impl TrafficSource {
    /// Creates a source from a schedule (sorted by the caller).
    pub fn new(schedule: Vec<(u64, PortId, Vec<u8>)>) -> Self {
        TrafficSource {
            schedule: schedule.into(),
        }
    }

    fn arm_next(&self, now: SimTime, out: &mut Outbox) {
        if let Some(&(at, _, _)) = self.schedule.front() {
            out.set_timer(TRAFFIC_TIMER, at.saturating_sub(now.as_ns()).max(1));
        }
    }
}

/// Callback invoked by a [`SinkHost`] for every arriving frame.
pub type ArrivalCallback = Box<dyn FnMut(SimTime, PortId, &[u8])>;

/// A host that records every arriving frame via a callback (e.g. for
/// flow-completion measurements at the receiver side of a bottleneck).
pub struct SinkHost {
    on_arrival: ArrivalCallback,
}

impl SinkHost {
    /// Creates a sink with an arrival callback.
    pub fn new(on_arrival: ArrivalCallback) -> Self {
        SinkHost { on_arrival }
    }
}

impl SimNode for SinkHost {
    fn on_frame(&mut self, now: SimTime, ingress: PortId, payload: FrameBytes, _out: &mut Outbox) {
        (self.on_arrival)(now, ingress, &payload);
    }
}

impl SimNode for TrafficSource {
    fn on_frame(
        &mut self,
        _now: SimTime,
        _ingress: PortId,
        _payload: FrameBytes,
        _out: &mut Outbox,
    ) {
        // Hosts sink whatever comes back.
    }

    fn on_timer(&mut self, now: SimTime, timer_id: u64, out: &mut Outbox) {
        if timer_id != TRAFFIC_TIMER {
            return;
        }
        while let Some(&(at, port, _)) = self.schedule.front() {
            if at > now.as_ns() {
                break;
            }
            let (_, _, frame) = self.schedule.pop_front().expect("peeked");
            out.send(port, frame);
        }
        self.arm_next(now, out);
    }
}

/// A [`SimNode`] wrapping the [`Controller`]. The controller reaches switch
/// `i` through its own port `i - 1` (matching [`Topology::chain`] and the
/// builder below).
pub struct ControllerNode {
    controller: SharedController,
    events: Rc<RefCell<Vec<ControllerEvent>>>,
    rollover: SharedRollover,
    /// DP-DP adjacency: `(switch, port)` → peer switch, for translating
    /// defence mitigations on port channels into `portKeyUpdate` messages.
    links: HashMap<(SwitchId, PortId), SwitchId>,
    /// Agent handles, for flipping agent-side quarantine enforcement.
    switches: HashMap<SwitchId, SharedSwitch>,
}

impl ControllerNode {
    /// Wraps a shared controller; `events` accumulates everything observed.
    /// `links` maps `(switch, port)` to the peer switch for every DP-DP
    /// link and `switches` holds the agent handles — both may be empty
    /// when the adaptive defence loop is unused.
    pub fn new(
        controller: SharedController,
        events: Rc<RefCell<Vec<ControllerEvent>>>,
        rollover: SharedRollover,
        links: HashMap<(SwitchId, PortId), SwitchId>,
        switches: HashMap<SwitchId, SharedSwitch>,
    ) -> Self {
        ControllerNode {
            controller,
            events,
            rollover,
            links,
            switches,
        }
    }

    /// Turns defence mitigations on DP-DP port channels into wire actions:
    /// flips agent-side quarantine enforcement and issues the port-key
    /// rollover that (on completion) lifts it.
    fn apply_port_actions(&self, controller: &mut Controller, outgoing: &mut Vec<Outgoing>) {
        for action in controller.take_port_actions() {
            if action.kind == MitigationKind::Quarantine {
                if let Some(agent) = self.switches.get(&action.peer) {
                    agent
                        .borrow_mut()
                        .set_channel_quarantine(action.channel, true);
                }
            }
            if let Some(&peer) = self.links.get(&(action.peer, action.channel)) {
                outgoing.extend(controller.port_key_update(action.peer, action.channel, peer));
            }
        }
    }

    /// The controller-side port used to reach `switch`.
    pub fn port_for(switch: SwitchId) -> PortId {
        PortId::new((switch.value() - 1) as u8)
    }

    /// The switch reached through controller port `port`.
    pub fn switch_for(port: PortId) -> SwitchId {
        SwitchId::new(port.value() as u16 + 1)
    }

    fn transmit(out: &mut Outbox, outgoing: Vec<Outgoing>) {
        for o in outgoing {
            out.send_delayed(Self::port_for(o.to), o.bytes, CONTROLLER_PROC_NS);
        }
    }
}

impl SimNode for ControllerNode {
    fn on_frame(&mut self, now: SimTime, ingress: PortId, payload: FrameBytes, out: &mut Outbox) {
        let from = Self::switch_for(ingress);
        let (outgoing, events) = {
            let mut controller = self.controller.borrow_mut();
            controller.set_now(now.as_ns());
            let (mut outgoing, events) = controller.on_message(from, &payload);
            self.apply_port_actions(&mut controller, &mut outgoing);
            (outgoing, events)
        };
        self.events.borrow_mut().extend(events);
        Self::transmit(out, outgoing);
    }

    fn on_timer(&mut self, now: SimTime, timer_id: u64, out: &mut Outbox) {
        if timer_id != ROLLOVER_TIMER {
            return;
        }
        let Some(plan) = self.rollover.borrow().clone() else {
            return;
        };
        let mut controller = self.controller.borrow_mut();
        controller.set_now(now.as_ns());
        // Also re-drive anything a lost message stalled last period.
        let mut outgoing = controller.retry_stalled();
        for &sw in &plan.switches {
            if controller.has_local_key(sw) {
                outgoing.extend(controller.local_key_update(sw));
            }
        }
        for &(sw1, port1, sw2) in &plan.links {
            outgoing.extend(controller.port_key_update(sw1, port1, sw2));
        }
        self.apply_port_actions(&mut controller, &mut outgoing);
        drop(controller);
        Self::transmit(out, outgoing);
        out.set_timer(ROLLOVER_TIMER, plan.period_ns);
    }

    fn on_topology(&mut self, _now: SimTime, event: TopologyEvent, out: &mut Outbox) {
        // §VI-C: a link-up event (LLDP-detected "port active") triggers
        // port-key initialization between the two data planes.
        if let TopologyEvent::LinkUp { a, b, .. } = event {
            let is_switch = |id: SwitchId| !id.is_controller() && id.value() < HOST_ID_BASE;
            if !is_switch(a.node) || !is_switch(b.node) {
                return;
            }
            let mut controller = self.controller.borrow_mut();
            // A flapping link can come back up while the previous
            // recovery's exchange is still in flight (the legs travel the
            // control channel, which the flap does not touch). Starting a
            // second exchange for the same link would overlap generations
            // — the pending one completes instead, and `retry_stalled`
            // re-drives it if it ever stalls.
            if controller.has_pending_port_exchange(a.node, a.port, b.node, b.port) {
                return;
            }
            let outgoing = controller.port_key_init(a.node, a.port, b.node, b.port);
            drop(controller);
            Self::transmit(out, outgoing);
        }
    }
}

/// A built P4Auth network: simulator + shared handles.
pub struct Network {
    /// The simulator (topology, taps, clock).
    pub sim: Simulator,
    /// Shared agent handles by switch id.
    pub switches: HashMap<SwitchId, SharedSwitch>,
    /// Shared controller handle.
    pub controller: SharedController,
    /// Controller events accumulated during the run.
    pub events: Rc<RefCell<Vec<ControllerEvent>>>,
    rollover: SharedRollover,
    registry: Option<std::sync::Arc<p4auth_telemetry::Registry>>,
    ring: Option<p4auth_telemetry::SnapshotRing>,
    /// Per-switch compromised-OS relay flags (see
    /// [`Network::compromise_switch_os`]).
    relay_flags: HashMap<SwitchId, Rc<Cell<bool>>>,
}

impl Network {
    /// Builds a network over `topology`. `make_app` produces the in-network
    /// app for each switch (or `None`); `configure` lets the caller adjust
    /// each agent's config (e.g. disable auth for baselines).
    ///
    /// Every switch is registered with the controller using a per-switch
    /// `K_seed` derived from `seed_base`.
    pub fn build(
        topology: Topology,
        controller_config: ControllerConfig,
        seed_base: u64,
        make_app: impl FnMut(SwitchId) -> Option<Box<dyn InNetworkApp>>,
        configure: impl FnMut(SwitchId, AgentConfig) -> AgentConfig,
    ) -> Network {
        Network::build_with_scheduler(
            topology,
            SchedulerKind::default(),
            controller_config,
            seed_base,
            make_app,
            configure,
        )
    }

    /// Like [`Network::build`] but with an explicit event-scheduler choice
    /// (the calendar queue and the reference heap produce bit-identical
    /// runs; the heap exists for differential testing).
    pub fn build_with_scheduler(
        topology: Topology,
        scheduler: SchedulerKind,
        controller_config: ControllerConfig,
        seed_base: u64,
        mut make_app: impl FnMut(SwitchId) -> Option<Box<dyn InNetworkApp>>,
        mut configure: impl FnMut(SwitchId, AgentConfig) -> AgentConfig,
    ) -> Network {
        let mut sim = Simulator::with_scheduler(topology, scheduler);
        let mut switches = HashMap::new();
        let mut relay_flags = HashMap::new();
        let controller = Rc::new(RefCell::new(Controller::new(controller_config)));
        let events = Rc::new(RefCell::new(Vec::new()));
        let rollover: SharedRollover = Rc::new(RefCell::new(None));

        let node_ids: Vec<SwitchId> = sim.topology().nodes().to_vec();
        let mut has_controller = false;
        for id in node_ids {
            if id.value() >= HOST_ID_BASE {
                continue; // hosts get their behaviour attached separately
            }
            if id.is_controller() {
                has_controller = true; // registered below, once agents exist
                continue;
            }
            let k_seed =
                Key64::new(seed_base ^ (id.value() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            controller.borrow_mut().register_switch(id, k_seed);
            let neighbors = sim.topology().neighbors(id);
            // The front-panel port carrying the C-DP channel, if any.
            let cpu_netport = neighbors
                .iter()
                .find(|(_, ep)| ep.node.is_controller())
                .map(|(p, _)| *p);
            // Port count: highest *data* port number used in the topology.
            let max_port = neighbors
                .iter()
                .filter(|(_, ep)| !ep.node.is_controller())
                .map(|(p, _)| p.value())
                .max()
                .unwrap_or(1);
            let config = configure(id, AgentConfig::new(id, max_port, k_seed));
            let agent = Rc::new(RefCell::new(P4AuthSwitch::new(config, make_app(id))));
            switches.insert(id, agent.clone());
            let node = SwitchNode::new(id, agent, cpu_netport, Some(controller.clone()));
            relay_flags.insert(id, node.compromised.clone());
            sim.register_node(id, Box::new(node));
        }
        if has_controller {
            // DP-DP adjacency for translating port-channel defence
            // mitigations into portKeyUpdate messages.
            let mut links = HashMap::new();
            for l in sim.topology().links() {
                if is_dp_dp_link(l) {
                    links.insert((l.a.node, l.a.port), l.b.node);
                    links.insert((l.b.node, l.b.port), l.a.node);
                }
            }
            sim.register_node(
                SwitchId::CONTROLLER,
                Box::new(ControllerNode::new(
                    controller.clone(),
                    events.clone(),
                    rollover.clone(),
                    links,
                    switches.clone(),
                )),
            );
        }

        Network {
            sim,
            switches,
            controller,
            events,
            rollover,
            registry: None,
            ring: None,
            relay_flags,
        }
    }

    /// Arms the §II-A compromised-switch-OS model on `switch` (see the
    /// relay logic in [`SwitchNode`]): from now on, frames arriving from
    /// the switch's data ports that impersonate its own C-DP traffic are
    /// relayed to the controller unauthenticated. The defence tests use
    /// this to let a digest flood sourced at an aggregated edge user reach
    /// the control channel, exactly the foothold the paper defends
    /// against.
    pub fn compromise_switch_os(&mut self, switch: SwitchId) {
        self.relay_flags[&switch].set(true);
    }

    /// Arms the controller's telemetry-driven adaptive defence loop:
    /// forged-digest / replay floods on one `(peer, channel)` trigger an
    /// automatic key rollover, escalating to channel quarantine if the
    /// rollover does not stop the flood. CPU-channel mitigations are
    /// handled by the controller itself; port-channel mitigations are
    /// translated by the [`ControllerNode`] (which knows the DP-DP
    /// adjacency) into `portKeyUpdate` messages plus agent-side
    /// quarantine enforcement. Detection-to-mitigation latency lands in
    /// the `defence_mitigation_latency_ns` telemetry histogram.
    pub fn enable_defence(&mut self, config: DefenceConfig) {
        self.controller.borrow_mut().enable_defence(config);
    }

    /// Enables automatic periodic key rollover (§VI-C): every `period_ns`
    /// of simulated time the controller rolls every local key and every
    /// port key, retrying anything a lost message stalled. Call after
    /// [`Network::bootstrap_keys`].
    pub fn enable_periodic_rollover(&mut self, period_ns: u64) {
        let switches: Vec<SwitchId> = {
            let mut s: Vec<SwitchId> = self.switches.keys().copied().collect();
            s.sort();
            s
        };
        let links = self
            .sim
            .topology()
            .links()
            .iter()
            .filter(|l| is_dp_dp_link(l))
            .map(|l| (l.a.node, l.a.port, l.b.node))
            .collect();
        *self.rollover.borrow_mut() = Some(RolloverPlan {
            period_ns,
            switches,
            links,
        });
        self.sim
            .schedule_timer(SwitchId::CONTROLLER, ROLLOVER_TIMER, period_ns);
    }

    /// Stops periodic rollover: the pending timer fires once more as a
    /// no-op and the chain ends (after which `run_to_completion` drains).
    pub fn disable_periodic_rollover(&mut self) {
        *self.rollover.borrow_mut() = None;
    }

    /// Registers a [`SinkHost`] on host node `host`.
    ///
    /// # Panics
    ///
    /// Panics if the node is missing from the topology or already
    /// registered.
    pub fn attach_sink(&mut self, host: SwitchId, on_arrival: ArrivalCallback) {
        assert!(host.value() >= HOST_ID_BASE, "sinks live on host ids");
        self.sim
            .register_node(host, Box::new(SinkHost::new(on_arrival)));
    }

    /// Registers a [`TrafficSource`] on host node `host` (id ≥
    /// [`HOST_ID_BASE`], present in the topology) and arms its first
    /// transmission.
    ///
    /// # Panics
    ///
    /// Panics if the node is missing from the topology or already
    /// registered.
    pub fn attach_traffic_source(&mut self, host: SwitchId, schedule: Vec<(u64, PortId, Vec<u8>)>) {
        assert!(
            host.value() >= HOST_ID_BASE,
            "traffic sources live on host ids"
        );
        let first = schedule.first().map(|&(at, _, _)| at);
        self.sim
            .register_node(host, Box::new(TrafficSource::new(schedule)));
        if let Some(at) = first {
            let delay = at.saturating_sub(self.sim.now().as_ns()).max(1);
            self.sim.schedule_timer(host, TRAFFIC_TIMER, delay);
        }
    }

    /// Runs the key-management bootstrap: local-key initialization for every
    /// switch, then port-key initialization for every DP-DP link, driving
    /// the simulator until all exchanges complete. Returns the simulated
    /// time the bootstrap took.
    ///
    /// # Panics
    ///
    /// Panics if any key fails to establish (a protocol bug or an active
    /// adversary during bootstrap).
    pub fn bootstrap_keys(&mut self) -> SimTime {
        let start = self.sim.now();
        // Sorted so the bootstrap exchange order (and any attached telemetry
        // event log) is identical run to run despite HashMap iteration order.
        let switch_ids: Vec<SwitchId> = {
            let mut s: Vec<SwitchId> = self.switches.keys().copied().collect();
            s.sort();
            s
        };
        for &id in &switch_ids {
            let outgoing = self.controller.borrow_mut().local_key_init(id);
            self.send_from_controller(outgoing);
        }
        self.sim.run_to_completion();
        for &id in &switch_ids {
            assert!(
                self.controller.borrow().has_local_key(id),
                "local key init failed for {id}"
            );
        }

        // Port keys for every DP-DP link (host attachment links are not
        // switch-to-switch and carry no port keys).
        let links: Vec<_> = self
            .sim
            .topology()
            .links()
            .iter()
            .filter(|l| is_dp_dp_link(l))
            .copied()
            .collect();
        for link in links {
            let outgoing = self.controller.borrow_mut().port_key_init(
                link.a.node,
                link.a.port,
                link.b.node,
                link.b.port,
            );
            self.send_from_controller(outgoing);
            self.sim.run_to_completion();
        }

        for link in self.sim.topology().links() {
            if !is_dp_dp_link(link) {
                continue;
            }
            for (node, port) in [(link.a.node, link.a.port), (link.b.node, link.b.port)] {
                assert!(
                    self.switches[&node]
                        .borrow()
                        .keys()
                        .port(port)
                        .is_installed(),
                    "port key init failed for {node}:{port}"
                );
            }
        }
        SimTime::from_ns(self.sim.now().since(start))
    }

    /// Transmits controller-originated messages with the controller's
    /// processing delay, so injected traffic never overtakes frames the
    /// controller node emitted in the same instant (sequence numbers are
    /// per channel and FIFO).
    pub fn send_from_controller(&mut self, outgoing: Vec<p4auth_controller::Outgoing>) {
        for o in outgoing {
            self.sim.inject_frame_delayed(
                SwitchId::CONTROLLER,
                ControllerNode::port_for(o.to),
                o.bytes,
                CONTROLLER_PROC_NS,
            );
        }
    }

    /// Sends a controller-originated register read into the network.
    pub fn controller_read(&mut self, switch: SwitchId, reg: RegId, index: u32) {
        let now_ns = self.sim.now().as_ns();
        let o = {
            let mut controller = self.controller.borrow_mut();
            controller.set_now(now_ns);
            controller.read_register(switch, reg, index)
        };
        self.send_from_controller(vec![o]);
    }

    /// Sends a controller-originated register write into the network.
    pub fn controller_write(&mut self, switch: SwitchId, reg: RegId, index: u32, value: u64) {
        let now_ns = self.sim.now().as_ns();
        let o = {
            let mut controller = self.controller.borrow_mut();
            controller.set_now(now_ns);
            controller.write_register(switch, reg, index, value)
        };
        self.send_from_controller(vec![o]);
    }

    /// Injects an in-network control message (e.g. a HULA probe) originated
    /// by `switch` out of `port`, sealed with that port's key.
    ///
    /// # Panics
    ///
    /// Panics if sealing fails (no port key while auth is enabled).
    pub fn originate_probe(
        &mut self,
        switch: SwitchId,
        port: PortId,
        system: u8,
        payload: Vec<u8>,
    ) {
        let bytes = self.switches[&switch]
            .borrow_mut()
            .seal_probe(port, system, payload)
            .expect("probe sealing requires an installed port key");
        self.sim.inject_frame(switch, port, bytes);
    }

    /// Injects a raw data frame originated by `switch` out of `port`.
    pub fn inject_data(&mut self, switch: SwitchId, port: PortId, bytes: Vec<u8>) {
        self.sim.inject_frame(switch, port, bytes);
    }

    /// Drains accumulated controller events.
    pub fn take_events(&mut self) -> Vec<ControllerEvent> {
        std::mem::take(&mut *self.events.borrow_mut())
    }

    /// Attaches one telemetry registry to the whole network: the simulator,
    /// the controller, and every agent (which forwards to its chassis).
    /// Metrics are labeled by component (`"controller"`, `"S1"`, …) so one
    /// [`p4auth_telemetry::Snapshot`] covers the full system.
    pub fn enable_telemetry(&mut self, registry: std::sync::Arc<p4auth_telemetry::Registry>) {
        self.sim.set_telemetry(registry.clone());
        self.controller.borrow_mut().set_telemetry(registry.clone());
        for agent in self.switches.values() {
            agent.borrow_mut().set_telemetry(registry.clone());
        }
        self.registry = Some(registry);
    }

    /// Attaches a [`p4auth_telemetry::SnapshotRing`] holding the last
    /// `capacity` snapshots, keyed by sim-ns. Call [`Network::sample_ring`]
    /// at the observation cadence; windowed rates (e.g. per-channel reject
    /// rates for the defence loop) then come from
    /// [`p4auth_telemetry::SnapshotRing::rate_gauges`].
    ///
    /// # Panics
    ///
    /// If [`Network::enable_telemetry`] has not been called first.
    pub fn enable_snapshot_ring(&mut self, capacity: usize) {
        assert!(
            self.registry.is_some(),
            "enable_telemetry must be called before enable_snapshot_ring"
        );
        self.ring = Some(p4auth_telemetry::SnapshotRing::new(capacity));
    }

    /// Pushes the current registry snapshot into the ring, stamped with the
    /// simulator clock. No-op unless [`Network::enable_snapshot_ring`] was
    /// called.
    pub fn sample_ring(&mut self) {
        if let (Some(ring), Some(registry)) = (&mut self.ring, &self.registry) {
            ring.push(self.sim.now().as_ns(), registry.snapshot());
        }
    }

    /// The snapshot ring, if enabled.
    pub fn snapshot_ring(&self) -> Option<&p4auth_telemetry::SnapshotRing> {
        self.ring.as_ref()
    }
}

/// Shared handle to a [`ReplicaSet`].
pub type SharedReplicaSet = Rc<RefCell<ReplicaSet>>;

/// Shared slot for the (optional) snapshot ring — the [`ReplicaSetNode`]
/// samples it on every orchestration tick, the network reads the
/// windowed rates out of it.
type SharedRing = Rc<RefCell<Option<p4auth_telemetry::SnapshotRing>>>;
type SharedRegistry = Rc<RefCell<Option<std::sync::Arc<p4auth_telemetry::Registry>>>>;

/// Timer id driving the replicated control plane's orchestration tick.
pub const ORCH_TIMER: u64 = 0x0c4e;

/// Orchestration tick period: every tick samples telemetry into the
/// snapshot ring, feeds the windowed reject rates to the defence
/// daemons, and steps every replica's key manager (which re-drives
/// stalled exchanges with capped backoff).
pub const ORCH_PERIOD_NS: u64 = 5_000_000;

/// A [`SimNode`] mounting a whole [`ReplicaSet`] at the controller's
/// topology position. Externally the replicas share one network
/// identity (`SwitchId::CONTROLLER` and its per-switch ports) — which
/// replica handles a frame is decided by the set's partition hash, not
/// by the wire.
pub struct ReplicaSetNode {
    set: SharedReplicaSet,
    events: Rc<RefCell<Vec<ControllerEvent>>>,
    /// DP-DP adjacency: `(switch, port)` → peer switch, for translating
    /// defence mitigations on port channels into `portKeyUpdate`s.
    links: HashMap<(SwitchId, PortId), SwitchId>,
    /// Agent handles, for flipping agent-side quarantine enforcement.
    switches: HashMap<SwitchId, SharedSwitch>,
    ring: SharedRing,
    registry: SharedRegistry,
    /// Whether an ORCH timer chain is live (shared with the network so
    /// arming is idempotent).
    armed: Rc<Cell<bool>>,
}

impl ReplicaSetNode {
    /// Same contract as [`ControllerNode::apply_port_actions`], routed
    /// through the owning replica.
    fn apply_port_actions(&self, set: &mut ReplicaSet, now_ns: u64, outgoing: &mut Vec<Outgoing>) {
        for action in set.take_port_actions() {
            if action.kind == MitigationKind::Quarantine {
                if let Some(agent) = self.switches.get(&action.peer) {
                    agent
                        .borrow_mut()
                        .set_channel_quarantine(action.channel, true);
                }
            }
            if let Some(&peer) = self.links.get(&(action.peer, action.channel)) {
                outgoing.extend(set.port_key_update(now_ns, action.peer, action.channel, peer));
            }
        }
    }
}

impl SimNode for ReplicaSetNode {
    fn on_frame(&mut self, now: SimTime, ingress: PortId, payload: FrameBytes, out: &mut Outbox) {
        let now_ns = now.as_ns();
        let from = ControllerNode::switch_for(ingress);
        let outgoing = {
            let mut set = self.set.borrow_mut();
            let (mut outgoing, events) = set.on_message(now_ns, from, &payload);
            self.apply_port_actions(&mut set, now_ns, &mut outgoing);
            self.events.borrow_mut().extend(events);
            outgoing
        };
        ControllerNode::transmit(out, outgoing);
    }

    fn on_timer(&mut self, now: SimTime, timer_id: u64, out: &mut Outbox) {
        if timer_id != ORCH_TIMER {
            return;
        }
        let now_ns = now.as_ns();
        // Sample telemetry into the ring; the defence daemons consume the
        // windowed `*_per_sec` rates the ring derives.
        let gauges = {
            let mut ring = self.ring.borrow_mut();
            let registry = self.registry.borrow();
            if let (Some(ring), Some(registry)) = (ring.as_mut(), registry.as_ref()) {
                ring.push(now_ns, registry.snapshot());
            }
            ring.as_ref().map(|r| r.rate_gauges()).unwrap_or_default()
        };
        let outgoing = {
            let mut set = self.set.borrow_mut();
            set.observe_rates(now_ns, &gauges);
            let (mut outgoing, events) = set.step(now_ns);
            self.apply_port_actions(&mut set, now_ns, &mut outgoing);
            self.events.borrow_mut().extend(events);
            // Keep ticking while there is something to drive: an armed
            // defence ladder, or an unfinished bulk-rollover epoch.
            if set.defence_enabled() || !set.rollover_complete() {
                out.set_timer(ORCH_TIMER, ORCH_PERIOD_NS);
            } else {
                self.armed.set(false);
            }
            outgoing
        };
        ControllerNode::transmit(out, outgoing);
    }

    fn on_topology(&mut self, now: SimTime, event: TopologyEvent, out: &mut Outbox) {
        // §VI-C: a link-up event triggers port-key initialization, routed
        // through (and possibly redirected across) the owning replicas.
        if let TopologyEvent::LinkUp { a, b, .. } = event {
            let is_switch = |id: SwitchId| !id.is_controller() && id.value() < HOST_ID_BASE;
            if !is_switch(a.node) || !is_switch(b.node) {
                return;
            }
            let outgoing =
                self.set
                    .borrow_mut()
                    .port_key_init(now.as_ns(), a.node, a.port, b.node, b.port);
            ControllerNode::transmit(out, outgoing);
        }
    }
}

/// A built P4Auth network whose control plane is a [`ReplicaSet`] of N
/// partitioned controller replicas instead of one monolithic
/// [`Controller`]. The data plane is identical to [`Network`]'s.
pub struct ReplicatedNetwork {
    /// The simulator (topology, taps, clock).
    pub sim: Simulator,
    /// Shared agent handles by switch id.
    pub switches: HashMap<SwitchId, SharedSwitch>,
    /// Shared replica-set handle.
    pub set: SharedReplicaSet,
    /// Controller events accumulated during the run (all replicas).
    pub events: Rc<RefCell<Vec<ControllerEvent>>>,
    ring: SharedRing,
    registry: SharedRegistry,
    orch_armed: Rc<Cell<bool>>,
}

impl ReplicatedNetwork {
    /// Builds a network over `topology` with `n_replicas` controller
    /// replicas partitioning the switches. Same agent-side contract as
    /// [`Network::build`].
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas` is zero.
    pub fn build(
        topology: Topology,
        n_replicas: usize,
        controller_config: ControllerConfig,
        seed_base: u64,
        mut make_app: impl FnMut(SwitchId) -> Option<Box<dyn InNetworkApp>>,
        mut configure: impl FnMut(SwitchId, AgentConfig) -> AgentConfig,
    ) -> ReplicatedNetwork {
        assert!(n_replicas > 0, "at least one controller replica");
        let mut sim = Simulator::with_scheduler(topology, SchedulerKind::default());
        let events: Rc<RefCell<Vec<ControllerEvent>>> = Rc::new(RefCell::new(Vec::new()));
        let ring: SharedRing = Rc::new(RefCell::new(None));
        let registry: SharedRegistry = Rc::new(RefCell::new(None));
        let orch_armed = Rc::new(Cell::new(false));

        // Seeds sorted by id so replica registration order (and with it
        // every per-replica RNG stream) is identical run to run.
        let mut switch_ids: Vec<SwitchId> = sim
            .topology()
            .nodes()
            .iter()
            .copied()
            .filter(|id| !id.is_controller() && id.value() < HOST_ID_BASE)
            .collect();
        switch_ids.sort();
        let seeds: Vec<(SwitchId, Key64)> = switch_ids
            .iter()
            .map(|&id| {
                let k =
                    Key64::new(seed_base ^ (id.value() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                (id, k)
            })
            .collect();
        let set: SharedReplicaSet = Rc::new(RefCell::new(ReplicaSet::new(
            n_replicas,
            controller_config,
            &seeds,
        )));

        // One shared notifier: completions go to whichever replica owns
        // the reporting switch.
        let notify: PortKeyNotifier = Rc::new(RefCell::new({
            let set = set.clone();
            move |now_ns: u64, peer: SwitchId, channel: PortId| {
                set.borrow_mut()
                    .notify_port_key_installed(now_ns, peer, channel);
            }
        }));

        let mut switches = HashMap::new();
        let has_controller = sim.topology().nodes().iter().any(|id| id.is_controller());
        for &(id, k_seed) in &seeds {
            let neighbors = sim.topology().neighbors(id);
            let cpu_netport = neighbors
                .iter()
                .find(|(_, ep)| ep.node.is_controller())
                .map(|(p, _)| *p);
            let max_port = neighbors
                .iter()
                .filter(|(_, ep)| !ep.node.is_controller())
                .map(|(p, _)| p.value())
                .max()
                .unwrap_or(1);
            let config = configure(id, AgentConfig::new(id, max_port, k_seed));
            let agent = Rc::new(RefCell::new(P4AuthSwitch::new(config, make_app(id))));
            switches.insert(id, agent.clone());
            sim.register_node(
                id,
                Box::new(SwitchNode::with_notifier(
                    id,
                    agent,
                    cpu_netport,
                    Some(notify.clone()),
                )),
            );
        }
        if has_controller {
            let mut links = HashMap::new();
            for l in sim.topology().links() {
                if is_dp_dp_link(l) {
                    links.insert((l.a.node, l.a.port), l.b.node);
                    links.insert((l.b.node, l.b.port), l.a.node);
                }
            }
            sim.register_node(
                SwitchId::CONTROLLER,
                Box::new(ReplicaSetNode {
                    set: set.clone(),
                    events: events.clone(),
                    links,
                    switches: switches.clone(),
                    ring: ring.clone(),
                    registry: registry.clone(),
                    armed: orch_armed.clone(),
                }),
            );
        }

        ReplicatedNetwork {
            sim,
            switches,
            set,
            events,
            ring,
            registry,
            orch_armed,
        }
    }

    /// Runs the key-management bootstrap across all replicas: local-key
    /// initialization for every switch (each driven by its owner), then
    /// port-key initialization for every DP-DP link (redirected across
    /// partitions where the endpoints hash to different replicas).
    /// Returns the simulated time the bootstrap took.
    ///
    /// # Panics
    ///
    /// Panics if any key fails to establish.
    pub fn bootstrap_keys(&mut self) -> SimTime {
        let start = self.sim.now();
        let switch_ids: Vec<SwitchId> = {
            let mut s: Vec<SwitchId> = self.switches.keys().copied().collect();
            s.sort();
            s
        };
        for &id in &switch_ids {
            let now_ns = self.sim.now().as_ns();
            let outgoing = self.set.borrow_mut().local_key_init(now_ns, id);
            self.send_from_controller(outgoing);
        }
        self.sim.run_to_completion();
        for &id in &switch_ids {
            assert!(
                self.set.borrow().has_local_key(id),
                "local key init failed for {id}"
            );
        }

        let links: Vec<_> = self
            .sim
            .topology()
            .links()
            .iter()
            .filter(|l| is_dp_dp_link(l))
            .copied()
            .collect();
        for link in links {
            let now_ns = self.sim.now().as_ns();
            let outgoing = self.set.borrow_mut().port_key_init(
                now_ns,
                link.a.node,
                link.a.port,
                link.b.node,
                link.b.port,
            );
            self.send_from_controller(outgoing);
            self.sim.run_to_completion();
        }

        for link in self.sim.topology().links() {
            if !is_dp_dp_link(link) {
                continue;
            }
            for (node, port) in [(link.a.node, link.a.port), (link.b.node, link.b.port)] {
                assert!(
                    self.switches[&node]
                        .borrow()
                        .keys()
                        .port(port)
                        .is_installed(),
                    "port key init failed for {node}:{port}"
                );
            }
        }
        SimTime::from_ns(self.sim.now().since(start))
    }

    /// Transmits replica-originated messages with the controller's
    /// processing delay (see [`Network::send_from_controller`]).
    pub fn send_from_controller(&mut self, outgoing: Vec<Outgoing>) {
        for o in outgoing {
            self.sim.inject_frame_delayed(
                SwitchId::CONTROLLER,
                ControllerNode::port_for(o.to),
                o.bytes,
                CONTROLLER_PROC_NS,
            );
        }
    }

    /// Sends a register read toward `switch` via its owner replica.
    pub fn controller_read(&mut self, switch: SwitchId, reg: RegId, index: u32) {
        let now_ns = self.sim.now().as_ns();
        let o = self
            .set
            .borrow_mut()
            .read_register(now_ns, switch, reg, index);
        self.send_from_controller(vec![o]);
    }

    /// Sends a register write toward `switch` via its owner replica.
    pub fn controller_write(&mut self, switch: SwitchId, reg: RegId, index: u32, value: u64) {
        let now_ns = self.sim.now().as_ns();
        let o = self
            .set
            .borrow_mut()
            .write_register(now_ns, switch, reg, index, value);
        self.send_from_controller(vec![o]);
    }

    /// Drains accumulated controller events (all replicas, in arrival
    /// order).
    pub fn take_events(&mut self) -> Vec<ControllerEvent> {
        std::mem::take(&mut *self.events.borrow_mut())
    }

    /// Attaches one telemetry registry to the whole network. Replica
    /// metrics are labeled `"replica0"`, `"replica1"`, … so one snapshot
    /// distinguishes the partitions.
    pub fn enable_telemetry(&mut self, registry: std::sync::Arc<p4auth_telemetry::Registry>) {
        self.sim.set_telemetry(registry.clone());
        self.set.borrow_mut().set_telemetry(registry.clone());
        for agent in self.switches.values() {
            agent.borrow_mut().set_telemetry(registry.clone());
        }
        *self.registry.borrow_mut() = Some(registry);
    }

    /// Attaches a snapshot ring of `capacity`; the orchestration tick
    /// samples it automatically.
    ///
    /// # Panics
    ///
    /// If [`ReplicatedNetwork::enable_telemetry`] has not been called
    /// first.
    pub fn enable_snapshot_ring(&mut self, capacity: usize) {
        assert!(
            self.registry.borrow().is_some(),
            "enable_telemetry must be called before enable_snapshot_ring"
        );
        *self.ring.borrow_mut() = Some(p4auth_telemetry::SnapshotRing::new(capacity));
    }

    /// Pushes the current registry snapshot into the ring, stamped with
    /// the simulator clock (the orchestration tick also does this).
    pub fn sample_ring(&mut self) {
        let mut ring = self.ring.borrow_mut();
        let registry = self.registry.borrow();
        if let (Some(ring), Some(registry)) = (ring.as_mut(), registry.as_ref()) {
            ring.push(self.sim.now().as_ns(), registry.snapshot());
        }
    }

    /// The shared snapshot-ring slot, if one was enabled.
    pub fn ring(&self) -> SharedRing {
        self.ring.clone()
    }

    /// Arms the rate-driven defence on every replica: each replica's
    /// defence daemon consumes the ring's windowed `*_per_sec` reject
    /// rates (via the shared state table) and mitigates crossings on the
    /// channels it owns. Starts the orchestration tick.
    ///
    /// With the defence armed the tick re-arms forever — drive the
    /// simulation with `run_until`, not `run_to_completion`.
    pub fn enable_defence_rate_driven(&mut self, config: DefenceConfig, threshold: u64) {
        self.set
            .borrow_mut()
            .enable_defence_rate_driven(config, threshold);
        self.arm_orchestrator();
    }

    /// Starts the next versioned bulk key-rollover epoch and the
    /// orchestration tick that fans it out. Returns the epoch, or `None`
    /// while a previous epoch is still incomplete.
    pub fn start_bulk_rollover(&mut self) -> Option<u64> {
        let now_ns = self.sim.now().as_ns();
        let epoch = self.set.borrow_mut().start_bulk_rollover(now_ns);
        if epoch.is_some() {
            self.arm_orchestrator();
        }
        epoch
    }

    /// Schedules the ORCH timer if no chain is already live (the chain
    /// re-arms itself while there is work; double-arming would
    /// double-step every replica each period).
    fn arm_orchestrator(&mut self) {
        if !self.orch_armed.get() {
            self.orch_armed.set(true);
            self.sim
                .schedule_timer(SwitchId::CONTROLLER, ORCH_TIMER, ORCH_PERIOD_NS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4auth_netsim::topology::Topology;

    fn network(n: u16) -> Network {
        Network::build(
            Topology::chain(n, 1_000, 200_000),
            ControllerConfig::default(),
            0xb007_5eed,
            |_| None,
            |_, c| c,
        )
    }

    #[test]
    fn bootstrap_establishes_all_keys() {
        let mut net = network(3);
        net.bootstrap_keys();
        for (id, sw) in &net.switches {
            assert!(
                sw.borrow().keys().local().is_installed(),
                "local key missing on {id}"
            );
        }
        // Chain: S1:p2 <-> S2:p1, S2:p2 <-> S3:p1.
        assert!(net.switches[&SwitchId::new(1)]
            .borrow()
            .keys()
            .port(PortId::new(2))
            .is_installed());
        assert!(net.switches[&SwitchId::new(2)]
            .borrow()
            .keys()
            .port(PortId::new(1))
            .is_installed());
        assert!(net.switches[&SwitchId::new(2)]
            .borrow()
            .keys()
            .port(PortId::new(2))
            .is_installed());
        assert!(net.switches[&SwitchId::new(3)]
            .borrow()
            .keys()
            .port(PortId::new(1))
            .is_installed());
    }

    #[test]
    fn replicated_bootstrap_establishes_all_keys_across_partitions() {
        let mut net = ReplicatedNetwork::build(
            Topology::chain(4, 1_000, 200_000),
            2,
            ControllerConfig::default(),
            0xb007_5eed,
            |_| None,
            |_, c| c,
        );
        // The partition hash must actually split the fleet, otherwise
        // this exercises nothing replicated.
        {
            let set = net.set.borrow();
            assert!(set.replicas().iter().all(|r| !r.owned().is_empty()));
        }
        net.bootstrap_keys();
        for (id, sw) in &net.switches {
            assert!(
                sw.borrow().keys().local().is_installed(),
                "local key missing on {id}"
            );
        }
        // Chain DP-DP links: S1:p2<->S2:p1, S2:p2<->S3:p1, S3:p2<->S4:p1.
        // At least one of these crosses a partition boundary (4 switches,
        // 2 non-empty partitions), so the redirect + seq-handoff path ran.
        let set = net.set.borrow();
        let crossings = [(1u16, 2u16), (2, 3), (3, 4)]
            .iter()
            .filter(|&&(a, b)| set.owner(SwitchId::new(a)) != set.owner(SwitchId::new(b)))
            .count();
        assert!(crossings > 0, "chain never crossed a partition");
        for sw in [1u16, 2, 3] {
            assert!(net.switches[&SwitchId::new(sw)]
                .borrow()
                .keys()
                .port(PortId::new(2))
                .is_installed());
            assert!(net.switches[&SwitchId::new(sw + 1)]
                .borrow()
                .keys()
                .port(PortId::new(1))
                .is_installed());
        }
    }

    #[test]
    fn replicated_bulk_rollover_converges_and_records_fanout() {
        let registry = std::sync::Arc::new(p4auth_telemetry::Registry::new());
        let mut net = ReplicatedNetwork::build(
            Topology::chain(4, 1_000, 200_000),
            2,
            ControllerConfig::default(),
            0xb007_5eed,
            |_| None,
            |_, c| c,
        );
        net.enable_telemetry(registry.clone());
        net.bootstrap_keys();

        let epoch = net.start_bulk_rollover().expect("first epoch starts");
        assert_eq!(epoch, 1);
        // A second epoch must be refused while the first is in flight.
        assert_eq!(net.start_bulk_rollover(), None);
        net.sim.run_to_completion();

        let set = net.set.borrow();
        assert!(set.rollover_complete(), "epoch 1 must converge");
        // Every local key moved exactly one version past INITIAL.
        for r in set.replicas() {
            for &sw in r.owned() {
                let (_, v) = r.core.local_key_material(sw).expect("key established");
                assert_eq!(v.value(), 1, "exactly one rollover for {sw}");
            }
        }
        drop(set);
        // Fan-out latency landed in telemetry, labeled per replica.
        let snap = registry.snapshot();
        let fanouts: usize = (0..2)
            .filter(|i| {
                snap.histogram("ctrl_rollover_fanout_ns", &format!("replica{i}"))
                    .map(|h| h.count > 0)
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(fanouts, 2, "both partitions record fan-out latency");
    }

    #[test]
    fn schedulers_produce_identical_bootstraps() {
        // The full key-management bootstrap — timers, retries,
        // bidirectional exchanges — must land on the same simulated
        // timeline under both schedulers.
        let run = |kind: SchedulerKind| {
            let mut net = Network::build_with_scheduler(
                Topology::chain(4, 1_000, 200_000),
                kind,
                ControllerConfig::default(),
                0xb007_5eed,
                |_| None,
                |_, c| c,
            );
            assert_eq!(net.sim.scheduler_kind(), kind);
            let took = net.bootstrap_keys();
            net.controller_write(SwitchId::new(2), RegId::new(5), 0, 9);
            net.sim.run_to_completion();
            (took, net.sim.now(), net.sim.stats())
        };
        assert_eq!(run(SchedulerKind::Heap), run(SchedulerKind::Calendar));
    }

    #[test]
    fn telemetry_spans_sim_controller_and_agents() {
        let registry = std::sync::Arc::new(p4auth_telemetry::Registry::with_event_capacity(1024));
        let mut net = network(2);
        net.enable_telemetry(registry.clone());
        net.bootstrap_keys();

        // One authenticated write over the C-DP channel. The fixture maps no
        // registers, so the switch nacks it as UnknownRegister — but the
        // request and response still authenticate end to end, which is what
        // the latency histogram measures.
        net.controller_write(SwitchId::new(1), RegId::new(1234), 0, 7);
        net.sim.run_until(SimTime::from_ns(10_000_000));

        let snap = registry.snapshot();
        // The bootstrap plus the write exercised every layer.
        assert!(snap.counter_total("sim_frames_delivered") > 0);
        assert!(snap.counter_total("auth_verify_ok") > 0);
        assert!(snap.counter("auth_verify_ok", "S1").unwrap_or(0) > 0);
        assert!(snap.counter("auth_verify_ok", "controller").unwrap_or(0) > 0);
        assert_eq!(snap.counter("ctrl_requests_sent", "controller"), Some(1));
        assert_eq!(snap.counter("ctrl_responses_ok", "controller"), Some(1));
        let hist = snap.histogram("ctrl_register_op_ns", "controller").unwrap();
        assert_eq!(hist.count, 1);
        // RTT includes two link crossings plus processing; strictly positive
        // sim-ns.
        assert!(hist.min > 0);
        // Key bootstrap emitted KeyDerived events on both sides.
        let kinds: Vec<&'static str> = registry
            .events()
            .to_vec()
            .iter()
            .map(|r| r.event.kind())
            .collect();
        assert!(kinds.contains(&"key_derived"));
        assert!(kinds.contains(&"kex_step"));
        assert!(kinds.contains(&"frame_delivered"));
    }

    #[test]
    fn defence_rolls_key_under_forged_flood_and_spares_clean_channel() {
        use p4auth_primitives::Digest32;
        use p4auth_wire::body::{Body, RegisterOp};
        use p4auth_wire::ids::SeqNum;
        use p4auth_wire::Message;

        let registry = std::sync::Arc::new(p4auth_telemetry::Registry::with_event_capacity(2048));
        let mut net = network(2);
        net.enable_telemetry(registry.clone());
        net.bootstrap_keys();
        net.enable_defence(DefenceConfig::default());

        // Forged responses claiming to come from S1, injected on its C-DP
        // front-panel port (63 in Topology::chain).
        let s1 = SwitchId::new(1);
        for i in 0..8u32 {
            let mut msg = Message::new(
                s1,
                PortId::CPU,
                SeqNum::new(40_000 + i),
                Body::Register(RegisterOp::Ack {
                    reg: RegId::new(9),
                    index: 0,
                    value: u64::from(i),
                }),
            );
            msg.header_mut().digest = Digest32::new(0xdead_0000 + i);
            net.sim.inject_frame(s1, PortId::new(63), msg.encode());
        }
        net.sim
            .run_until(SimTime::from_ns(net.sim.now().as_ns() + 200_000_000));

        let events = net.take_events();
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, ControllerEvent::DefenceMitigated { .. }))
                .count(),
            1,
            "one threshold crossing, one mitigation"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, ControllerEvent::LocalKeyRolled(sw) if *sw == s1)),
            "the victim's local key must roll automatically"
        );
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("ctrl_defence_mitigations", "controller"),
            Some(1)
        );
        let hist = snap
            .histogram("defence_mitigation_latency_ns", "controller")
            .expect("latency histogram registered");
        assert_eq!(hist.count, 1);
        assert!(hist.min > 0, "latency measured in sim-ns");

        // The untouched channel (S2) keeps flowing: a controller request
        // still round-trips (the fixture maps no registers, so the answer
        // is an UnknownRegister nack — but it authenticates end to end).
        let responses_before = snap.counter("ctrl_responses_ok", "controller").unwrap_or(0);
        net.controller_write(SwitchId::new(2), RegId::new(1), 0, 7);
        net.sim
            .run_until(SimTime::from_ns(net.sim.now().as_ns() + 50_000_000));
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("ctrl_responses_ok", "controller"),
            Some(responses_before + 1)
        );
    }

    #[test]
    fn snapshot_ring_turns_reject_counts_into_windowed_rates() {
        use p4auth_primitives::Digest32;
        use p4auth_wire::body::{Body, RegisterOp};
        use p4auth_wire::ids::SeqNum;
        use p4auth_wire::Message;

        let registry = std::sync::Arc::new(p4auth_telemetry::Registry::new());
        let mut net = network(2);
        net.enable_telemetry(registry.clone());
        net.enable_snapshot_ring(8);
        net.bootstrap_keys();
        net.sample_ring(); // window start, after the (noisy) bootstrap

        // A forged-response flood on S1's C-DP channel: every frame is a
        // bad-digest reject at the controller.
        let s1 = SwitchId::new(1);
        for i in 0..20u32 {
            let mut msg = Message::new(
                s1,
                PortId::CPU,
                SeqNum::new(70_000 + i),
                Body::Register(RegisterOp::Ack {
                    reg: RegId::new(9),
                    index: 0,
                    value: u64::from(i),
                }),
            );
            msg.header_mut().digest = Digest32::new(0xbad0_0000 + i);
            net.sim.inject_frame(s1, PortId::new(63), msg.encode());
        }
        // One second of sim time makes the expected rate easy to read.
        net.sim
            .run_until(SimTime::from_ns(net.sim.now().as_ns() + 1_000_000_000));
        net.sample_ring();

        let ring = net.snapshot_ring().expect("ring enabled");
        assert_eq!(ring.len(), 2);
        let rate = ring
            .rate("auth_reject_bad_digest", "controller")
            .expect("reject series present in the window");
        // 20 rejects over ~1s of sim time: comfortably positive, and no
        // more than the frames injected.
        assert!(rate > 1.0, "rate was {rate}");
        assert!(rate <= 20.5, "rate was {rate}");
        let gauges = ring.rate_gauges();
        assert!(gauges
            .iter()
            .any(|g| g.name == "auth_reject_bad_digest_per_sec" && g.value > 0));
    }
}
