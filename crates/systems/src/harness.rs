//! Simulation harness: adapters that mount P4Auth agents and the
//! controller on the network simulator, plus a network builder that runs
//! the key-management bootstrap.

use p4auth_controller::{
    Controller, ControllerConfig, ControllerEvent, DefenceConfig, MitigationKind, Outgoing,
};
use p4auth_core::agent::{AgentConfig, AgentEvent, InNetworkApp, P4AuthSwitch};
use p4auth_netsim::frame::FrameBytes;
use p4auth_netsim::sim::{Outbox, SimNode, Simulator, TopologyEvent};
use p4auth_netsim::time::SimTime;
use p4auth_netsim::topology::Topology;

pub use p4auth_netsim::sched::SchedulerKind;
pub use p4auth_netsim::topology::HOST_ID_BASE;
use p4auth_primitives::Key64;
use p4auth_wire::ids::{PortId, RegId, SwitchId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Whether a link connects two switch data planes (as opposed to touching
/// the controller or a host).
fn is_dp_dp_link(l: &p4auth_netsim::topology::Link) -> bool {
    let is_switch = |id: SwitchId| !id.is_controller() && id.value() < HOST_ID_BASE;
    is_switch(l.a.node) && is_switch(l.b.node)
}

/// Shared handle to a switch agent (the harness keeps one, the sim node
/// keeps the other).
pub type SharedSwitch = Rc<RefCell<P4AuthSwitch>>;
/// Shared handle to the controller.
pub type SharedController = Rc<RefCell<Controller>>;

/// Extra controller-side processing delay per message (the Python agent of
/// the prototype); applied by the controller node when transmitting.
pub const CONTROLLER_PROC_NS: u64 = 150_000;

/// A [`SimNode`] wrapping a [`P4AuthSwitch`]. Frames are processed by the
/// agent; outputs are transmitted after the agent's modelled processing
/// cost.
///
/// The agent addresses the control plane through its logical CPU port
/// (port 0, a PCIe channel on real hardware); in the simulated topology the
/// C-DP link hangs off a front-panel port (`cpu_netport`). The node
/// translates between the two.
pub struct SwitchNode {
    id: SwitchId,
    agent: SharedSwitch,
    cpu_netport: Option<PortId>,
    /// Controller handle for reporting DP-DP port-key completions (the
    /// controller only redirects port-key legs and never sees them
    /// finish; the defence loop needs the completion for its
    /// detection-to-mitigation latency accounting).
    controller: Option<SharedController>,
}

impl SwitchNode {
    /// Wraps a shared agent; `cpu_netport` is the topology port carrying
    /// the C-DP channel (if any).
    pub fn new(
        id: SwitchId,
        agent: SharedSwitch,
        cpu_netport: Option<PortId>,
        controller: Option<SharedController>,
    ) -> Self {
        SwitchNode {
            id,
            agent,
            cpu_netport,
            controller,
        }
    }
}

impl SimNode for SwitchNode {
    fn on_frame(&mut self, now: SimTime, ingress: PortId, payload: FrameBytes, out: &mut Outbox) {
        let logical_ingress = if Some(ingress) == self.cpu_netport {
            PortId::CPU
        } else {
            ingress
        };
        let output = self
            .agent
            .borrow_mut()
            .on_packet(now.as_ns(), logical_ingress, &payload);
        if let Some(controller) = &self.controller {
            for ev in &output.events {
                if let AgentEvent::KeyInstalled { port } | AgentEvent::KeyRolled { port } = ev {
                    if !port.is_cpu() {
                        let mut c = controller.borrow_mut();
                        c.set_now(now.as_ns());
                        c.notify_port_key_installed(self.id, *port);
                    }
                }
            }
        }
        for (port, bytes) in output.outputs {
            let physical = if port.is_cpu() {
                match self.cpu_netport {
                    Some(p) => p,
                    None => continue, // no control channel attached
                }
            } else {
                port
            };
            out.send_delayed(physical, bytes, output.cost_ns);
        }
    }
}

/// A scheduled periodic key-rollover plan (§VI-C: keys are updated
/// "automatically ... at regular intervals").
#[derive(Clone, Debug, Default)]
pub struct RolloverPlan {
    /// Rollover period in nanoseconds of simulated time.
    pub period_ns: u64,
    /// Switches whose local keys roll.
    pub switches: Vec<SwitchId>,
    /// DP-DP links whose port keys roll: `(initiator, initiator port,
    /// responder)`.
    pub links: Vec<(SwitchId, PortId, SwitchId)>,
}

/// Shared handle to the (optional) rollover plan.
pub type SharedRollover = Rc<RefCell<Option<RolloverPlan>>>;

/// Timer id the controller node uses for periodic rollover.
pub const ROLLOVER_TIMER: u64 = 0x5011;

/// Timer id used by [`TrafficSource`].
const TRAFFIC_TIMER: u64 = 0x7a1c;

/// A host that transmits a pre-computed schedule of frames at their
/// timestamps (the simulator-side equivalent of a packet replay tool).
pub struct TrafficSource {
    /// `(transmit time ns, egress port, frame)` sorted by time.
    schedule: std::collections::VecDeque<(u64, PortId, Vec<u8>)>,
}

impl TrafficSource {
    /// Creates a source from a schedule (sorted by the caller).
    pub fn new(schedule: Vec<(u64, PortId, Vec<u8>)>) -> Self {
        TrafficSource {
            schedule: schedule.into(),
        }
    }

    fn arm_next(&self, now: SimTime, out: &mut Outbox) {
        if let Some(&(at, _, _)) = self.schedule.front() {
            out.set_timer(TRAFFIC_TIMER, at.saturating_sub(now.as_ns()).max(1));
        }
    }
}

/// Callback invoked by a [`SinkHost`] for every arriving frame.
pub type ArrivalCallback = Box<dyn FnMut(SimTime, PortId, &[u8])>;

/// A host that records every arriving frame via a callback (e.g. for
/// flow-completion measurements at the receiver side of a bottleneck).
pub struct SinkHost {
    on_arrival: ArrivalCallback,
}

impl SinkHost {
    /// Creates a sink with an arrival callback.
    pub fn new(on_arrival: ArrivalCallback) -> Self {
        SinkHost { on_arrival }
    }
}

impl SimNode for SinkHost {
    fn on_frame(&mut self, now: SimTime, ingress: PortId, payload: FrameBytes, _out: &mut Outbox) {
        (self.on_arrival)(now, ingress, &payload);
    }
}

impl SimNode for TrafficSource {
    fn on_frame(
        &mut self,
        _now: SimTime,
        _ingress: PortId,
        _payload: FrameBytes,
        _out: &mut Outbox,
    ) {
        // Hosts sink whatever comes back.
    }

    fn on_timer(&mut self, now: SimTime, timer_id: u64, out: &mut Outbox) {
        if timer_id != TRAFFIC_TIMER {
            return;
        }
        while let Some(&(at, port, _)) = self.schedule.front() {
            if at > now.as_ns() {
                break;
            }
            let (_, _, frame) = self.schedule.pop_front().expect("peeked");
            out.send(port, frame);
        }
        self.arm_next(now, out);
    }
}

/// A [`SimNode`] wrapping the [`Controller`]. The controller reaches switch
/// `i` through its own port `i - 1` (matching [`Topology::chain`] and the
/// builder below).
pub struct ControllerNode {
    controller: SharedController,
    events: Rc<RefCell<Vec<ControllerEvent>>>,
    rollover: SharedRollover,
    /// DP-DP adjacency: `(switch, port)` → peer switch, for translating
    /// defence mitigations on port channels into `portKeyUpdate` messages.
    links: HashMap<(SwitchId, PortId), SwitchId>,
    /// Agent handles, for flipping agent-side quarantine enforcement.
    switches: HashMap<SwitchId, SharedSwitch>,
}

impl ControllerNode {
    /// Wraps a shared controller; `events` accumulates everything observed.
    /// `links` maps `(switch, port)` to the peer switch for every DP-DP
    /// link and `switches` holds the agent handles — both may be empty
    /// when the adaptive defence loop is unused.
    pub fn new(
        controller: SharedController,
        events: Rc<RefCell<Vec<ControllerEvent>>>,
        rollover: SharedRollover,
        links: HashMap<(SwitchId, PortId), SwitchId>,
        switches: HashMap<SwitchId, SharedSwitch>,
    ) -> Self {
        ControllerNode {
            controller,
            events,
            rollover,
            links,
            switches,
        }
    }

    /// Turns defence mitigations on DP-DP port channels into wire actions:
    /// flips agent-side quarantine enforcement and issues the port-key
    /// rollover that (on completion) lifts it.
    fn apply_port_actions(&self, controller: &mut Controller, outgoing: &mut Vec<Outgoing>) {
        for action in controller.take_port_actions() {
            if action.kind == MitigationKind::Quarantine {
                if let Some(agent) = self.switches.get(&action.peer) {
                    agent
                        .borrow_mut()
                        .set_channel_quarantine(action.channel, true);
                }
            }
            if let Some(&peer) = self.links.get(&(action.peer, action.channel)) {
                outgoing.extend(controller.port_key_update(action.peer, action.channel, peer));
            }
        }
    }

    /// The controller-side port used to reach `switch`.
    pub fn port_for(switch: SwitchId) -> PortId {
        PortId::new((switch.value() - 1) as u8)
    }

    /// The switch reached through controller port `port`.
    pub fn switch_for(port: PortId) -> SwitchId {
        SwitchId::new(port.value() as u16 + 1)
    }

    fn transmit(out: &mut Outbox, outgoing: Vec<Outgoing>) {
        for o in outgoing {
            out.send_delayed(Self::port_for(o.to), o.bytes, CONTROLLER_PROC_NS);
        }
    }
}

impl SimNode for ControllerNode {
    fn on_frame(&mut self, now: SimTime, ingress: PortId, payload: FrameBytes, out: &mut Outbox) {
        let from = Self::switch_for(ingress);
        let (outgoing, events) = {
            let mut controller = self.controller.borrow_mut();
            controller.set_now(now.as_ns());
            let (mut outgoing, events) = controller.on_message(from, &payload);
            self.apply_port_actions(&mut controller, &mut outgoing);
            (outgoing, events)
        };
        self.events.borrow_mut().extend(events);
        Self::transmit(out, outgoing);
    }

    fn on_timer(&mut self, now: SimTime, timer_id: u64, out: &mut Outbox) {
        if timer_id != ROLLOVER_TIMER {
            return;
        }
        let Some(plan) = self.rollover.borrow().clone() else {
            return;
        };
        let mut controller = self.controller.borrow_mut();
        controller.set_now(now.as_ns());
        // Also re-drive anything a lost message stalled last period.
        let mut outgoing = controller.retry_stalled();
        for &sw in &plan.switches {
            if controller.has_local_key(sw) {
                outgoing.extend(controller.local_key_update(sw));
            }
        }
        for &(sw1, port1, sw2) in &plan.links {
            outgoing.extend(controller.port_key_update(sw1, port1, sw2));
        }
        self.apply_port_actions(&mut controller, &mut outgoing);
        drop(controller);
        Self::transmit(out, outgoing);
        out.set_timer(ROLLOVER_TIMER, plan.period_ns);
    }

    fn on_topology(&mut self, _now: SimTime, event: TopologyEvent, out: &mut Outbox) {
        // §VI-C: a link-up event (LLDP-detected "port active") triggers
        // port-key initialization between the two data planes.
        if let TopologyEvent::LinkUp { a, b, .. } = event {
            let is_switch = |id: SwitchId| !id.is_controller() && id.value() < HOST_ID_BASE;
            if !is_switch(a.node) || !is_switch(b.node) {
                return;
            }
            let outgoing = self
                .controller
                .borrow_mut()
                .port_key_init(a.node, a.port, b.node, b.port);
            Self::transmit(out, outgoing);
        }
    }
}

/// A built P4Auth network: simulator + shared handles.
pub struct Network {
    /// The simulator (topology, taps, clock).
    pub sim: Simulator,
    /// Shared agent handles by switch id.
    pub switches: HashMap<SwitchId, SharedSwitch>,
    /// Shared controller handle.
    pub controller: SharedController,
    /// Controller events accumulated during the run.
    pub events: Rc<RefCell<Vec<ControllerEvent>>>,
    rollover: SharedRollover,
    registry: Option<std::sync::Arc<p4auth_telemetry::Registry>>,
    ring: Option<p4auth_telemetry::SnapshotRing>,
}

impl Network {
    /// Builds a network over `topology`. `make_app` produces the in-network
    /// app for each switch (or `None`); `configure` lets the caller adjust
    /// each agent's config (e.g. disable auth for baselines).
    ///
    /// Every switch is registered with the controller using a per-switch
    /// `K_seed` derived from `seed_base`.
    pub fn build(
        topology: Topology,
        controller_config: ControllerConfig,
        seed_base: u64,
        make_app: impl FnMut(SwitchId) -> Option<Box<dyn InNetworkApp>>,
        configure: impl FnMut(SwitchId, AgentConfig) -> AgentConfig,
    ) -> Network {
        Network::build_with_scheduler(
            topology,
            SchedulerKind::default(),
            controller_config,
            seed_base,
            make_app,
            configure,
        )
    }

    /// Like [`Network::build`] but with an explicit event-scheduler choice
    /// (the calendar queue and the reference heap produce bit-identical
    /// runs; the heap exists for differential testing).
    pub fn build_with_scheduler(
        topology: Topology,
        scheduler: SchedulerKind,
        controller_config: ControllerConfig,
        seed_base: u64,
        mut make_app: impl FnMut(SwitchId) -> Option<Box<dyn InNetworkApp>>,
        mut configure: impl FnMut(SwitchId, AgentConfig) -> AgentConfig,
    ) -> Network {
        let mut sim = Simulator::with_scheduler(topology, scheduler);
        let mut switches = HashMap::new();
        let controller = Rc::new(RefCell::new(Controller::new(controller_config)));
        let events = Rc::new(RefCell::new(Vec::new()));
        let rollover: SharedRollover = Rc::new(RefCell::new(None));

        let node_ids: Vec<SwitchId> = sim.topology().nodes().to_vec();
        let mut has_controller = false;
        for id in node_ids {
            if id.value() >= HOST_ID_BASE {
                continue; // hosts get their behaviour attached separately
            }
            if id.is_controller() {
                has_controller = true; // registered below, once agents exist
                continue;
            }
            let k_seed =
                Key64::new(seed_base ^ (id.value() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            controller.borrow_mut().register_switch(id, k_seed);
            let neighbors = sim.topology().neighbors(id);
            // The front-panel port carrying the C-DP channel, if any.
            let cpu_netport = neighbors
                .iter()
                .find(|(_, ep)| ep.node.is_controller())
                .map(|(p, _)| *p);
            // Port count: highest *data* port number used in the topology.
            let max_port = neighbors
                .iter()
                .filter(|(_, ep)| !ep.node.is_controller())
                .map(|(p, _)| p.value())
                .max()
                .unwrap_or(1);
            let config = configure(id, AgentConfig::new(id, max_port, k_seed));
            let agent = Rc::new(RefCell::new(P4AuthSwitch::new(config, make_app(id))));
            switches.insert(id, agent.clone());
            sim.register_node(
                id,
                Box::new(SwitchNode::new(
                    id,
                    agent,
                    cpu_netport,
                    Some(controller.clone()),
                )),
            );
        }
        if has_controller {
            // DP-DP adjacency for translating port-channel defence
            // mitigations into portKeyUpdate messages.
            let mut links = HashMap::new();
            for l in sim.topology().links() {
                if is_dp_dp_link(l) {
                    links.insert((l.a.node, l.a.port), l.b.node);
                    links.insert((l.b.node, l.b.port), l.a.node);
                }
            }
            sim.register_node(
                SwitchId::CONTROLLER,
                Box::new(ControllerNode::new(
                    controller.clone(),
                    events.clone(),
                    rollover.clone(),
                    links,
                    switches.clone(),
                )),
            );
        }

        Network {
            sim,
            switches,
            controller,
            events,
            rollover,
            registry: None,
            ring: None,
        }
    }

    /// Arms the controller's telemetry-driven adaptive defence loop:
    /// forged-digest / replay floods on one `(peer, channel)` trigger an
    /// automatic key rollover, escalating to channel quarantine if the
    /// rollover does not stop the flood. CPU-channel mitigations are
    /// handled by the controller itself; port-channel mitigations are
    /// translated by the [`ControllerNode`] (which knows the DP-DP
    /// adjacency) into `portKeyUpdate` messages plus agent-side
    /// quarantine enforcement. Detection-to-mitigation latency lands in
    /// the `defence_mitigation_latency_ns` telemetry histogram.
    pub fn enable_defence(&mut self, config: DefenceConfig) {
        self.controller.borrow_mut().enable_defence(config);
    }

    /// Enables automatic periodic key rollover (§VI-C): every `period_ns`
    /// of simulated time the controller rolls every local key and every
    /// port key, retrying anything a lost message stalled. Call after
    /// [`Network::bootstrap_keys`].
    pub fn enable_periodic_rollover(&mut self, period_ns: u64) {
        let switches: Vec<SwitchId> = {
            let mut s: Vec<SwitchId> = self.switches.keys().copied().collect();
            s.sort();
            s
        };
        let links = self
            .sim
            .topology()
            .links()
            .iter()
            .filter(|l| is_dp_dp_link(l))
            .map(|l| (l.a.node, l.a.port, l.b.node))
            .collect();
        *self.rollover.borrow_mut() = Some(RolloverPlan {
            period_ns,
            switches,
            links,
        });
        self.sim
            .schedule_timer(SwitchId::CONTROLLER, ROLLOVER_TIMER, period_ns);
    }

    /// Stops periodic rollover: the pending timer fires once more as a
    /// no-op and the chain ends (after which `run_to_completion` drains).
    pub fn disable_periodic_rollover(&mut self) {
        *self.rollover.borrow_mut() = None;
    }

    /// Registers a [`SinkHost`] on host node `host`.
    ///
    /// # Panics
    ///
    /// Panics if the node is missing from the topology or already
    /// registered.
    pub fn attach_sink(&mut self, host: SwitchId, on_arrival: ArrivalCallback) {
        assert!(host.value() >= HOST_ID_BASE, "sinks live on host ids");
        self.sim
            .register_node(host, Box::new(SinkHost::new(on_arrival)));
    }

    /// Registers a [`TrafficSource`] on host node `host` (id ≥
    /// [`HOST_ID_BASE`], present in the topology) and arms its first
    /// transmission.
    ///
    /// # Panics
    ///
    /// Panics if the node is missing from the topology or already
    /// registered.
    pub fn attach_traffic_source(&mut self, host: SwitchId, schedule: Vec<(u64, PortId, Vec<u8>)>) {
        assert!(
            host.value() >= HOST_ID_BASE,
            "traffic sources live on host ids"
        );
        let first = schedule.first().map(|&(at, _, _)| at);
        self.sim
            .register_node(host, Box::new(TrafficSource::new(schedule)));
        if let Some(at) = first {
            let delay = at.saturating_sub(self.sim.now().as_ns()).max(1);
            self.sim.schedule_timer(host, TRAFFIC_TIMER, delay);
        }
    }

    /// Runs the key-management bootstrap: local-key initialization for every
    /// switch, then port-key initialization for every DP-DP link, driving
    /// the simulator until all exchanges complete. Returns the simulated
    /// time the bootstrap took.
    ///
    /// # Panics
    ///
    /// Panics if any key fails to establish (a protocol bug or an active
    /// adversary during bootstrap).
    pub fn bootstrap_keys(&mut self) -> SimTime {
        let start = self.sim.now();
        // Sorted so the bootstrap exchange order (and any attached telemetry
        // event log) is identical run to run despite HashMap iteration order.
        let switch_ids: Vec<SwitchId> = {
            let mut s: Vec<SwitchId> = self.switches.keys().copied().collect();
            s.sort();
            s
        };
        for &id in &switch_ids {
            let outgoing = self.controller.borrow_mut().local_key_init(id);
            self.send_from_controller(outgoing);
        }
        self.sim.run_to_completion();
        for &id in &switch_ids {
            assert!(
                self.controller.borrow().has_local_key(id),
                "local key init failed for {id}"
            );
        }

        // Port keys for every DP-DP link (host attachment links are not
        // switch-to-switch and carry no port keys).
        let links: Vec<_> = self
            .sim
            .topology()
            .links()
            .iter()
            .filter(|l| is_dp_dp_link(l))
            .copied()
            .collect();
        for link in links {
            let outgoing = self.controller.borrow_mut().port_key_init(
                link.a.node,
                link.a.port,
                link.b.node,
                link.b.port,
            );
            self.send_from_controller(outgoing);
            self.sim.run_to_completion();
        }

        for link in self.sim.topology().links() {
            if !is_dp_dp_link(link) {
                continue;
            }
            for (node, port) in [(link.a.node, link.a.port), (link.b.node, link.b.port)] {
                assert!(
                    self.switches[&node]
                        .borrow()
                        .keys()
                        .port(port)
                        .is_installed(),
                    "port key init failed for {node}:{port}"
                );
            }
        }
        SimTime::from_ns(self.sim.now().since(start))
    }

    /// Transmits controller-originated messages with the controller's
    /// processing delay, so injected traffic never overtakes frames the
    /// controller node emitted in the same instant (sequence numbers are
    /// per channel and FIFO).
    pub fn send_from_controller(&mut self, outgoing: Vec<p4auth_controller::Outgoing>) {
        for o in outgoing {
            self.sim.inject_frame_delayed(
                SwitchId::CONTROLLER,
                ControllerNode::port_for(o.to),
                o.bytes,
                CONTROLLER_PROC_NS,
            );
        }
    }

    /// Sends a controller-originated register read into the network.
    pub fn controller_read(&mut self, switch: SwitchId, reg: RegId, index: u32) {
        let now_ns = self.sim.now().as_ns();
        let o = {
            let mut controller = self.controller.borrow_mut();
            controller.set_now(now_ns);
            controller.read_register(switch, reg, index)
        };
        self.send_from_controller(vec![o]);
    }

    /// Sends a controller-originated register write into the network.
    pub fn controller_write(&mut self, switch: SwitchId, reg: RegId, index: u32, value: u64) {
        let now_ns = self.sim.now().as_ns();
        let o = {
            let mut controller = self.controller.borrow_mut();
            controller.set_now(now_ns);
            controller.write_register(switch, reg, index, value)
        };
        self.send_from_controller(vec![o]);
    }

    /// Injects an in-network control message (e.g. a HULA probe) originated
    /// by `switch` out of `port`, sealed with that port's key.
    ///
    /// # Panics
    ///
    /// Panics if sealing fails (no port key while auth is enabled).
    pub fn originate_probe(
        &mut self,
        switch: SwitchId,
        port: PortId,
        system: u8,
        payload: Vec<u8>,
    ) {
        let bytes = self.switches[&switch]
            .borrow_mut()
            .seal_probe(port, system, payload)
            .expect("probe sealing requires an installed port key");
        self.sim.inject_frame(switch, port, bytes);
    }

    /// Injects a raw data frame originated by `switch` out of `port`.
    pub fn inject_data(&mut self, switch: SwitchId, port: PortId, bytes: Vec<u8>) {
        self.sim.inject_frame(switch, port, bytes);
    }

    /// Drains accumulated controller events.
    pub fn take_events(&mut self) -> Vec<ControllerEvent> {
        std::mem::take(&mut *self.events.borrow_mut())
    }

    /// Attaches one telemetry registry to the whole network: the simulator,
    /// the controller, and every agent (which forwards to its chassis).
    /// Metrics are labeled by component (`"controller"`, `"S1"`, …) so one
    /// [`p4auth_telemetry::Snapshot`] covers the full system.
    pub fn enable_telemetry(&mut self, registry: std::sync::Arc<p4auth_telemetry::Registry>) {
        self.sim.set_telemetry(registry.clone());
        self.controller.borrow_mut().set_telemetry(registry.clone());
        for agent in self.switches.values() {
            agent.borrow_mut().set_telemetry(registry.clone());
        }
        self.registry = Some(registry);
    }

    /// Attaches a [`p4auth_telemetry::SnapshotRing`] holding the last
    /// `capacity` snapshots, keyed by sim-ns. Call [`Network::sample_ring`]
    /// at the observation cadence; windowed rates (e.g. per-channel reject
    /// rates for the defence loop) then come from
    /// [`p4auth_telemetry::SnapshotRing::rate_gauges`].
    ///
    /// # Panics
    ///
    /// If [`Network::enable_telemetry`] has not been called first.
    pub fn enable_snapshot_ring(&mut self, capacity: usize) {
        assert!(
            self.registry.is_some(),
            "enable_telemetry must be called before enable_snapshot_ring"
        );
        self.ring = Some(p4auth_telemetry::SnapshotRing::new(capacity));
    }

    /// Pushes the current registry snapshot into the ring, stamped with the
    /// simulator clock. No-op unless [`Network::enable_snapshot_ring`] was
    /// called.
    pub fn sample_ring(&mut self) {
        if let (Some(ring), Some(registry)) = (&mut self.ring, &self.registry) {
            ring.push(self.sim.now().as_ns(), registry.snapshot());
        }
    }

    /// The snapshot ring, if enabled.
    pub fn snapshot_ring(&self) -> Option<&p4auth_telemetry::SnapshotRing> {
        self.ring.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4auth_netsim::topology::Topology;

    fn network(n: u16) -> Network {
        Network::build(
            Topology::chain(n, 1_000, 200_000),
            ControllerConfig::default(),
            0xb007_5eed,
            |_| None,
            |_, c| c,
        )
    }

    #[test]
    fn bootstrap_establishes_all_keys() {
        let mut net = network(3);
        net.bootstrap_keys();
        for (id, sw) in &net.switches {
            assert!(
                sw.borrow().keys().local().is_installed(),
                "local key missing on {id}"
            );
        }
        // Chain: S1:p2 <-> S2:p1, S2:p2 <-> S3:p1.
        assert!(net.switches[&SwitchId::new(1)]
            .borrow()
            .keys()
            .port(PortId::new(2))
            .is_installed());
        assert!(net.switches[&SwitchId::new(2)]
            .borrow()
            .keys()
            .port(PortId::new(1))
            .is_installed());
        assert!(net.switches[&SwitchId::new(2)]
            .borrow()
            .keys()
            .port(PortId::new(2))
            .is_installed());
        assert!(net.switches[&SwitchId::new(3)]
            .borrow()
            .keys()
            .port(PortId::new(1))
            .is_installed());
    }

    #[test]
    fn schedulers_produce_identical_bootstraps() {
        // The full key-management bootstrap — timers, retries,
        // bidirectional exchanges — must land on the same simulated
        // timeline under both schedulers.
        let run = |kind: SchedulerKind| {
            let mut net = Network::build_with_scheduler(
                Topology::chain(4, 1_000, 200_000),
                kind,
                ControllerConfig::default(),
                0xb007_5eed,
                |_| None,
                |_, c| c,
            );
            assert_eq!(net.sim.scheduler_kind(), kind);
            let took = net.bootstrap_keys();
            net.controller_write(SwitchId::new(2), RegId::new(5), 0, 9);
            net.sim.run_to_completion();
            (took, net.sim.now(), net.sim.stats())
        };
        assert_eq!(run(SchedulerKind::Heap), run(SchedulerKind::Calendar));
    }

    #[test]
    fn telemetry_spans_sim_controller_and_agents() {
        let registry = std::sync::Arc::new(p4auth_telemetry::Registry::with_event_capacity(1024));
        let mut net = network(2);
        net.enable_telemetry(registry.clone());
        net.bootstrap_keys();

        // One authenticated write over the C-DP channel. The fixture maps no
        // registers, so the switch nacks it as UnknownRegister — but the
        // request and response still authenticate end to end, which is what
        // the latency histogram measures.
        net.controller_write(SwitchId::new(1), RegId::new(1234), 0, 7);
        net.sim.run_until(SimTime::from_ns(10_000_000));

        let snap = registry.snapshot();
        // The bootstrap plus the write exercised every layer.
        assert!(snap.counter_total("sim_frames_delivered") > 0);
        assert!(snap.counter_total("auth_verify_ok") > 0);
        assert!(snap.counter("auth_verify_ok", "S1").unwrap_or(0) > 0);
        assert!(snap.counter("auth_verify_ok", "controller").unwrap_or(0) > 0);
        assert_eq!(snap.counter("ctrl_requests_sent", "controller"), Some(1));
        assert_eq!(snap.counter("ctrl_responses_ok", "controller"), Some(1));
        let hist = snap.histogram("ctrl_register_op_ns", "controller").unwrap();
        assert_eq!(hist.count, 1);
        // RTT includes two link crossings plus processing; strictly positive
        // sim-ns.
        assert!(hist.min > 0);
        // Key bootstrap emitted KeyDerived events on both sides.
        let kinds: Vec<&'static str> = registry
            .events()
            .to_vec()
            .iter()
            .map(|r| r.event.kind())
            .collect();
        assert!(kinds.contains(&"key_derived"));
        assert!(kinds.contains(&"kex_step"));
        assert!(kinds.contains(&"frame_delivered"));
    }

    #[test]
    fn defence_rolls_key_under_forged_flood_and_spares_clean_channel() {
        use p4auth_primitives::Digest32;
        use p4auth_wire::body::{Body, RegisterOp};
        use p4auth_wire::ids::SeqNum;
        use p4auth_wire::Message;

        let registry = std::sync::Arc::new(p4auth_telemetry::Registry::with_event_capacity(2048));
        let mut net = network(2);
        net.enable_telemetry(registry.clone());
        net.bootstrap_keys();
        net.enable_defence(DefenceConfig::default());

        // Forged responses claiming to come from S1, injected on its C-DP
        // front-panel port (63 in Topology::chain).
        let s1 = SwitchId::new(1);
        for i in 0..8u32 {
            let mut msg = Message::new(
                s1,
                PortId::CPU,
                SeqNum::new(40_000 + i),
                Body::Register(RegisterOp::Ack {
                    reg: RegId::new(9),
                    index: 0,
                    value: u64::from(i),
                }),
            );
            msg.header_mut().digest = Digest32::new(0xdead_0000 + i);
            net.sim.inject_frame(s1, PortId::new(63), msg.encode());
        }
        net.sim
            .run_until(SimTime::from_ns(net.sim.now().as_ns() + 200_000_000));

        let events = net.take_events();
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, ControllerEvent::DefenceMitigated { .. }))
                .count(),
            1,
            "one threshold crossing, one mitigation"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, ControllerEvent::LocalKeyRolled(sw) if *sw == s1)),
            "the victim's local key must roll automatically"
        );
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("ctrl_defence_mitigations", "controller"),
            Some(1)
        );
        let hist = snap
            .histogram("defence_mitigation_latency_ns", "controller")
            .expect("latency histogram registered");
        assert_eq!(hist.count, 1);
        assert!(hist.min > 0, "latency measured in sim-ns");

        // The untouched channel (S2) keeps flowing: a controller request
        // still round-trips (the fixture maps no registers, so the answer
        // is an UnknownRegister nack — but it authenticates end to end).
        let responses_before = snap.counter("ctrl_responses_ok", "controller").unwrap_or(0);
        net.controller_write(SwitchId::new(2), RegId::new(1), 0, 7);
        net.sim
            .run_until(SimTime::from_ns(net.sim.now().as_ns() + 50_000_000));
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("ctrl_responses_ok", "controller"),
            Some(responses_before + 1)
        );
    }

    #[test]
    fn snapshot_ring_turns_reject_counts_into_windowed_rates() {
        use p4auth_primitives::Digest32;
        use p4auth_wire::body::{Body, RegisterOp};
        use p4auth_wire::ids::SeqNum;
        use p4auth_wire::Message;

        let registry = std::sync::Arc::new(p4auth_telemetry::Registry::new());
        let mut net = network(2);
        net.enable_telemetry(registry.clone());
        net.enable_snapshot_ring(8);
        net.bootstrap_keys();
        net.sample_ring(); // window start, after the (noisy) bootstrap

        // A forged-response flood on S1's C-DP channel: every frame is a
        // bad-digest reject at the controller.
        let s1 = SwitchId::new(1);
        for i in 0..20u32 {
            let mut msg = Message::new(
                s1,
                PortId::CPU,
                SeqNum::new(70_000 + i),
                Body::Register(RegisterOp::Ack {
                    reg: RegId::new(9),
                    index: 0,
                    value: u64::from(i),
                }),
            );
            msg.header_mut().digest = Digest32::new(0xbad0_0000 + i);
            net.sim.inject_frame(s1, PortId::new(63), msg.encode());
        }
        // One second of sim time makes the expected rate easy to read.
        net.sim
            .run_until(SimTime::from_ns(net.sim.now().as_ns() + 1_000_000_000));
        net.sample_ring();

        let ring = net.snapshot_ring().expect("ring enabled");
        assert_eq!(ring.len(), 2);
        let rate = ring
            .rate("auth_reject_bad_digest", "controller")
            .expect("reject series present in the window");
        // 20 rejects over ~1s of sim time: comfortably positive, and no
        // more than the frames injected.
        assert!(rate > 1.0, "rate was {rate}");
        assert!(rate <= 20.5, "rate was {rate}");
        let gauges = ring.rate_gauges();
        assert!(gauges
            .iter()
            .any(|g| g.name == "auth_reject_bad_digest_per_sec" && g.value > 0));
    }
}
