//! A SilkRoad-style stateful L4 load balancer (Miao et al., SIGCOMM 2017)
//! — the Table I "LB" row as a working system.
//!
//! SilkRoad pins connections to a direct IP (DIP) in the data plane. When
//! the operator changes the DIP pool for a virtual IP (VIP), *pending*
//! connections that arrived during the update are remembered in a transit
//! bloom filter so they keep mapping to the old DIP version; once they are
//! all inserted into the connection table, the controller **clears the
//! transit table** over C-DP (the exact message Table I cites: "C clears
//! the transit table (bloom filter) holding old DIPs after all the pending
//! connections are added to the connection table").
//!
//! The attack: forge or time-shift that clear. Pending connections lose
//! their "old pool" marker and get re-hashed onto the new pool — the
//! "wrong VIP (DIP) during LB", breaking connection affinity mid-flow.

use p4auth_core::agent::InNetworkApp;
use p4auth_dataplane::chassis::{Chassis, ChassisError, PacketContext};
use p4auth_dataplane::register::RegisterArray;
use p4auth_wire::ids::PortId;

/// System id of SilkRoad frames.
pub const SILKROAD_SYSTEM_ID: u8 = 6;

/// First byte of connection frames.
pub const CONN_MAGIC: u8 = 0x51;

/// Connection-table slots.
pub const CONN_SLOTS: u32 = 64;
/// Transit bloom filter bits (stored one per register cell for clarity).
pub const BLOOM_BITS: u32 = 128;

/// Data-plane register names.
pub mod regs {
    /// Connection table: DIP pinned per connection slot (0 = no entry).
    pub const CONN_DIP: &str = "sr_conn_dip";
    /// Current DIP pool version.
    pub const POOL_VERSION: &str = "sr_pool_version";
    /// Transit bloom filter (1 bit per cell).
    pub const TRANSIT: &str = "sr_transit";
    /// Packets forwarded to the *old* pool via the transit marker.
    pub const VIA_TRANSIT: &str = "sr_via_transit";
    /// Packets whose affinity broke (re-hashed mid-connection).
    pub const BROKEN_AFFINITY: &str = "sr_broken_affinity";
}

/// Controller-visible register ids.
pub mod reg_ids {
    use p4auth_wire::ids::RegId;

    /// [`super::regs::TRANSIT`] — the clear the attack targets.
    pub const TRANSIT: RegId = RegId::new(7001);
    /// [`super::regs::POOL_VERSION`].
    pub const POOL_VERSION: RegId = RegId::new(7002);
}

/// A connection packet: `[0x51, conn(4), first(1)]`; `first` marks the
/// connection's SYN (first packet).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConnFrame {
    /// Connection identifier.
    pub conn: u32,
    /// Whether this is the connection's first packet.
    pub first: bool,
}

impl ConnFrame {
    /// Encodes the frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![CONN_MAGIC];
        out.extend_from_slice(&self.conn.to_be_bytes());
        out.push(self.first as u8);
        out
    }

    /// Decodes a frame.
    pub fn decode(bytes: &[u8]) -> Option<ConnFrame> {
        if bytes.len() != 6 || bytes[0] != CONN_MAGIC {
            return None;
        }
        Some(ConnFrame {
            conn: u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]),
            first: bytes[5] & 1 == 1,
        })
    }

    fn slot(&self) -> u32 {
        self.conn % CONN_SLOTS
    }

    fn bloom_bit(&self) -> u32 {
        (self.conn.wrapping_mul(2_654_435_761)) % BLOOM_BITS
    }
}

/// DIP selection: `pool_version * 100 + hash(conn) % 4` — an explicit
/// encoding so tests can tell which pool served a packet.
pub fn dip_for(conn: u32, pool_version: u64) -> u64 {
    pool_version * 100 + (conn % 4) as u64
}

/// The SilkRoad data-plane program. All traffic egresses port 1 toward the
/// DIPs; the selected DIP is recorded in the connection table.
#[derive(Debug, Default)]
pub struct SilkRoadApp;

impl SilkRoadApp {
    /// Boxed for mounting on the agent.
    pub fn boxed() -> Box<dyn InNetworkApp> {
        Box::new(SilkRoadApp)
    }
}

impl InNetworkApp for SilkRoadApp {
    fn system_id(&self) -> u8 {
        SILKROAD_SYSTEM_ID
    }

    fn setup(&mut self, chassis: &mut Chassis) {
        chassis.declare_register(RegisterArray::new(regs::CONN_DIP, CONN_SLOTS, 64));
        let mut ver = RegisterArray::new(regs::POOL_VERSION, 1, 64);
        ver.write(0, 1).expect("in range");
        chassis.declare_register(ver);
        chassis.declare_register(RegisterArray::new(regs::TRANSIT, BLOOM_BITS, 1));
        chassis.declare_register(RegisterArray::new(regs::VIA_TRANSIT, 1, 64));
        chassis.declare_register(RegisterArray::new(regs::BROKEN_AFFINITY, 1, 64));
    }

    fn on_control(
        &mut self,
        _ctx: &mut PacketContext<'_>,
        _ingress: PortId,
        _payload: &[u8],
    ) -> Result<Vec<(PortId, Vec<u8>)>, ChassisError> {
        Ok(vec![])
    }

    fn on_data(
        &mut self,
        ctx: &mut PacketContext<'_>,
        _ingress: PortId,
        bytes: &[u8],
    ) -> Result<Vec<(PortId, Vec<u8>)>, ChassisError> {
        let Some(frame) = ConnFrame::decode(bytes) else {
            return Ok(vec![]);
        };
        let slot = frame.slot();
        let pool = ctx.read_register(regs::POOL_VERSION, 0)?;

        let pinned = ctx.read_register(regs::CONN_DIP, slot)?;
        let dip = if pinned != 0 {
            // Known connection: keep its DIP (affinity).
            pinned
        } else if frame.first {
            // New connection: pin to the current pool and mark it pending
            // in the transit filter (it may race an ongoing pool update).
            let dip = dip_for(frame.conn, pool);
            ctx.write_register(regs::CONN_DIP, slot, dip)?;
            ctx.write_register(regs::TRANSIT, frame.bloom_bit(), 1)?;
            dip
        } else {
            // Mid-connection packet with no table entry (e.g. the entry is
            // still being installed): the transit filter decides whether
            // the *previous* pool still owns it.
            if ctx.read_register(regs::TRANSIT, frame.bloom_bit())? == 1 {
                ctx.update_register(regs::VIA_TRANSIT, 0, |v| v + 1)?;
                dip_for(frame.conn, pool.saturating_sub(1))
            } else {
                // Affinity lost: re-hashed onto the current pool.
                ctx.update_register(regs::BROKEN_AFFINITY, 0, |v| v + 1)?;
                dip_for(frame.conn, pool)
            }
        };
        let _ = dip;
        Ok(vec![(PortId::new(1), bytes.to_vec())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4auth_dataplane::chassis::{Chassis, ChassisConfig};
    use p4auth_dataplane::packet::Packet;
    use p4auth_wire::ids::SwitchId;

    fn setup() -> (Chassis, SilkRoadApp) {
        let mut app = SilkRoadApp;
        let mut chassis = Chassis::new(ChassisConfig::tofino(SwitchId::new(1), 2));
        app.setup(&mut chassis);
        (chassis, app)
    }

    fn send(chassis: &mut Chassis, app: &mut SilkRoadApp, conn: u32, first: bool) {
        let bytes = ConnFrame { conn, first }.encode();
        let pkt = Packet::from_bytes(PortId::new(2), bytes.clone());
        chassis
            .process(0, &pkt, |ctx, _| {
                app.on_data(ctx, PortId::new(2), &bytes)?;
                Ok(vec![])
            })
            .unwrap();
    }

    fn reg(chassis: &Chassis, name: &str, idx: u32) -> u64 {
        chassis.register(name).unwrap().read(idx).unwrap()
    }

    #[test]
    fn frame_roundtrip() {
        for first in [false, true] {
            let f = ConnFrame { conn: 9, first };
            assert_eq!(ConnFrame::decode(&f.encode()), Some(f));
        }
        assert_eq!(ConnFrame::decode(&[0u8; 6]), None);
    }

    #[test]
    fn new_connection_pins_dip_and_marks_transit() {
        let (mut chassis, mut app) = setup();
        send(&mut chassis, &mut app, 10, true);
        let f = ConnFrame {
            conn: 10,
            first: true,
        };
        assert_eq!(reg(&chassis, regs::CONN_DIP, f.slot()), dip_for(10, 1));
        assert_eq!(reg(&chassis, regs::TRANSIT, f.bloom_bit()), 1);
    }

    #[test]
    fn established_connection_keeps_its_dip_across_pool_update() {
        let (mut chassis, mut app) = setup();
        send(&mut chassis, &mut app, 10, true);
        // Pool update: version 2.
        chassis
            .register_mut(regs::POOL_VERSION)
            .unwrap()
            .write(0, 2)
            .unwrap();
        send(&mut chassis, &mut app, 10, false);
        let f = ConnFrame {
            conn: 10,
            first: true,
        };
        // Still pinned to pool 1's DIP.
        assert_eq!(reg(&chassis, regs::CONN_DIP, f.slot()), dip_for(10, 1));
        assert_eq!(reg(&chassis, regs::BROKEN_AFFINITY, 0), 0);
    }

    #[test]
    fn transit_filter_protects_pending_connections() {
        let (mut chassis, mut app) = setup();
        // A pending connection: marked in transit but its table entry has
        // been aged out / not yet installed.
        send(&mut chassis, &mut app, 10, true);
        let f = ConnFrame {
            conn: 10,
            first: true,
        };
        chassis
            .register_mut(regs::CONN_DIP)
            .unwrap()
            .write(f.slot(), 0)
            .unwrap();
        // Pool moves to version 2 mid-migration.
        chassis
            .register_mut(regs::POOL_VERSION)
            .unwrap()
            .write(0, 2)
            .unwrap();
        send(&mut chassis, &mut app, 10, false);
        // The transit marker routed it to the old pool.
        assert_eq!(reg(&chassis, regs::VIA_TRANSIT, 0), 1);
        assert_eq!(reg(&chassis, regs::BROKEN_AFFINITY, 0), 0);
    }

    #[test]
    fn premature_transit_clear_breaks_affinity() {
        // The Table I attack: the forged clear wipes the transit filter
        // while connections are still pending — they re-hash onto the new
        // pool ("wrong VIP during LB").
        let (mut chassis, mut app) = setup();
        send(&mut chassis, &mut app, 10, true);
        let f = ConnFrame {
            conn: 10,
            first: true,
        };
        chassis
            .register_mut(regs::CONN_DIP)
            .unwrap()
            .write(f.slot(), 0)
            .unwrap();
        chassis
            .register_mut(regs::POOL_VERSION)
            .unwrap()
            .write(0, 2)
            .unwrap();
        // Unauthorized clear (what the compromised OS does at the driver):
        chassis.register_mut(regs::TRANSIT).unwrap().clear();
        send(&mut chassis, &mut app, 10, false);
        assert_eq!(
            reg(&chassis, regs::BROKEN_AFFINITY, 0),
            1,
            "affinity broken"
        );
        assert_eq!(reg(&chassis, regs::VIA_TRANSIT, 0), 0);
    }

    #[test]
    fn legitimate_clear_after_migration_is_harmless() {
        let (mut chassis, mut app) = setup();
        send(&mut chassis, &mut app, 10, true);
        // Migration completes: the entry is in the connection table, so
        // clearing the transit filter (the controller's periodic job) is
        // safe.
        chassis.register_mut(regs::TRANSIT).unwrap().clear();
        chassis
            .register_mut(regs::POOL_VERSION)
            .unwrap()
            .write(0, 2)
            .unwrap();
        send(&mut chassis, &mut app, 10, false);
        assert_eq!(reg(&chassis, regs::BROKEN_AFFINITY, 0), 0);
        let f = ConnFrame {
            conn: 10,
            first: true,
        };
        assert_eq!(reg(&chassis, regs::CONN_DIP, f.slot()), dip_for(10, 1));
    }
}
