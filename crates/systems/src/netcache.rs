//! A NetCache-style in-network key-value cache (Jin et al., SOSP 2017) —
//! the Table I "in-network cache" row as a working system.
//!
//! The data plane caches hot keys and answers queries at line rate; the
//! controller periodically reads query statistics (maintained in compact
//! register structures), decides which keys are hot, installs them, and
//! clears the statistics for the next epoch. Both of those C-DP flows are
//! exactly what the §II-A adversary targets: forging the periodic *clear*
//! wipes real statistics (hot keys never promoted) and forging hot-key
//! *installs* evicts genuinely hot entries — in either case, queries fall
//! through to the storage servers and retrieval time inflates (Table I:
//! "inflates time to retrieve the hot key value").

use p4auth_core::agent::InNetworkApp;
use p4auth_dataplane::chassis::{Chassis, ChassisError, PacketContext};
use p4auth_dataplane::register::RegisterArray;
use p4auth_wire::ids::PortId;

/// System id of NetCache frames.
pub const NETCACHE_SYSTEM_ID: u8 = 3;

/// First byte of query frames.
pub const QUERY_MAGIC: u8 = 0xC4;

/// Number of cache slots / statistics counters.
pub const CACHE_SLOTS: u32 = 16;

/// Data-plane register names.
pub mod regs {
    /// Cached key per slot (0 = empty).
    pub const CACHED_KEY: &str = "nc_cached_key";
    /// Cached value per slot.
    pub const CACHED_VALUE: &str = "nc_cached_value";
    /// Per-slot query counter (the compact statistics structure the
    /// controller reads and clears each epoch).
    pub const QUERY_COUNT: &str = "nc_query_count";
    /// Cache hits served at line rate.
    pub const HITS: &str = "nc_hits";
    /// Misses forwarded to the storage server.
    pub const MISSES: &str = "nc_misses";
}

/// Controller-visible register ids.
pub mod reg_ids {
    use p4auth_wire::ids::RegId;

    /// [`super::regs::CACHED_KEY`].
    pub const CACHED_KEY: RegId = RegId::new(4001);
    /// [`super::regs::CACHED_VALUE`].
    pub const CACHED_VALUE: RegId = RegId::new(4002);
    /// [`super::regs::QUERY_COUNT`].
    pub const QUERY_COUNT: RegId = RegId::new(4003);
}

/// A query frame: `[0xC4, key(4)]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Query {
    /// The requested key.
    pub key: u32,
}

impl Query {
    /// Encodes the query.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![QUERY_MAGIC];
        out.extend_from_slice(&self.key.to_be_bytes());
        out
    }

    /// Decodes a query.
    pub fn decode(bytes: &[u8]) -> Option<Query> {
        if bytes.len() != 5 || bytes[0] != QUERY_MAGIC {
            return None;
        }
        Some(Query {
            key: u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]),
        })
    }

    /// The statistics/cache slot this key hashes to.
    pub fn slot(&self) -> u32 {
        (self.key.wrapping_mul(2_654_435_761)) % CACHE_SLOTS
    }
}

/// The NetCache data-plane program. Queries hit the cache (port 1 back to
/// the client) or miss through to the storage server (port 2).
#[derive(Debug, Default)]
pub struct NetCacheApp;

impl NetCacheApp {
    /// Boxed for mounting on the agent.
    pub fn boxed() -> Box<dyn InNetworkApp> {
        Box::new(NetCacheApp)
    }
}

impl InNetworkApp for NetCacheApp {
    fn system_id(&self) -> u8 {
        NETCACHE_SYSTEM_ID
    }

    fn setup(&mut self, chassis: &mut Chassis) {
        chassis.declare_register(RegisterArray::new(regs::CACHED_KEY, CACHE_SLOTS, 64));
        chassis.declare_register(RegisterArray::new(regs::CACHED_VALUE, CACHE_SLOTS, 64));
        chassis.declare_register(RegisterArray::new(regs::QUERY_COUNT, CACHE_SLOTS, 64));
        chassis.declare_register(RegisterArray::new(regs::HITS, 1, 64));
        chassis.declare_register(RegisterArray::new(regs::MISSES, 1, 64));
    }

    fn on_control(
        &mut self,
        _ctx: &mut PacketContext<'_>,
        _ingress: PortId,
        _payload: &[u8],
    ) -> Result<Vec<(PortId, Vec<u8>)>, ChassisError> {
        Ok(vec![]) // NetCache has no DP-DP control messages
    }

    fn on_data(
        &mut self,
        ctx: &mut PacketContext<'_>,
        _ingress: PortId,
        bytes: &[u8],
    ) -> Result<Vec<(PortId, Vec<u8>)>, ChassisError> {
        let Some(query) = Query::decode(bytes) else {
            return Ok(vec![]);
        };
        let slot = query.slot();
        ctx.update_register(regs::QUERY_COUNT, slot, |v| v.saturating_add(1))?;
        let cached_key = ctx.read_register(regs::CACHED_KEY, slot)?;
        if cached_key == query.key as u64 && cached_key != 0 {
            // Hit: answer from the data plane.
            let value = ctx.read_register(regs::CACHED_VALUE, slot)?;
            ctx.update_register(regs::HITS, 0, |v| v + 1)?;
            let mut reply = vec![QUERY_MAGIC];
            reply.extend_from_slice(&query.key.to_be_bytes());
            reply.extend_from_slice(&value.to_be_bytes());
            Ok(vec![(PortId::new(1), reply)])
        } else {
            // Miss: forward to the storage server.
            ctx.update_register(regs::MISSES, 0, |v| v + 1)?;
            Ok(vec![(PortId::new(2), bytes.to_vec())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4auth_dataplane::chassis::{Chassis, ChassisConfig};
    use p4auth_dataplane::packet::Packet;
    use p4auth_wire::ids::SwitchId;

    fn setup() -> (Chassis, NetCacheApp) {
        let mut app = NetCacheApp;
        let mut chassis = Chassis::new(ChassisConfig::tofino(SwitchId::new(1), 2));
        app.setup(&mut chassis);
        (chassis, app)
    }

    fn query(chassis: &mut Chassis, app: &mut NetCacheApp, key: u32) -> Vec<(PortId, Vec<u8>)> {
        let bytes = Query { key }.encode();
        let pkt = Packet::from_bytes(PortId::new(1), bytes.clone());
        let mut outs = Vec::new();
        chassis
            .process(0, &pkt, |ctx, _| {
                outs = app.on_data(ctx, PortId::new(1), &bytes)?;
                Ok(vec![])
            })
            .unwrap();
        outs
    }

    fn install(chassis: &mut Chassis, key: u32, value: u64) {
        let slot = Query { key }.slot();
        chassis
            .register_mut(regs::CACHED_KEY)
            .unwrap()
            .write(slot, key as u64)
            .unwrap();
        chassis
            .register_mut(regs::CACHED_VALUE)
            .unwrap()
            .write(slot, value)
            .unwrap();
    }

    #[test]
    fn query_roundtrip() {
        let q = Query { key: 42 };
        assert_eq!(Query::decode(&q.encode()), Some(q));
        assert_eq!(Query::decode(&[0u8; 5]), None);
    }

    #[test]
    fn miss_forwards_to_storage_and_counts() {
        let (mut chassis, mut app) = setup();
        let outs = query(&mut chassis, &mut app, 42);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, PortId::new(2));
        assert_eq!(chassis.register(regs::MISSES).unwrap().read(0).unwrap(), 1);
        assert_eq!(chassis.register(regs::HITS).unwrap().read(0).unwrap(), 0);
    }

    #[test]
    fn hit_answers_at_line_rate() {
        let (mut chassis, mut app) = setup();
        install(&mut chassis, 42, 0xbeef);
        let outs = query(&mut chassis, &mut app, 42);
        assert_eq!(outs[0].0, PortId::new(1));
        assert!(outs[0].1.ends_with(&0xbeefu64.to_be_bytes()));
        assert_eq!(chassis.register(regs::HITS).unwrap().read(0).unwrap(), 1);
    }

    #[test]
    fn query_statistics_accumulate_per_slot() {
        let (mut chassis, mut app) = setup();
        for _ in 0..5 {
            query(&mut chassis, &mut app, 42);
        }
        query(&mut chassis, &mut app, 43);
        let slot42 = Query { key: 42 }.slot();
        assert_eq!(
            chassis
                .register(regs::QUERY_COUNT)
                .unwrap()
                .read(slot42)
                .unwrap(),
            5
        );
    }

    #[test]
    fn key_zero_never_hits() {
        // Slot emptiness is encoded as key 0; querying key 0 must miss.
        let (mut chassis, mut app) = setup();
        let outs = query(&mut chassis, &mut app, 0);
        assert_eq!(outs[0].0, PortId::new(2));
    }

    #[test]
    fn forged_statistics_clear_hides_hot_keys() {
        // The Table I attack: the adversary clears query statistics so the
        // controller never promotes the genuinely hot key.
        let (mut chassis, mut app) = setup();
        for _ in 0..100 {
            query(&mut chassis, &mut app, 7); // key 7 is hot
        }
        let slot = Query { key: 7 }.slot();
        assert_eq!(
            chassis
                .register(regs::QUERY_COUNT)
                .unwrap()
                .read(slot)
                .unwrap(),
            100
        );
        // Unauthorized clear (what the compromised OS does directly at the
        // driver):
        chassis.register_mut(regs::QUERY_COUNT).unwrap().clear();
        assert_eq!(
            chassis
                .register(regs::QUERY_COUNT)
                .unwrap()
                .read(slot)
                .unwrap(),
            0
        );
        // The controller's hot-key decision would now see nothing.
    }
}
