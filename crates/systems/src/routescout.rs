//! RouteScout: performance-aware path selection (Apostolaki et al., SOSR
//! 2021), reproduced — as in the paper itself — as a software simulation.
//!
//! The data plane aggregates per-path latency (sum and count registers) and
//! splits outgoing traffic between two upstream paths according to a split
//! ratio register. The controller periodically *reads* the latency
//! registers over C-DP messages, computes a new split ratio favouring the
//! faster path, and *writes* it back (Fig. 2).
//!
//! The §II-A adversary sits in the switch OS and inflates the latency of
//! one path inside the read-response messages; the controller then diverts
//! traffic onto the genuinely worse path (Fig. 16's middle bars). With
//! P4Auth the tampered responses fail digest verification, the controller
//! keeps the current ratio and raises an alert (Fig. 9 / Fig. 16's right
//! bars).

use crate::harness::Network;
use p4auth_controller::ControllerEvent;
use p4auth_core::agent::InNetworkApp;
use p4auth_dataplane::chassis::{Chassis, ChassisError, PacketContext};
use p4auth_dataplane::register::RegisterArray;
use p4auth_wire::ids::{PortId, SwitchId};

/// System id of RouteScout frames (unused on the wire — RouteScout has no
/// DP-DP control messages — but required by the app interface).
pub const ROUTESCOUT_SYSTEM_ID: u8 = 2;

/// First byte of RouteScout data frames.
pub const DATA_MAGIC: u8 = 0x5C;

/// Number of upstream paths (the Fig. 2 scenario uses two).
pub const NUM_PATHS: u32 = 2;

/// Controller-visible register ids.
pub mod reg_ids {
    use p4auth_wire::ids::RegId;

    /// Per-path latency sum (µs).
    pub const LAT_SUM: RegId = RegId::new(2001);
    /// Per-path sample count.
    pub const LAT_CNT: RegId = RegId::new(2002);
    /// Percentage of traffic sent to path 0.
    pub const SPLIT: RegId = RegId::new(2003);
}

/// Data-plane register names.
pub mod regs {
    /// Per-path latency sum (µs).
    pub const LAT_SUM: &str = "rs_lat_sum";
    /// Per-path sample count.
    pub const LAT_CNT: &str = "rs_lat_cnt";
    /// Percent of traffic to path 0 (single cell).
    pub const SPLIT: &str = "rs_split";
    /// Data packets transmitted per path (Fig. 16's measurement).
    pub const TX_COUNT: &str = "rs_tx_count";
}

/// A RouteScout data frame: `[0x5C, flow(4), lat_path0_us(4),
/// lat_path1_us(4)]`. The two latency fields are the trace-driven "what
/// this packet would experience on each path right now" values, so the
/// data plane can record the sample for whichever path it picks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RsFrame {
    /// Flow identifier (hashed for the split decision).
    pub flow: u32,
    /// Current latency on path 0 in µs.
    pub lat0_us: u32,
    /// Current latency on path 1 in µs.
    pub lat1_us: u32,
}

impl RsFrame {
    /// Encodes the frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![DATA_MAGIC];
        out.extend_from_slice(&self.flow.to_be_bytes());
        out.extend_from_slice(&self.lat0_us.to_be_bytes());
        out.extend_from_slice(&self.lat1_us.to_be_bytes());
        out
    }

    /// Decodes a frame.
    pub fn decode(bytes: &[u8]) -> Option<RsFrame> {
        if bytes.len() != 13 || bytes[0] != DATA_MAGIC {
            return None;
        }
        let u = |i: usize| u32::from_be_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
        Some(RsFrame {
            flow: u(1),
            lat0_us: u(5),
            lat1_us: u(9),
        })
    }
}

/// Flow-hash → percent bucket (multiplicative hashing; deterministic).
pub fn flow_bucket(flow: u32) -> u64 {
    (flow as u64).wrapping_mul(2_654_435_761) % 100
}

/// The RouteScout data-plane program.
#[derive(Debug, Default)]
pub struct RouteScoutApp;

impl RouteScoutApp {
    /// Boxed for mounting on the agent.
    pub fn boxed() -> Box<dyn InNetworkApp> {
        Box::new(RouteScoutApp)
    }
}

impl InNetworkApp for RouteScoutApp {
    fn system_id(&self) -> u8 {
        ROUTESCOUT_SYSTEM_ID
    }

    fn setup(&mut self, chassis: &mut Chassis) {
        chassis.declare_register(RegisterArray::new(regs::LAT_SUM, NUM_PATHS, 64));
        chassis.declare_register(RegisterArray::new(regs::LAT_CNT, NUM_PATHS, 64));
        let mut split = RegisterArray::new(regs::SPLIT, 1, 64);
        split.write(0, 50).expect("in range"); // start balanced
        chassis.declare_register(split);
        chassis.declare_register(RegisterArray::new(regs::TX_COUNT, NUM_PATHS, 64));
    }

    fn on_control(
        &mut self,
        _ctx: &mut PacketContext<'_>,
        _ingress: PortId,
        _payload: &[u8],
    ) -> Result<Vec<(PortId, Vec<u8>)>, ChassisError> {
        Ok(vec![]) // RouteScout exchanges no DP-DP control messages
    }

    fn on_data(
        &mut self,
        ctx: &mut PacketContext<'_>,
        _ingress: PortId,
        bytes: &[u8],
    ) -> Result<Vec<(PortId, Vec<u8>)>, ChassisError> {
        let Some(frame) = RsFrame::decode(bytes) else {
            return Ok(vec![]);
        };
        let split = ctx.read_register(regs::SPLIT, 0)?;
        let path: u32 = if flow_bucket(frame.flow) < split {
            0
        } else {
            1
        };
        let lat = if path == 0 {
            frame.lat0_us
        } else {
            frame.lat1_us
        } as u64;
        ctx.update_register(regs::LAT_SUM, path, |v| v + lat)?;
        ctx.update_register(regs::LAT_CNT, path, |v| v + 1)?;
        ctx.update_register(regs::TX_COUNT, path, |v| v + 1)?;
        // Path 0 egresses on port 1, path 1 on port 2.
        Ok(vec![(PortId::new(path as u8 + 1), bytes.to_vec())])
    }
}

/// Outcome of one controller epoch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EpochOutcome {
    /// New split ratio installed (percent to path 0).
    Updated {
        /// The newly computed percentage of traffic to path 0.
        split: u64,
    },
    /// Tampering detected: ratio retained, alert counted (the P4Auth
    /// response of §IX-A).
    TamperDetected,
    /// Not all latency readings arrived (lost messages).
    Incomplete,
}

/// The RouteScout controller-side epoch logic, driven on top of the P4Auth
/// [`Controller`](p4auth_controller::Controller) through the harness.
#[derive(Debug)]
pub struct RouteScoutController {
    switch: SwitchId,
    split: u64,
    /// Alerts observed (tamper detections).
    pub tamper_alerts: u64,
}

impl RouteScoutController {
    /// Creates the epoch driver for `switch`.
    pub fn new(switch: SwitchId) -> Self {
        RouteScoutController {
            switch,
            split: 50,
            tamper_alerts: 0,
        }
    }

    /// Current split ratio (percent to path 0).
    pub fn split(&self) -> u64 {
        self.split
    }

    /// Computes the new split from average path latencies: inverse-latency
    /// weighting ("send more traffic to the best path").
    pub fn compute_split(avg0_us: f64, avg1_us: f64) -> u64 {
        if avg0_us <= 0.0 || avg1_us <= 0.0 {
            return 50;
        }
        let w0 = 1.0 / avg0_us;
        let w1 = 1.0 / avg1_us;
        (100.0 * w0 / (w0 + w1)).round().clamp(0.0, 100.0) as u64
    }

    /// Runs one epoch: read latency registers, recompute the split, install
    /// it, and clear the accumulators. If any response fails verification,
    /// the current ratio is kept (§IX-A).
    pub fn run_epoch(&mut self, net: &mut Network) -> EpochOutcome {
        // Issue the four reads.
        for path in 0..NUM_PATHS {
            net.controller_read(self.switch, reg_ids::LAT_SUM, path);
            net.controller_read(self.switch, reg_ids::LAT_CNT, path);
        }
        net.sim.run_to_completion();
        let events = net.take_events();

        let mut sums = [None::<u64>; 2];
        let mut cnts = [None::<u64>; 2];
        let mut tampered = false;
        for e in &events {
            match e {
                ControllerEvent::ValueRead {
                    reg, index, value, ..
                } => {
                    if *reg == reg_ids::LAT_SUM {
                        sums[*index as usize] = Some(*value);
                    } else if *reg == reg_ids::LAT_CNT {
                        cnts[*index as usize] = Some(*value);
                    }
                }
                ControllerEvent::Rejected { .. } | ControllerEvent::AlertReceived { .. } => {
                    tampered = true;
                }
                _ => {}
            }
        }
        if tampered {
            self.tamper_alerts += 1;
            return EpochOutcome::TamperDetected;
        }
        let (Some(s0), Some(s1), Some(c0), Some(c1)) = (sums[0], sums[1], cnts[0], cnts[1]) else {
            return EpochOutcome::Incomplete;
        };
        if c0 == 0 || c1 == 0 {
            return EpochOutcome::Incomplete;
        }
        self.split = Self::compute_split(s0 as f64 / c0 as f64, s1 as f64 / c1 as f64);

        // Install the ratio and clear the accumulators.
        net.controller_write(self.switch, reg_ids::SPLIT, 0, self.split);
        for path in 0..NUM_PATHS {
            net.controller_write(self.switch, reg_ids::LAT_SUM, path, 0);
            net.controller_write(self.switch, reg_ids::LAT_CNT, path, 0);
        }
        net.sim.run_to_completion();
        let _ = net.take_events();
        EpochOutcome::Updated { split: self.split }
    }
}

/// Registers the RouteScout register-id mapping on an agent config.
pub fn map_registers(config: p4auth_core::agent::AgentConfig) -> p4auth_core::agent::AgentConfig {
    config
        .map_register(reg_ids::LAT_SUM, regs::LAT_SUM)
        .map_register(reg_ids::LAT_CNT, regs::LAT_CNT)
        .map_register(reg_ids::SPLIT, regs::SPLIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4auth_dataplane::chassis::ChassisConfig;
    use p4auth_dataplane::packet::Packet;

    fn chassis_with_app() -> (Chassis, RouteScoutApp) {
        let mut app = RouteScoutApp;
        let mut chassis = Chassis::new(ChassisConfig::tofino(SwitchId::new(1), 2));
        app.setup(&mut chassis);
        (chassis, app)
    }

    fn run_data(
        chassis: &mut Chassis,
        app: &mut RouteScoutApp,
        frame: RsFrame,
    ) -> Vec<(PortId, Vec<u8>)> {
        let bytes = frame.encode();
        let pkt = Packet::from_bytes(PortId::new(1), bytes.clone());
        let mut outs = Vec::new();
        chassis
            .process(0, &pkt, |ctx, _| {
                outs = app.on_data(ctx, PortId::new(1), &bytes)?;
                Ok(vec![])
            })
            .unwrap();
        outs
    }

    #[test]
    fn frame_roundtrip() {
        let f = RsFrame {
            flow: 1,
            lat0_us: 2,
            lat1_us: 3,
        };
        assert_eq!(RsFrame::decode(&f.encode()), Some(f));
        assert_eq!(RsFrame::decode(&[0u8; 13]), None);
        assert_eq!(RsFrame::decode(&[DATA_MAGIC]), None);
    }

    #[test]
    fn balanced_split_sends_to_both_paths() {
        let (mut chassis, mut app) = chassis_with_app();
        for flow in 0..200 {
            run_data(
                &mut chassis,
                &mut app,
                RsFrame {
                    flow,
                    lat0_us: 10,
                    lat1_us: 10,
                },
            );
        }
        let t0 = chassis.register(regs::TX_COUNT).unwrap().read(0).unwrap();
        let t1 = chassis.register(regs::TX_COUNT).unwrap().read(1).unwrap();
        assert_eq!(t0 + t1, 200);
        // 50/50 split with hashing: both paths see a healthy share.
        assert!(t0 > 60 && t1 > 60, "t0={t0} t1={t1}");
    }

    #[test]
    fn split_zero_sends_everything_to_path1() {
        let (mut chassis, mut app) = chassis_with_app();
        chassis
            .register_mut(regs::SPLIT)
            .unwrap()
            .write(0, 0)
            .unwrap();
        for flow in 0..50 {
            let outs = run_data(
                &mut chassis,
                &mut app,
                RsFrame {
                    flow,
                    lat0_us: 1,
                    lat1_us: 1,
                },
            );
            assert_eq!(outs[0].0, PortId::new(2));
        }
        assert_eq!(
            chassis.register(regs::TX_COUNT).unwrap().read(0).unwrap(),
            0
        );
        assert_eq!(
            chassis.register(regs::TX_COUNT).unwrap().read(1).unwrap(),
            50
        );
    }

    #[test]
    fn latency_samples_accumulate_per_chosen_path() {
        let (mut chassis, mut app) = chassis_with_app();
        chassis
            .register_mut(regs::SPLIT)
            .unwrap()
            .write(0, 100)
            .unwrap();
        for flow in 0..10 {
            run_data(
                &mut chassis,
                &mut app,
                RsFrame {
                    flow,
                    lat0_us: 20,
                    lat1_us: 99,
                },
            );
        }
        assert_eq!(
            chassis.register(regs::LAT_SUM).unwrap().read(0).unwrap(),
            200
        );
        assert_eq!(
            chassis.register(regs::LAT_CNT).unwrap().read(0).unwrap(),
            10
        );
        assert_eq!(chassis.register(regs::LAT_CNT).unwrap().read(1).unwrap(), 0);
    }

    #[test]
    fn compute_split_prefers_faster_path() {
        // Equal latency: 50/50.
        assert_eq!(RouteScoutController::compute_split(10.0, 10.0), 50);
        // Path 0 twice as fast: ~67% to path 0.
        assert_eq!(RouteScoutController::compute_split(10.0, 20.0), 67);
        // Path 0 much slower: most traffic to path 1.
        assert!(RouteScoutController::compute_split(100.0, 10.0) <= 10);
        // Degenerate inputs fall back to balanced.
        assert_eq!(RouteScoutController::compute_split(0.0, 10.0), 50);
    }

    #[test]
    fn flow_bucket_is_deterministic_and_spread() {
        let a = flow_bucket(1);
        assert_eq!(a, flow_bucket(1));
        let mut buckets = std::collections::HashSet::new();
        for flow in 0..100 {
            buckets.insert(flow_bucket(flow));
        }
        assert!(buckets.len() > 40, "poor spread: {}", buckets.len());
    }
}
