//! A Blink-style fast-reroute system (Holterbach et al., NSDI 2019) — the
//! Table I "FRR" row as a working system.
//!
//! Blink infers remote outages from TCP retransmission patterns entirely
//! in the data plane and reroutes onto pre-installed backup next hops
//! within a retransmission timeout. The controller maintains the
//! per-prefix next-hop list in registers (the C-DP update Table I cites:
//! "C updates per-prefix next hop list maintained in registers").
//!
//! The attack: rewrite the next-hop-list update so the primary (or every
//! backup) points at an attacker-chosen port — traffic blackholes or
//! detours the moment fast reroute fires. P4Auth authenticates the update.

use p4auth_core::agent::InNetworkApp;
use p4auth_dataplane::chassis::{Chassis, ChassisError, PacketContext};
use p4auth_dataplane::register::RegisterArray;
use p4auth_wire::ids::PortId;

/// System id of Blink frames.
pub const BLINK_SYSTEM_ID: u8 = 5;

/// First byte of Blink data frames.
pub const DATA_MAGIC: u8 = 0xB1;

/// Tracked prefixes.
pub const PREFIXES: u32 = 8;

/// Retransmissions within the window that trigger fast reroute.
pub const RETRANS_THRESHOLD: u64 = 3;

/// Data-plane register names.
pub mod regs {
    /// Primary next-hop port per prefix.
    pub const PRIMARY: &str = "bl_primary";
    /// Backup next-hop port per prefix (the list the controller updates).
    pub const BACKUP: &str = "bl_backup";
    /// 1 when the prefix has failed over to the backup.
    pub const FAILED_OVER: &str = "bl_failed_over";
    /// Retransmission signal counter per prefix.
    pub const RETRANS: &str = "bl_retrans";
    /// Packets forwarded per prefix (telemetry).
    pub const FORWARDED: &str = "bl_forwarded";
}

/// Controller-visible register ids.
pub mod reg_ids {
    use p4auth_wire::ids::RegId;

    /// [`super::regs::PRIMARY`].
    pub const PRIMARY: RegId = RegId::new(6001);
    /// [`super::regs::BACKUP`].
    pub const BACKUP: RegId = RegId::new(6002);
    /// [`super::regs::FAILED_OVER`].
    pub const FAILED_OVER: RegId = RegId::new(6003);
}

/// A Blink data frame: `[0xB1, prefix(4), flags(1)]`; bit 0 of `flags`
/// marks a TCP retransmission (the signal Blink keys on).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlinkFrame {
    /// Destination prefix index.
    pub prefix: u32,
    /// Whether this packet is a retransmission.
    pub retransmission: bool,
}

impl BlinkFrame {
    /// Encodes the frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![DATA_MAGIC];
        out.extend_from_slice(&self.prefix.to_be_bytes());
        out.push(self.retransmission as u8);
        out
    }

    /// Decodes a frame.
    pub fn decode(bytes: &[u8]) -> Option<BlinkFrame> {
        if bytes.len() != 6 || bytes[0] != DATA_MAGIC {
            return None;
        }
        Some(BlinkFrame {
            prefix: u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]),
            retransmission: bytes[5] & 1 == 1,
        })
    }
}

/// The Blink data-plane program.
#[derive(Debug, Default)]
pub struct BlinkApp;

impl BlinkApp {
    /// Boxed for mounting on the agent.
    pub fn boxed() -> Box<dyn InNetworkApp> {
        Box::new(BlinkApp)
    }
}

impl InNetworkApp for BlinkApp {
    fn system_id(&self) -> u8 {
        BLINK_SYSTEM_ID
    }

    fn setup(&mut self, chassis: &mut Chassis) {
        let mut primary = RegisterArray::new(regs::PRIMARY, PREFIXES, 64);
        let mut backup = RegisterArray::new(regs::BACKUP, PREFIXES, 64);
        for i in 0..PREFIXES {
            primary.write(i, 1).expect("in range"); // default: port 1
            backup.write(i, 2).expect("in range"); // default backup: port 2
        }
        chassis.declare_register(primary);
        chassis.declare_register(backup);
        chassis.declare_register(RegisterArray::new(regs::FAILED_OVER, PREFIXES, 64));
        chassis.declare_register(RegisterArray::new(regs::RETRANS, PREFIXES, 64));
        chassis.declare_register(RegisterArray::new(regs::FORWARDED, PREFIXES, 64));
    }

    fn on_control(
        &mut self,
        _ctx: &mut PacketContext<'_>,
        _ingress: PortId,
        _payload: &[u8],
    ) -> Result<Vec<(PortId, Vec<u8>)>, ChassisError> {
        Ok(vec![])
    }

    fn on_data(
        &mut self,
        ctx: &mut PacketContext<'_>,
        _ingress: PortId,
        bytes: &[u8],
    ) -> Result<Vec<(PortId, Vec<u8>)>, ChassisError> {
        let Some(frame) = BlinkFrame::decode(bytes) else {
            return Ok(vec![]);
        };
        if frame.prefix >= PREFIXES {
            return Ok(vec![]);
        }
        let prefix = frame.prefix;

        // Blink's outage inference: a burst of retransmissions trips
        // failover entirely in the data plane.
        if frame.retransmission {
            let count = ctx.update_register(regs::RETRANS, prefix, |v| v + 1)?;
            if count >= RETRANS_THRESHOLD {
                ctx.write_register(regs::FAILED_OVER, prefix, 1)?;
            }
        }

        let failed = ctx.read_register(regs::FAILED_OVER, prefix)? != 0;
        let port = if failed {
            ctx.read_register(regs::BACKUP, prefix)?
        } else {
            ctx.read_register(regs::PRIMARY, prefix)?
        };
        ctx.update_register(regs::FORWARDED, prefix, |v| v + 1)?;
        Ok(vec![(PortId::new(port as u8), bytes.to_vec())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4auth_dataplane::chassis::{Chassis, ChassisConfig};
    use p4auth_dataplane::packet::Packet;
    use p4auth_wire::ids::SwitchId;

    fn setup() -> (Chassis, BlinkApp) {
        let mut app = BlinkApp;
        let mut chassis = Chassis::new(ChassisConfig::tofino(SwitchId::new(1), 4));
        app.setup(&mut chassis);
        (chassis, app)
    }

    fn send(
        chassis: &mut Chassis,
        app: &mut BlinkApp,
        frame: BlinkFrame,
    ) -> Vec<(PortId, Vec<u8>)> {
        let bytes = frame.encode();
        let pkt = Packet::from_bytes(PortId::new(3), bytes.clone());
        let mut outs = Vec::new();
        chassis
            .process(0, &pkt, |ctx, _| {
                outs = app.on_data(ctx, PortId::new(3), &bytes)?;
                Ok(vec![])
            })
            .unwrap();
        outs
    }

    #[test]
    fn frame_roundtrip() {
        for retrans in [false, true] {
            let f = BlinkFrame {
                prefix: 3,
                retransmission: retrans,
            };
            assert_eq!(BlinkFrame::decode(&f.encode()), Some(f));
        }
        assert_eq!(BlinkFrame::decode(&[0u8; 6]), None);
    }

    #[test]
    fn normal_traffic_follows_primary() {
        let (mut chassis, mut app) = setup();
        let outs = send(
            &mut chassis,
            &mut app,
            BlinkFrame {
                prefix: 0,
                retransmission: false,
            },
        );
        assert_eq!(outs[0].0, PortId::new(1));
        assert_eq!(
            chassis.register(regs::FORWARDED).unwrap().read(0).unwrap(),
            1
        );
    }

    #[test]
    fn retransmission_burst_triggers_fast_reroute() {
        let (mut chassis, mut app) = setup();
        for _ in 0..RETRANS_THRESHOLD {
            send(
                &mut chassis,
                &mut app,
                BlinkFrame {
                    prefix: 2,
                    retransmission: true,
                },
            );
        }
        assert_eq!(
            chassis
                .register(regs::FAILED_OVER)
                .unwrap()
                .read(2)
                .unwrap(),
            1
        );
        // Subsequent traffic takes the backup.
        let outs = send(
            &mut chassis,
            &mut app,
            BlinkFrame {
                prefix: 2,
                retransmission: false,
            },
        );
        assert_eq!(outs[0].0, PortId::new(2));
    }

    #[test]
    fn below_threshold_no_failover() {
        let (mut chassis, mut app) = setup();
        for _ in 0..RETRANS_THRESHOLD - 1 {
            send(
                &mut chassis,
                &mut app,
                BlinkFrame {
                    prefix: 1,
                    retransmission: true,
                },
            );
        }
        let outs = send(
            &mut chassis,
            &mut app,
            BlinkFrame {
                prefix: 1,
                retransmission: false,
            },
        );
        assert_eq!(outs[0].0, PortId::new(1), "must still use the primary");
    }

    #[test]
    fn prefixes_fail_over_independently() {
        let (mut chassis, mut app) = setup();
        for _ in 0..RETRANS_THRESHOLD {
            send(
                &mut chassis,
                &mut app,
                BlinkFrame {
                    prefix: 4,
                    retransmission: true,
                },
            );
        }
        assert_eq!(
            chassis
                .register(regs::FAILED_OVER)
                .unwrap()
                .read(4)
                .unwrap(),
            1
        );
        assert_eq!(
            chassis
                .register(regs::FAILED_OVER)
                .unwrap()
                .read(5)
                .unwrap(),
            0
        );
    }

    #[test]
    fn poisoned_backup_blackholes_on_failover() {
        // The Table I attack: the adversary rewrites the backup next hop;
        // nothing visible happens until an outage fires fast reroute, and
        // then traffic detours to the attacker's port.
        let (mut chassis, mut app) = setup();
        chassis
            .register_mut(regs::BACKUP)
            .unwrap()
            .write(0, 4)
            .unwrap(); // attacker port
        for _ in 0..RETRANS_THRESHOLD {
            send(
                &mut chassis,
                &mut app,
                BlinkFrame {
                    prefix: 0,
                    retransmission: true,
                },
            );
        }
        let outs = send(
            &mut chassis,
            &mut app,
            BlinkFrame {
                prefix: 0,
                retransmission: false,
            },
        );
        assert_eq!(
            outs[0].0,
            PortId::new(4),
            "rerouted into the attacker's path"
        );
    }

    #[test]
    fn out_of_range_prefix_dropped() {
        let (mut chassis, mut app) = setup();
        let outs = send(
            &mut chassis,
            &mut app,
            BlinkFrame {
                prefix: 99,
                retransmission: false,
            },
        );
        assert!(outs.is_empty());
    }
}
