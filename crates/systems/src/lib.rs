//! # p4auth-systems
//!
//! The in-network traffic-control systems the paper attacks and then
//! protects with P4Auth, plus the simulation harness that wires agents and
//! the controller into the network simulator:
//!
//! * [`harness`] — [`SimNode`](p4auth_netsim::SimNode) adapters for
//!   [`P4AuthSwitch`](p4auth_core::P4AuthSwitch) and
//!   [`Controller`](p4auth_controller::Controller), and a network builder
//!   that boots a topology and drives the key-management bootstrap
//!   (local keys for every switch, port keys for every link).
//! * [`hula`] — HULA (Katta et al., SOSR 2016): probe-driven, hop-by-hop
//!   utilization-aware load balancing entirely in the data plane. The
//!   paper's Fig. 3 / Fig. 17 / Fig. 21 target system.
//! * [`routescout`] — RouteScout (Apostolaki et al., SOSR 2021):
//!   performance-aware path selection with per-path latency aggregated in
//!   data-plane registers and a controller computing traffic split ratios.
//!   The paper's Fig. 2 / Fig. 16 target system (implemented, as in the
//!   paper itself, as a software simulation).
//! * [`blink`] — a Blink-style fast-reroute system (the Table I "FRR" row
//!   as a working system).
//! * [`netcache`] — a NetCache-style in-network key-value cache (the
//!   Table I "in-network cache" row as a working system).
//! * [`netwarden`] — a NetWarden-style covert-channel mitigator (the
//!   Table I "IDS/IPS" row as a working system).
//! * [`silkroad`] — a SilkRoad-style stateful L4 load balancer (the
//!   Table I "LB" row as a working system).
//! * [`flowradar`] — a FlowRadar-style IBLT measurement system (the
//!   Table I "Measurement" row as a working system).
//! * [`scaleload`] — the fat-tree scale workload behind `repro -- scale`
//!   and the `sim_scale` bench, runnable on the sequential schedulers or
//!   the sharded engine with a bit-identical fingerprint.
//! * [`userscale`] — host aggregation: one [`SimNode`](p4auth_netsim::SimNode)
//!   modelling thousands of edge users in flat per-user arrays, scaling
//!   `repro -- users` to millions of modelled users at near-constant
//!   per-user cost while an aggregate of one user stays bit-identical to
//!   an individual [`scaleload`] host.
//! * [`campaigns`] — scenario campaigns composing deterministic fault
//!   injection (link flaps, pod/switch failure, boot storms) with attack
//!   overlays, each judged by explicit defence invariants and reported by
//!   `repro -- scenarios` as `BENCH_scenarios.json`.
//!
//! Together with [`blink`], [`netcache`] and [`netwarden`], every Table I
//! row exists here as a *working* miniature of the cited system, not just
//! a register-name stand-in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blink;
pub mod campaigns;
pub mod experiments;
pub mod flowradar;
pub mod harness;
pub mod hula;
pub mod netcache;
pub mod netwarden;
pub mod replicated;
pub mod routescout;
pub mod scaleload;
pub mod silkroad;
pub mod userscale;
