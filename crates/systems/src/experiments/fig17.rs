//! Fig. 17: protecting HULA from an on-link MitM (the Fig. 3 scenario).
//!
//! Topology: S1 reaches S5 over three two-hop paths (via S2, S3 and S4).
//! S5 floods utilization probes every round; S1 forwards data to the
//! least-utilized path. The adversary on the S4–S1 link rewrites
//! `probeUtil` to 10 %, making the S4 path look idle:
//!
//! * no adversary → utilization feedback balances traffic roughly equally;
//! * adversary, no P4Auth → S1 sends the bulk of traffic via S4;
//! * adversary + P4Auth → tampered probes fail digest verification at S1,
//!   the S4 path goes stale, and traffic avoids the compromised link
//!   entirely while alerts flow to the controller.

use super::Scenario;
use crate::harness::Network;
use crate::hula::{self, DataFrame, HulaApp, HulaConfig, Probe, HULA_SYSTEM_ID};
use p4auth_attacks::link_mitm;
use p4auth_controller::ControllerConfig;
use p4auth_netsim::topology::{Endpoint, Topology};
use p4auth_wire::ids::{PortId, SwitchId};

const S1: SwitchId = SwitchId::new(1);
const S5: SwitchId = SwitchId::new(5);
/// The middle switches, in port order as seen from S1 (port 1 → S2, …).
const MIDS: [SwitchId; 3] = [SwitchId::new(2), SwitchId::new(3), SwitchId::new(4)];

/// Builds the Fig. 3 topology: S1 —{S2,S3,S4}— S5, all switches with a
/// C-DP link on port 63.
pub fn fig3_topology(dp_latency_ns: u64, cp_latency_ns: u64) -> Topology {
    let mut t = Topology::new();
    t.add_node(SwitchId::CONTROLLER).unwrap();
    for i in 1..=5 {
        t.add_node(SwitchId::new(i)).unwrap();
    }
    for (i, &mid) in MIDS.iter().enumerate() {
        let port = PortId::new(i as u8 + 1);
        // S1:p(i+1) <-> mid:p1
        t.add_link(
            Endpoint::new(S1, port),
            Endpoint::new(mid, PortId::new(1)),
            dp_latency_ns,
        )
        .unwrap();
        // mid:p2 <-> S5:p(i+1)
        t.add_link(
            Endpoint::new(mid, PortId::new(2)),
            Endpoint::new(S5, port),
            dp_latency_ns,
        )
        .unwrap();
    }
    for i in 1..=5u16 {
        t.add_link(
            Endpoint::new(SwitchId::new(i), PortId::new(63)),
            Endpoint::new(SwitchId::CONTROLLER, PortId::new((i - 1) as u8)),
            cp_latency_ns,
        )
        .unwrap();
    }
    t
}

/// Result of one Fig. 17 run.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig17Result {
    /// Which arm ran.
    pub scenario: Scenario,
    /// Traffic share per path (via S2, via S3, via S4).
    pub path_share: [f64; 3],
    /// Probes S1 dropped for failed verification.
    pub probes_dropped: u64,
    /// Alerts the controller received.
    pub alerts: u64,
    /// Packets delivered at S5.
    pub delivered: u64,
    /// Total data packets injected.
    pub injected: u64,
}

/// Configuration of a Fig. 17 run.
#[derive(Clone, Copy, Debug)]
pub struct Fig17Config {
    /// Probe rounds.
    pub rounds: u32,
    /// Data packets injected at S1 per round.
    pub packets_per_round: u32,
    /// Baseline path utilization percent (all paths equal).
    pub base_util: u8,
    /// How strongly last round's traffic share raises a path's utilization.
    pub congestion_gain: f64,
    /// The utilization value the adversary writes into probes.
    pub forged_util: u8,
    /// Key-material / RNG seed for the run.
    pub seed: u64,
}

impl Default for Fig17Config {
    fn default() -> Self {
        Fig17Config {
            rounds: 30,
            packets_per_round: 60,
            base_util: 10,
            congestion_gain: 80.0,
            // Below the idle baseline: the advertised value is always a
            // lie, so with P4Auth every tampered probe is detectably
            // modified (as in the paper, where the real S4 utilization is
            // persistently high).
            forged_util: 5,
            seed: 0x5eed_0017,
        }
    }
}

fn build(scenario: Scenario, seed: u64) -> Network {
    let topo = fig3_topology(50_000, 200_000);
    let controller_config = ControllerConfig {
        auth_enabled: scenario.auth_enabled(),
        ..ControllerConfig::default()
    };
    Network::build(
        topo,
        controller_config,
        seed,
        |id| {
            let ports = if id == S1 || id == S5 { 3 } else { 2 };
            Some(HulaApp::boxed(HulaConfig::new(8, ports)))
        },
        move |_, config| {
            if scenario.auth_enabled() {
                config
            } else {
                config.insecure_baseline()
            }
        },
    )
}

/// Runs one arm of Fig. 17.
pub fn run(scenario: Scenario, config: Fig17Config) -> Fig17Result {
    let mut net = build(scenario, config.seed);
    if scenario.auth_enabled() {
        net.bootstrap_keys();
        let _ = net.take_events();
    }

    // The MitM sits on the S4→S1 direction of the S4–S1 link.
    if scenario.adversary() {
        let (link, _) = net
            .sim
            .topology()
            .link_at(SwitchId::new(4), PortId::new(1))
            .expect("S4-S1 link");
        net.sim.install_tap(
            link,
            SwitchId::new(4),
            link_mitm::rewrite_probe_field(
                HULA_SYSTEM_ID,
                6,
                config.forged_util,
                link_mitm::tamper_counter(),
            ),
        );
    }

    // Mids never route data backwards toward S1: the reverse link is
    // marked fully utilized.
    for &mid in &MIDS {
        net.switches[&mid]
            .borrow_mut()
            .chassis_mut()
            .register_mut(hula::regs::LOCAL_UTIL)
            .unwrap()
            .write(1, 99)
            .unwrap();
    }

    let mut last_share = [1.0 / 3.0; 3];
    let mut prev_tx = [0u64; 3];
    let mut flow: u32 = 0;

    for round in 1..=config.rounds {
        // Path utilization this round: base + congestion from last round's
        // traffic share, applied at each mid's S5-facing port (the port the
        // probe ingresses from S5).
        for (i, &mid) in MIDS.iter().enumerate() {
            let util = (config.base_util as f64 + config.congestion_gain * last_share[i])
                .clamp(0.0, 100.0) as u64;
            net.switches[&mid]
                .borrow_mut()
                .chassis_mut()
                .register_mut(hula::regs::LOCAL_UTIL)
                .unwrap()
                .write(2, util)
                .unwrap();
        }

        // S5 floods this round's probes out each of its three ports. The
        // injection order rotates per round — on real hardware probe
        // arrival order is effectively arbitrary, and a fixed order would
        // systematically favour the port whose probe lands last.
        for k in 0..3u8 {
            let port = 1 + (round as u8 + k) % 3;
            let probe = Probe {
                dst: S5.value(),
                round,
                util: 0,
            };
            net.originate_probe(S5, PortId::new(port), HULA_SYSTEM_ID, probe.encode());
        }
        net.sim.run_to_completion();

        // S1 sends this round's data toward S5.
        for _ in 0..config.packets_per_round {
            flow = flow.wrapping_add(1);
            let bytes = DataFrame {
                dst: S5.value(),
                flow,
            }
            .encode();
            let now = net.sim.now();
            net.sim.with_node(S1, |node, out| {
                node.on_frame(now, PortId::new(9), bytes.clone().into(), out);
            });
        }
        net.sim.run_to_completion();

        // Measure this round's share from S1's per-port tx counters.
        let agent = net.switches[&S1].borrow();
        let tx_reg = agent.chassis().register(hula::regs::TX_COUNT).unwrap();
        let mut round_tx = [0u64; 3];
        for (i, rt) in round_tx.iter_mut().enumerate() {
            let total = tx_reg.read(i as u32 + 1).unwrap();
            *rt = total - prev_tx[i];
            prev_tx[i] = total;
        }
        drop(agent);
        let round_total: u64 = round_tx.iter().sum();
        if round_total > 0 {
            for i in 0..3 {
                last_share[i] = round_tx[i] as f64 / round_total as f64;
            }
        }
    }

    let agent = net.switches[&S1].borrow();
    let tx_reg = agent.chassis().register(hula::regs::TX_COUNT).unwrap();
    let tx: Vec<u64> = (1..=3).map(|p| tx_reg.read(p).unwrap()).collect();
    let probes_dropped = agent.stats().probes_dropped;
    drop(agent);
    let delivered = net.switches[&S5]
        .borrow()
        .chassis()
        .register(hula::regs::DELIVERED)
        .unwrap()
        .read(S5.value() as u32)
        .unwrap();
    let total: u64 = tx.iter().sum::<u64>().max(1);
    let alerts = net.controller.borrow().alerts().len() as u64;

    Fig17Result {
        scenario,
        path_share: [
            tx[0] as f64 / total as f64,
            tx[1] as f64 / total as f64,
            tx[2] as f64 / total as f64,
        ],
        probes_dropped,
        alerts,
        delivered,
        injected: config.rounds as u64 * config.packets_per_round as u64,
    }
}

/// Runs all three arms.
pub fn run_all(config: Fig17Config) -> Vec<Fig17Result> {
    Scenario::ALL.into_iter().map(|s| run(s, config)).collect()
}
