//! Fig. 21: in-network control-message processing time vs. hop count.
//!
//! A HULA probe traverses a chain of BMv2-profile switches; each on-path
//! switch verifies the probe's digest with its ingress port key and
//! re-seals it with its egress port key. The experiment measures probe
//! traversal time with and without P4Auth as the chain grows, reproducing
//! the paper's observation that the overhead grows linearly with hop
//! count and stays in the single-digit percents.

use crate::harness::Network;
use crate::hula::{HulaApp, HulaConfig, Probe, HULA_SYSTEM_ID};
use p4auth_controller::ControllerConfig;
use p4auth_netsim::topology::Topology;
use p4auth_wire::ids::{PortId, SwitchId};

/// One row of Fig. 21.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HopsPoint {
    /// Number of hops the probe traverses (switches minus one).
    pub hops: u16,
    /// Traversal time without P4Auth (ns of simulated time).
    pub baseline_ns: u64,
    /// Traversal time with P4Auth.
    pub p4auth_ns: u64,
}

impl HopsPoint {
    /// P4Auth overhead as a percentage of the baseline.
    pub fn overhead_pct(&self) -> f64 {
        100.0 * (self.p4auth_ns as f64 - self.baseline_ns as f64) / self.baseline_ns as f64
    }
}

/// Fixed measurement-fixture cost added to every traversal: the Mininet
/// host's packet generation, kernel veth TX/RX and capture path in the
/// paper's BMv2 setup. Both arms pay it, which is why P4Auth's *relative*
/// overhead grows with hop count (the fixture amortizes).
pub const HOST_FIXTURE_NS: u64 = 8_000_000;

/// Measures probe traversal across an `n_switches` chain, with or without
/// P4Auth, on the BMv2 cost profile.
pub fn probe_traversal_ns(n_switches: u16, p4auth: bool) -> u64 {
    // Mininet veth links have negligible propagation latency.
    let topo = Topology::chain(n_switches, 10_000, 2_000_000);
    let mut net = Network::build(
        topo,
        ControllerConfig {
            auth_enabled: p4auth,
            ..ControllerConfig::default()
        },
        0x5eed_0021,
        |_| Some(HulaApp::boxed(HulaConfig::new(64, 2))),
        move |_, config| {
            let config = config.bmv2();
            if p4auth {
                config
            } else {
                config.insecure_baseline()
            }
        },
    );
    if p4auth {
        net.bootstrap_keys();
        let _ = net.take_events();
    }

    // Probe from S1 toward the end of the chain (S1's port 2 faces S2).
    let start = net.sim.now();
    let probe = Probe {
        dst: n_switches,
        round: 1,
        util: 0,
    };
    net.originate_probe(
        SwitchId::new(1),
        PortId::new(2),
        HULA_SYSTEM_ID,
        probe.encode(),
    );
    net.sim.run_to_completion();
    HOST_FIXTURE_NS + net.sim.now().since(start)
}

/// Runs the full Fig. 21 sweep (hop counts 2..=max_hops).
pub fn sweep(max_hops: u16) -> Vec<HopsPoint> {
    (2..=max_hops)
        .map(|hops| {
            // `hops` link traversals need `hops + 1` switches.
            let n = hops + 1;
            HopsPoint {
                hops,
                baseline_ns: probe_traversal_ns(n, false),
                p4auth_ns: probe_traversal_ns(n, true),
            }
        })
        .collect()
}
