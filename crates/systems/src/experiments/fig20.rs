//! Fig. 20: key-management RTTs measured on the simulator.
//!
//! RTT is "the time elapsed from the first message exchange of key
//! initialization/updation until the key derivation" (§IX-B). Local
//! operations run over the (slow) C-DP channel; port-key initialization is
//! redirected via the controller, which checks digests on every leg; port
//! key updates run directly DP-DP and are the fastest despite exchanging
//! three messages.

use crate::harness::{ControllerNode, Network};
use p4auth_controller::ControllerConfig;
use p4auth_core::kmp::KeyOperation;
use p4auth_netsim::topology::Topology;
use p4auth_wire::ids::{PortId, SwitchId};

/// Measured RTTs in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fig20Result {
    /// Local key initialization (EAK + ADHKD, 4 messages).
    pub local_init_ns: u64,
    /// Local key update (ADHKD, 2 messages).
    pub local_update_ns: u64,
    /// Port key initialization (5 messages via the controller).
    pub port_init_ns: u64,
    /// Port key update (1 C-DP + 2 direct DP-DP messages).
    pub port_update_ns: u64,
}

impl Fig20Result {
    /// `(label, rtt_ns)` rows in the figure's order.
    pub fn rows(&self) -> [(&'static str, u64); 4] {
        [
            (KeyOperation::LocalInit.label(), self.local_init_ns),
            (KeyOperation::LocalUpdate.label(), self.local_update_ns),
            (KeyOperation::PortInit.label(), self.port_init_ns),
            (KeyOperation::PortUpdate.label(), self.port_update_ns),
        ]
    }
}

/// Measures all four KMP operations on a two-switch topology.
///
/// `c_dp_latency_ns` / `dp_dp_latency_ns` are the one-way link latencies
/// (defaults in [`measure_default`] match the workspace calibration).
pub fn measure(c_dp_latency_ns: u64, dp_dp_latency_ns: u64) -> Fig20Result {
    let mut topo = Topology::chain(2, dp_dp_latency_ns, c_dp_latency_ns);
    // chain(2) gives S1–S2 plus C-DP links; nothing else needed.
    let _ = &mut topo;
    let mut net = Network::build(
        topo,
        ControllerConfig::default(),
        0x5eed_0020,
        |_| None,
        |_, c| c,
    );

    let s1 = SwitchId::new(1);
    let s2 = SwitchId::new(2);

    // Local key init for S2 first so port-key legs toward S2 authenticate.
    let start = net.sim.now();
    let outgoing = net.controller.borrow_mut().local_key_init(s2);
    inject_all(&mut net, outgoing);
    net.sim.run_to_completion();
    let _warmup = net.sim.now().since(start);

    // --- local key init (measured on S1) ---
    let start = net.sim.now();
    let outgoing = net.controller.borrow_mut().local_key_init(s1);
    inject_all(&mut net, outgoing);
    net.sim.run_to_completion();
    let local_init_ns = net.sim.now().since(start);

    // --- local key update ---
    let start = net.sim.now();
    let outgoing = net.controller.borrow_mut().local_key_update(s1);
    inject_all(&mut net, outgoing);
    net.sim.run_to_completion();
    let local_update_ns = net.sim.now().since(start);

    // --- port key init (S1:p2 <-> S2:p1) ---
    let start = net.sim.now();
    let outgoing =
        net.controller
            .borrow_mut()
            .port_key_init(s1, PortId::new(2), s2, PortId::new(1));
    inject_all(&mut net, outgoing);
    net.sim.run_to_completion();
    let port_init_ns = net.sim.now().since(start);

    // --- port key update (direct DP-DP) ---
    let start = net.sim.now();
    let outgoing = net
        .controller
        .borrow_mut()
        .port_key_update(s1, PortId::new(2), s2);
    inject_all(&mut net, outgoing);
    net.sim.run_to_completion();
    let port_update_ns = net.sim.now().since(start);

    Fig20Result {
        local_init_ns,
        local_update_ns,
        port_init_ns,
        port_update_ns,
    }
}

/// Measures with the workspace's calibrated latencies (200 µs C-DP,
/// 50 µs DP-DP — §IX-B scale).
pub fn measure_default() -> Fig20Result {
    measure(200_000, 50_000)
}

fn inject_all(net: &mut Network, outgoing: Vec<p4auth_controller::Outgoing>) {
    for o in outgoing {
        net.sim.inject_frame(
            SwitchId::CONTROLLER,
            ControllerNode::port_for(o.to),
            o.bytes,
        );
    }
}
