//! Flow-completion-time impact of the HULA attack — the §II motivation
//! ("altering the content in control messages can trick the
//! packet-processing algorithm, leading to degradation of network
//! performance (e.g., inflates flow completion time)") quantified on the
//! simulator's bandwidth/queueing model.
//!
//! Setup: the Fig. 3 topology with *finite capacity* on the mid→S5 links.
//! A host attached to S1 replays a synthetic CAIDA-like flow trace toward
//! S5. When the on-link MitM drags all traffic onto the S4 path, that
//! link's transmitter queue builds and flows finish late; with P4Auth the
//! forged probes are dropped and completion times return to the clean
//! baseline.

use super::Scenario;
use crate::experiments::fig17::fig3_topology;
use crate::harness::{Network, HOST_ID_BASE};
use crate::hula::{self, DataFrame, HulaApp, HulaConfig, Probe, HULA_SYSTEM_ID};
use p4auth_attacks::link_mitm;
use p4auth_controller::ControllerConfig;
use p4auth_netsim::topology::Endpoint;
use p4auth_wire::ids::{PortId, SwitchId};
use p4auth_workloads::flows::{FlowGen, FlowGenConfig};
use p4auth_workloads::trace;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

const S1: SwitchId = SwitchId::new(1);
const S5: SwitchId = SwitchId::new(5);
const SRC_HOST: SwitchId = SwitchId::new(HOST_ID_BASE);
const DST_HOST: SwitchId = SwitchId::new(HOST_ID_BASE + 1);
const MIDS: [SwitchId; 3] = [SwitchId::new(2), SwitchId::new(3), SwitchId::new(4)];
/// The destination "prefix" the flows target: it lives behind S5's host
/// port, so S5 forwards (rather than consumes) the data.
const DST_PREFIX: u16 = 6;
/// S5's port toward the destination host.
const DST_PORT: PortId = PortId::new(4);

/// Configuration of an FCT run.
#[derive(Clone, Copy, Debug)]
pub struct FctConfig {
    /// Flows to replay.
    pub flows: usize,
    /// Mid→S5 link capacity in bits/s (the bottleneck).
    pub bottleneck_bps: u64,
    /// Probe round period (ns).
    pub probe_period_ns: u64,
    /// Probe rounds to run (bounds the experiment).
    pub rounds: u32,
    /// Workload seed.
    pub seed: u64,
}

impl Default for FctConfig {
    fn default() -> Self {
        FctConfig {
            flows: 120,
            // ~7-byte frames at high rate: size the bottleneck so one path
            // saturates but three paths together do not.
            bottleneck_bps: 1_200_000,
            probe_period_ns: 2_000_000,
            rounds: 40,
            seed: 0xfc7_5eed,
        }
    }
}

/// Result of one FCT run.
#[derive(Clone, Debug)]
pub struct FctResult {
    /// Which arm ran.
    pub scenario: Scenario,
    /// Mean flow completion time (ns).
    pub mean_fct_ns: f64,
    /// 95th-percentile flow completion time (ns).
    pub p95_fct_ns: u64,
    /// Flows that completed (all packets observed at S5's side).
    pub completed: usize,
    /// Total flows replayed.
    pub total: usize,
    /// Traffic share per path at S1 (via S2, S3, S4).
    pub path_share: [f64; 3],
}

/// Runs one arm.
pub fn run(scenario: Scenario, config: FctConfig) -> FctResult {
    // Topology: Fig. 3 plus a source host off S1 (port 9) and a
    // destination host off S5 (port 4, behind the bottlenecks).
    let mut topo = fig3_topology(50_000, 200_000);
    topo.add_node(SRC_HOST).unwrap();
    topo.add_link(
        Endpoint::new(SRC_HOST, PortId::new(1)),
        Endpoint::new(S1, PortId::new(9)),
        10_000,
    )
    .unwrap();
    topo.add_node(DST_HOST).unwrap();
    topo.add_link(
        Endpoint::new(DST_HOST, PortId::new(1)),
        Endpoint::new(S5, DST_PORT),
        10_000,
    )
    .unwrap();
    // Finite capacity on the mid→S5 legs (the bottleneck the attack
    // congests).
    for &mid in &MIDS {
        let (link, _) = topo.link_at(mid, PortId::new(2)).expect("mid-S5 link");
        topo.set_bandwidth(link, config.bottleneck_bps);
    }

    let controller_config = ControllerConfig {
        auth_enabled: scenario.auth_enabled(),
        ..ControllerConfig::default()
    };
    let mut net = Network::build(
        topo,
        controller_config,
        config.seed,
        |id| {
            let ports = if id == S1 || id == S5 { 3 } else { 2 };
            Some(HulaApp::boxed(HulaConfig::new(8, ports)))
        },
        move |_, agent_config| {
            if scenario.auth_enabled() {
                agent_config
            } else {
                agent_config.insecure_baseline()
            }
        },
    );
    if scenario.auth_enabled() {
        net.bootstrap_keys();
        let _ = net.take_events();
    }
    if scenario.adversary() {
        let (link, _) = net
            .sim
            .topology()
            .link_at(SwitchId::new(4), PortId::new(1))
            .expect("S4-S1 link");
        net.sim.install_tap(
            link,
            SwitchId::new(4),
            link_mitm::rewrite_probe_field(HULA_SYSTEM_ID, 6, 5, link_mitm::tamper_counter()),
        );
    }
    // Mids never route backward toward S1.
    for &mid in &MIDS {
        net.switches[&mid]
            .borrow_mut()
            .chassis_mut()
            .register_mut(hula::regs::LOCAL_UTIL)
            .unwrap()
            .write(1, 99)
            .unwrap();
    }

    // S5 routes the destination prefix out of its host port; the entry is
    // refreshed each probe round so HULA's aging never replaces it.
    {
        let s5 = net.switches[&S5].borrow_mut();
        let mut agent = s5;
        let chassis = agent.chassis_mut();
        chassis
            .register_mut(hula::regs::BEST_HOP)
            .unwrap()
            .write(DST_PREFIX as u32, DST_PORT.value() as u64)
            .unwrap();
        chassis
            .register_mut(hula::regs::BEST_UTIL)
            .unwrap()
            .write(DST_PREFIX as u32, 0)
            .unwrap();
    }

    // Completion observation: the destination host records per-flow last
    // arrival time and packet count *after* the bottleneck queues.
    let arrivals: Rc<RefCell<HashMap<u32, (u64, u32)>>> = Rc::new(RefCell::new(HashMap::new()));
    {
        let arrivals = arrivals.clone();
        net.attach_sink(
            DST_HOST,
            Box::new(move |now, _ingress, payload: &[u8]| {
                if let Some(frame) = DataFrame::decode(payload) {
                    let mut a = arrivals.borrow_mut();
                    let entry = a.entry(frame.flow).or_insert((0, 0));
                    entry.0 = now.as_ns();
                    entry.1 += 1;
                }
            }),
        );
    }

    // Workload: flows of packets toward the destination prefix, replayed
    // by the source host.
    let flows = FlowGen::new(FlowGenConfig {
        mean_interarrival_ns: 400_000.0,
        dst: DST_PREFIX,
        seed: config.seed,
        ..FlowGenConfig::default()
    })
    .take_flows(config.flows);
    let packets = trace::expand(&flows, 20_000);
    // Start the replay one probe period in, so first-round probes have
    // installed routes before the first packets need them.
    let base_ns = net.sim.now().as_ns() + config.probe_period_ns;
    let schedule: Vec<(u64, PortId, Vec<u8>)> = packets
        .iter()
        .map(|p| {
            (
                base_ns + p.ts_ns,
                PortId::new(1),
                DataFrame {
                    dst: p.dst,
                    flow: p.flow,
                }
                .encode(),
            )
        })
        .collect();
    net.attach_traffic_source(SRC_HOST, schedule);

    // Drive probe rounds concurrently with the replay.
    let mut last_share: [f64; 3] = [1.0 / 3.0; 3];
    let mut prev_tx = [0u64; 3];
    for round in 1..=config.rounds {
        for (i, &mid) in MIDS.iter().enumerate() {
            let util = (10.0 + 80.0 * last_share[i]).clamp(0.0, 100.0) as u64;
            net.switches[&mid]
                .borrow_mut()
                .chassis_mut()
                .register_mut(hula::regs::LOCAL_UTIL)
                .unwrap()
                .write(2, util)
                .unwrap();
        }
        // Keep S5's own route to the prefix fresh against aging.
        net.switches[&S5]
            .borrow_mut()
            .chassis_mut()
            .register_mut(hula::regs::BEST_ROUND)
            .unwrap()
            .write(DST_PREFIX as u32, round as u64)
            .unwrap();
        for k in 0..3u8 {
            let port = 1 + (round as u8 + k) % 3;
            let probe = Probe {
                dst: DST_PREFIX,
                round,
                util: 0,
            };
            net.originate_probe(S5, PortId::new(port), HULA_SYSTEM_ID, probe.encode());
        }
        let deadline = net.sim.now() + config.probe_period_ns;
        net.sim.run_until(deadline);

        let agent = net.switches[&S1].borrow();
        let tx_reg = agent.chassis().register(hula::regs::TX_COUNT).unwrap();
        let mut round_tx = [0u64; 3];
        for (i, rt) in round_tx.iter_mut().enumerate() {
            let total = tx_reg.read(i as u32 + 1).unwrap();
            *rt = total - prev_tx[i];
            prev_tx[i] = total;
        }
        drop(agent);
        let round_total: u64 = round_tx.iter().sum();
        if round_total > 0 {
            for i in 0..3 {
                last_share[i] = round_tx[i] as f64 / round_total as f64;
            }
        }
    }
    net.sim.run_to_completion();

    // FCTs: last observed packet time minus flow arrival, for flows whose
    // packets were all observed.
    let arrivals = arrivals.borrow();
    let mut fcts: Vec<u64> = Vec::new();
    for f in &flows {
        if let Some(&(last_ns, count)) = arrivals.get(&f.id) {
            if count >= f.packets {
                fcts.push(last_ns - (base_ns + f.arrival_ns));
            }
        }
    }
    let tx: Vec<u64> = {
        let agent = net.switches[&S1].borrow();
        let tx_reg = agent.chassis().register(hula::regs::TX_COUNT).unwrap();
        (1..=3).map(|p| tx_reg.read(p).unwrap()).collect()
    };
    let tx_total = tx.iter().sum::<u64>().max(1) as f64;
    let path_share = [
        tx[0] as f64 / tx_total,
        tx[1] as f64 / tx_total,
        tx[2] as f64 / tx_total,
    ];

    fcts.sort_unstable();
    let completed = fcts.len();
    let mean = if completed == 0 {
        0.0
    } else {
        fcts.iter().sum::<u64>() as f64 / completed as f64
    };
    let p95 = fcts
        .get(completed.saturating_sub(1).min(completed * 95 / 100))
        .copied()
        .unwrap_or(0);

    FctResult {
        scenario,
        mean_fct_ns: mean,
        p95_fct_ns: p95,
        completed,
        total: flows.len(),
        path_share,
    }
}

/// Runs all three arms.
pub fn run_all(config: FctConfig) -> Vec<FctResult> {
    Scenario::ALL.into_iter().map(|s| run(s, config)).collect()
}
