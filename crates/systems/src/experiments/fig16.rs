//! Fig. 16: protecting RouteScout from a control-plane adversary.
//!
//! A single RouteScout switch splits traffic across two upstream paths.
//! The controller pulls per-path latency each epoch and installs a new
//! split ratio. The §II-A adversary (compromised switch OS) inflates the
//! latency of path 1 inside read responses, tricking the controller into
//! diverting traffic to the genuinely slower path 2. With P4Auth the
//! tampered responses fail verification and the controller retains the
//! pre-attack ratio, raising alerts.

use super::Scenario;
use crate::harness::Network;
use crate::routescout::{self, RouteScoutApp, RouteScoutController, RsFrame};
use p4auth_attacks::ctrl_mitm;
use p4auth_controller::ControllerConfig;
use p4auth_netsim::topology::{Endpoint, Topology};
use p4auth_wire::ids::{PortId, SwitchId};
use p4auth_workloads::latency::{PathLatency, PathLatencyConfig};

/// Result of one Fig. 16 run.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig16Result {
    /// Which arm ran.
    pub scenario: Scenario,
    /// Fraction of traffic on each path over the whole run.
    pub path_share: [f64; 2],
    /// Fraction of traffic on each path after the attack epoch (the
    /// figure's steady-state comparison).
    pub post_attack_share: [f64; 2],
    /// Final split ratio at the controller (percent to path 0).
    pub final_split: u64,
    /// Epochs in which tampering was detected.
    pub tamper_detections: u64,
    /// Total packets forwarded.
    pub packets: u64,
}

/// Configuration of a Fig. 16 run.
#[derive(Clone, Copy, Debug)]
pub struct Fig16Config {
    /// Controller epochs to run.
    pub epochs: u32,
    /// Data packets per epoch.
    pub packets_per_epoch: u32,
    /// Epoch index at which the adversary activates (paper-style: the
    /// system reaches its legitimate operating point first).
    pub attack_from_epoch: u32,
    /// Latency inflation factor applied by the adversary.
    pub inflation_factor: u64,
    /// Mean latency of path 0 (µs) — the genuinely better path.
    pub path0_mean_us: f64,
    /// Mean latency of path 1 (µs).
    pub path1_mean_us: f64,
    /// Workload / RNG seed.
    pub seed: u64,
}

impl Default for Fig16Config {
    fn default() -> Self {
        Fig16Config {
            epochs: 12,
            packets_per_epoch: 400,
            attack_from_epoch: 3,
            inflation_factor: 5,
            path0_mean_us: 200.0,
            path1_mean_us: 350.0,
            seed: 0xf16_5eed,
        }
    }
}

/// Builds the single-switch RouteScout network.
fn build(scenario: Scenario, seed: u64) -> Network {
    let mut topo = Topology::new();
    topo.add_node(SwitchId::CONTROLLER).unwrap();
    topo.add_node(SwitchId::new(1)).unwrap();
    // Two upstream "paths" are local ports 1 and 2; only the C-DP link is
    // simulated as a real link.
    topo.add_link(
        Endpoint::new(SwitchId::new(1), PortId::new(63)),
        Endpoint::new(SwitchId::CONTROLLER, PortId::new(0)),
        200_000,
    )
    .unwrap();

    let controller_config = ControllerConfig {
        auth_enabled: scenario.auth_enabled(),
        ..ControllerConfig::default()
    };
    Network::build(
        topo,
        controller_config,
        seed,
        |_| Some(RouteScoutApp::boxed()),
        move |_, config| {
            let config = routescout::map_registers(config);
            if scenario.auth_enabled() {
                config
            } else {
                config.insecure_baseline()
            }
        },
    )
}

/// Runs one arm of Fig. 16.
pub fn run(scenario: Scenario, config: Fig16Config) -> Fig16Result {
    let mut net = build(scenario, config.seed);
    if scenario.auth_enabled() {
        net.bootstrap_keys();
        let _ = net.take_events();
    }

    let sw = SwitchId::new(1);
    let mut rs_controller = RouteScoutController::new(sw);
    let mut lat0 = PathLatency::new(PathLatencyConfig::stable(config.path0_mean_us), config.seed);
    let mut lat1 = PathLatency::new(
        PathLatencyConfig::stable(config.path1_mean_us),
        config.seed ^ 1,
    );

    let mut flow: u32 = 0;
    let mut tx_at_attack = [0u64; 2];
    for epoch in 0..config.epochs {
        if epoch == config.attack_from_epoch {
            let agent = net.switches[&sw].borrow();
            let reg = agent
                .chassis()
                .register(routescout::regs::TX_COUNT)
                .unwrap();
            tx_at_attack = [reg.read(0).unwrap(), reg.read(1).unwrap()];
        }
        // Activate the adversary at the configured epoch: a tap on the C-DP
        // link, switch→controller direction, inflating path 0's latency sum.
        if scenario.adversary() && epoch == config.attack_from_epoch {
            let (link, _) = net
                .sim
                .topology()
                .link_at(sw, PortId::new(63))
                .expect("C-DP link exists");
            net.sim.install_tap(
                link,
                sw,
                ctrl_mitm::inflate_read_response(
                    routescout::reg_ids::LAT_SUM,
                    0,
                    config.inflation_factor,
                    ctrl_mitm::tamper_counter(),
                ),
            );
        }

        // Replay an epoch's worth of the synthetic trace through the switch.
        for _ in 0..config.packets_per_epoch {
            flow = flow.wrapping_add(1);
            let frame = RsFrame {
                flow,
                lat0_us: lat0.next_us(),
                lat1_us: lat1.next_us(),
            };
            let bytes = frame.encode();
            let now = net.sim.now();
            net.sim.with_node(sw, |node, out| {
                node.on_frame(now, PortId::new(9), bytes.clone().into(), out);
            });
        }
        net.sim.run_to_completion();

        // Controller epoch: read latencies, recompute, install.
        rs_controller.run_epoch(&mut net);
    }

    let agent = net.switches[&sw].borrow();
    let tx0 = agent
        .chassis()
        .register(routescout::regs::TX_COUNT)
        .unwrap()
        .read(0)
        .unwrap();
    let tx1 = agent
        .chassis()
        .register(routescout::regs::TX_COUNT)
        .unwrap()
        .read(1)
        .unwrap();
    let total = (tx0 + tx1).max(1) as f64;
    let post0 = tx0 - tx_at_attack[0];
    let post1 = tx1 - tx_at_attack[1];
    let post_total = (post0 + post1).max(1) as f64;

    Fig16Result {
        scenario,
        path_share: [tx0 as f64 / total, tx1 as f64 / total],
        post_attack_share: [post0 as f64 / post_total, post1 as f64 / post_total],
        final_split: rs_controller.split(),
        tamper_detections: rs_controller.tamper_alerts,
        packets: tx0 + tx1,
    }
}

/// Runs all three arms with the same configuration.
pub fn run_all(config: Fig16Config) -> Vec<Fig16Result> {
    Scenario::ALL.into_iter().map(|s| run(s, config)).collect()
}
