//! Experiment runners for the paper's evaluation (§IX).
//!
//! Each submodule reproduces one figure's scenario end to end on the
//! simulator and returns structured results; the benchmark harness and
//! the integration tests both consume these, so the numbers in
//! `EXPERIMENTS.md` and the assertions in `tests/` come from the same
//! code path.

pub mod fct;
pub mod fig16;
pub mod fig17;
pub mod fig20;
pub mod fig21;

/// The three experimental arms used by Figs. 16 and 17.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scenario {
    /// The undefended system with no attacker.
    NoAdversary,
    /// The undefended system under attack.
    Adversary,
    /// P4Auth enabled, same attack running.
    AdversaryWithP4Auth,
}

impl Scenario {
    /// All arms in the paper's presentation order.
    pub const ALL: [Scenario; 3] = [
        Scenario::NoAdversary,
        Scenario::Adversary,
        Scenario::AdversaryWithP4Auth,
    ];

    /// Whether P4Auth is active in this arm.
    pub fn auth_enabled(self) -> bool {
        matches!(self, Scenario::AdversaryWithP4Auth)
    }

    /// Whether the attacker is active in this arm.
    pub fn adversary(self) -> bool {
        !matches!(self, Scenario::NoAdversary)
    }

    /// Figure legend label.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::NoAdversary => "no adversary",
            Scenario::Adversary => "with adversary",
            Scenario::AdversaryWithP4Auth => "adversary + P4Auth",
        }
    }
}
