//! End-to-end scenario for the replicated control plane: a fat-tree
//! fleet partitioned across ≥2 [`ControllerReplica`]s, attacked with the
//! §II-A playbook, defended, and bulk-rolled.
//!
//! [`ControllerReplica`]: p4auth_controller::ControllerReplica
//!
//! One run exercises every cooperative path the replica layer has:
//!
//! 1. **Bootstrap** — local keys for all switches (each driven by its
//!    owner replica) and port keys for every DP-DP link, including the
//!    cross-partition redirects with their sequence-counter handoff.
//! 2. **Digest flood** (`attacks::digest_flood`) — forged acks on one
//!    victim C-DP channel; the snapshot ring turns the rejects into a
//!    windowed rate, the owning replica's defence daemon sees the
//!    crossing in the `rates` table and auto-rolls the victim's key.
//! 3. **Control-plane MitM** (`attacks::ctrl_mitm`) — a tap inflates a
//!    register read response on a switch owned by the *other* replica;
//!    the stale digest is rejected there, proving both partitions
//!    authenticate independently.
//! 4. **Bulk rollover** — a versioned epoch fans out over both
//!    partitions through the shared state table; per-replica fan-out
//!    latency is recorded in the `kmp` table and telemetry.
//!
//! The report (and the full telemetry snapshot inside it) serializes to
//! deterministic JSON; `repro -- replicas` and the CI two-run gate diff
//! two independent runs byte for byte.

use crate::harness::ReplicatedNetwork;
use p4auth_attacks::{ctrl_mitm, digest_flood};
use p4auth_controller::daemons::tables;
use p4auth_controller::statedb::Value;
use p4auth_controller::{ControllerConfig, ControllerEvent, DefenceConfig};
use p4auth_dataplane::register::RegisterArray;
use p4auth_netsim::time::SimTime;
use p4auth_netsim::topology::{Topology, HOST_ID_BASE};
use p4auth_primitives::rng::SplitMix64;
use p4auth_telemetry::Registry;
use p4auth_wire::ids::{RegId, SwitchId};
use std::sync::Arc;

/// The register mapped on every switch for the MitM phase.
const REG: RegId = RegId::new(1);
/// The C-DP channel hangs off front-panel port 63 (see
/// [`Topology::fat_tree_with_controller`]).
const CDP_PORT: u8 = 63;

/// Configuration of one replicated-control-plane run.
#[derive(Clone, Copy, Debug)]
pub struct ReplicatedConfig {
    /// Fat-tree arity (k=4 ⇒ 20 switches).
    pub k: u16,
    /// Controller replicas partitioning the fleet.
    pub replicas: usize,
    /// Forged frames in the digest-flood phase.
    pub flood_frames: u32,
    /// Defence trigger: windowed channel reject rate (rejects/sec).
    pub rate_threshold: u64,
    /// Workload / key seed.
    pub seed: u64,
}

impl Default for ReplicatedConfig {
    fn default() -> Self {
        ReplicatedConfig {
            k: 4,
            replicas: 2,
            flood_frames: 24,
            rate_threshold: 100,
            seed: 0x5e70_f2e9_11ca_5000,
        }
    }
}

/// Outcome of [`run`]; serializes deterministically via
/// [`ReplicatedReport::to_json`].
#[derive(Clone, Debug, PartialEq)]
pub struct ReplicatedReport {
    /// Replicas in the set.
    pub replicas: usize,
    /// Switches in the fleet.
    pub switches: usize,
    /// Switches owned by each replica (index order).
    pub partition_sizes: Vec<usize>,
    /// DP-DP links whose endpoints hash to different replicas (each ran
    /// the redirect + seq-handoff path during bootstrap).
    pub cross_partition_links: usize,
    /// Simulated bootstrap duration.
    pub bootstrap_ns: u64,
    /// Mitigations the defence daemons issued during the flood.
    pub flood_mitigations: u64,
    /// Whether the flood victim's local key was rolled automatically.
    pub victim_key_rolled: bool,
    /// Frames the MitM tap rewrote.
    pub mitm_tampered: u64,
    /// Digest rejects counted at the MitM target's owner replica.
    pub mitm_rejects_at_owner: u64,
    /// The bulk-rollover epoch that ran.
    pub rollover_epoch: u64,
    /// Whether every switch on every replica finished the epoch.
    pub rollover_complete: bool,
    /// Per-replica rollover fan-out latency (sim-ns, index order).
    pub fanout_ns: Vec<u64>,
    /// Final simulated time.
    pub final_time_ns: u64,
    /// Full telemetry snapshot (itself deterministic JSON).
    pub telemetry_json: String,
}

impl ReplicatedReport {
    /// Deterministic JSON: fixed key order, no floats, the telemetry
    /// snapshot embedded verbatim.
    pub fn to_json(&self) -> String {
        let sizes: Vec<String> = self.partition_sizes.iter().map(usize::to_string).collect();
        let fanout: Vec<String> = self.fanout_ns.iter().map(u64::to_string).collect();
        format!(
            concat!(
                "{{\"replicas\":{},\"switches\":{},\"partition_sizes\":[{}],",
                "\"cross_partition_links\":{},\"bootstrap_ns\":{},",
                "\"flood_mitigations\":{},\"victim_key_rolled\":{},",
                "\"mitm_tampered\":{},\"mitm_rejects_at_owner\":{},",
                "\"rollover_epoch\":{},\"rollover_complete\":{},",
                "\"fanout_ns\":[{}],\"final_time_ns\":{},\"telemetry\":{}}}\n"
            ),
            self.replicas,
            self.switches,
            sizes.join(","),
            self.cross_partition_links,
            self.bootstrap_ns,
            self.flood_mitigations,
            self.victim_key_rolled,
            self.mitm_tampered,
            self.mitm_rejects_at_owner,
            self.rollover_epoch,
            self.rollover_complete,
            fanout.join(","),
            self.final_time_ns,
            self.telemetry_json.trim_end(),
        )
    }
}

fn is_dp_dp(l: &p4auth_netsim::topology::Link) -> bool {
    let is_switch = |id: SwitchId| !id.is_controller() && id.value() < HOST_ID_BASE;
    is_switch(l.a.node) && is_switch(l.b.node)
}

/// Runs the full scenario; see the module docs for the phases.
///
/// # Panics
///
/// Panics if any phase fails to produce its expected effect (a key that
/// does not establish, a flood that does not trigger the defence, a
/// rollover that does not converge) — the scenario doubles as an
/// end-to-end assertion for `repro` and the tests.
pub fn run(config: ReplicatedConfig) -> ReplicatedReport {
    assert!(config.replicas >= 2, "the scenario is about replication");
    let registry = Arc::new(Registry::new());
    let mut net = ReplicatedNetwork::build(
        Topology::fat_tree_with_controller(config.k, 1_000, 200_000),
        config.replicas,
        ControllerConfig::default(),
        config.seed,
        |_| None,
        |_, c| c.map_register(REG, "ctr"),
    );
    for agent in net.switches.values() {
        agent
            .borrow_mut()
            .chassis_mut()
            .declare_register(RegisterArray::new("ctr", 8, 64));
    }
    net.enable_telemetry(registry.clone());
    net.enable_snapshot_ring(64);

    // Phase 1: bootstrap. Every partition must be non-empty and at least
    // one link must cross partitions, or the run proves nothing about
    // replication.
    let bootstrap_ns = net.bootstrap_keys().as_ns();
    let (partition_sizes, cross_partition_links) = {
        let set = net.set.borrow();
        let sizes: Vec<usize> = set.replicas().iter().map(|r| r.owned().len()).collect();
        assert!(sizes.iter().all(|&s| s > 0), "empty partition");
        let crossing = net
            .sim
            .topology()
            .links()
            .iter()
            .filter(|l| is_dp_dp(l) && set.owner(l.a.node) != set.owner(l.b.node))
            .count();
        assert!(crossing > 0, "no cross-partition links");
        (sizes, crossing)
    };
    let _ = net.take_events();

    // Phase 2: digest flood on the victim's C-DP channel. The baseline
    // ring sample marks the rate-window start; the orchestration tick
    // samples from then on.
    let victim = SwitchId::new(1);
    net.sample_ring();
    net.enable_defence_rate_driven(
        DefenceConfig {
            window_ns: 1_000_000,
            reject_threshold: 4,
            ..DefenceConfig::default()
        },
        config.rate_threshold,
    );
    let mut rng = SplitMix64::new(config.seed ^ 0xf100d);
    for frame in digest_flood::forged_acks(config.flood_frames, victim, 50_000, &mut rng) {
        net.sim
            .inject_frame(victim, p4auth_wire::ids::PortId::new(CDP_PORT), frame);
    }
    net.sim
        .run_until(SimTime::from_ns(net.sim.now().as_ns() + 200_000_000));
    let events = net.take_events();
    let flood_mitigations = events
        .iter()
        .filter(|e| matches!(e, ControllerEvent::DefenceMitigated { .. }))
        .count() as u64;
    let victim_key_rolled = events
        .iter()
        .any(|e| matches!(e, ControllerEvent::LocalKeyRolled(sw) if *sw == victim));
    assert!(victim_key_rolled, "flood must auto-roll the victim's key");

    // Phase 3: MitM on a switch the *other* replica owns.
    let target = {
        let set = net.set.borrow();
        let home = set.owner(victim);
        net.switches
            .keys()
            .copied()
            .filter(|&sw| set.owner(sw) != home)
            .min()
            .expect("both partitions are non-empty")
    };
    net.controller_write(target, REG, 0, 200);
    net.sim
        .run_until(SimTime::from_ns(net.sim.now().as_ns() + 50_000_000));
    let owner_label = format!("replica{}", net.set.borrow().owner(target));
    let rejects_before = registry
        .snapshot()
        .counter("auth_reject_bad_digest", &owner_label)
        .unwrap_or(0);
    let (cdp_link, _) = net
        .sim
        .topology()
        .link_at(target, p4auth_wire::ids::PortId::new(CDP_PORT))
        .expect("C-DP link exists");
    let tampered = ctrl_mitm::tamper_counter();
    net.sim.install_tap(
        cdp_link,
        target,
        ctrl_mitm::inflate_read_response(REG, 0, 5, tampered.clone()),
    );
    net.controller_read(target, REG, 0);
    net.sim
        .run_until(SimTime::from_ns(net.sim.now().as_ns() + 50_000_000));
    net.sim.remove_tap(cdp_link, target);
    let mitm_tampered = *tampered.borrow();
    let mitm_rejects_at_owner = registry
        .snapshot()
        .counter("auth_reject_bad_digest", &owner_label)
        .unwrap_or(0)
        .saturating_sub(rejects_before);
    assert!(mitm_tampered > 0, "the tap must see the read response");
    assert!(
        mitm_rejects_at_owner > 0,
        "the owner replica must reject the tampered response"
    );

    // Phase 4: versioned bulk rollover across both partitions.
    let rollover_epoch = net.start_bulk_rollover().expect("no epoch in flight");
    net.sim
        .run_until(SimTime::from_ns(net.sim.now().as_ns() + 500_000_000));
    let (rollover_complete, fanout_ns) = {
        let set = net.set.borrow();
        let complete = set.rollover_complete();
        let fanout = (0..config.replicas)
            .map(|i| {
                set.db()
                    .value(tables::KMP, &format!("fanout@replica{i}@{rollover_epoch}"))
                    .and_then(Value::as_u64)
                    .unwrap_or(0)
            })
            .collect();
        (complete, fanout)
    };
    assert!(rollover_complete, "epoch must converge on every partition");

    ReplicatedReport {
        replicas: config.replicas,
        switches: net.switches.len(),
        partition_sizes,
        cross_partition_links,
        bootstrap_ns,
        flood_mitigations,
        victim_key_rolled,
        mitm_tampered,
        mitm_rejects_at_owner,
        rollover_epoch,
        rollover_complete,
        fanout_ns,
        final_time_ns: net.sim.now().as_ns(),
        telemetry_json: registry.snapshot().to_json(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicated_scenario_end_to_end() {
        let report = run(ReplicatedConfig::default());
        assert_eq!(report.replicas, 2);
        assert_eq!(report.switches, 20); // fat_tree(4): 4 core + 8 agg + 8 edge
        assert!(report.flood_mitigations >= 1);
        assert!(report.victim_key_rolled);
        assert_eq!(report.rollover_epoch, 1);
        assert!(report.rollover_complete);
        assert!(
            report.fanout_ns.iter().all(|&f| f > 0),
            "every partition records a positive fan-out latency"
        );
    }
}
