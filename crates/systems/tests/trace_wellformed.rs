//! Property tests for the causal flight recorder: randomly generated
//! fault-plan campaigns must produce trace-span streams that are
//! well-formed (every span nests inside its parent's interval, exactly
//! one root per trace) and byte-for-byte identical across the heap
//! scheduler, the calendar scheduler and the sharded engine at 2 and 4
//! shards — the same engine-invariance discipline the metric snapshots
//! already obey, extended to the span layer.

use p4auth_netsim::fattree::FatTree;
use p4auth_netsim::fault::FaultPlan;
use p4auth_netsim::sched::SchedulerKind;
use p4auth_netsim::topology::LinkId;
use p4auth_systems::scaleload::Engine;
use p4auth_systems::userscale::{run_users_engine, UserScaleConfig};
use p4auth_telemetry::trace::{encode_trace, validate_well_formed};
use p4auth_telemetry::{Registry, SpanRecord};
use proptest::prelude::*;
use std::sync::Arc;

/// Span capacity comfortably above anything a smoke-scale fabric emits;
/// byte-identity across engines is only guaranteed at zero drops.
const TRACE_CAP: usize = 1 << 16;

/// Runs the fabric workload with `plan` installed on `engine`, tracing
/// enabled, and returns the canonical span stream plus the drop count.
fn traced_run(plan: &FaultPlan, engine: Engine) -> (Vec<SpanRecord>, u64) {
    let registry = Arc::new(Registry::with_capacities(0, TRACE_CAP));
    let mut cfg = UserScaleConfig::for_k(4, 600, 1);
    cfg.faults = Some(plan.clone());
    let run = run_users_engine(&cfg, engine, Some(registry.clone()));
    assert!(run.frames_sent > 0, "the fabric must move frames");
    (
        registry.trace().sorted_records(),
        registry.trace().dropped(),
    )
}

/// Builds a fault plan from raw `(link, down, duration)` triples, with
/// link indices wrapped into the topology's link table.
fn plan_from(flaps: &[(u8, u64, u64)]) -> FaultPlan {
    let topo = FatTree::new(4).build(1_500);
    let n = topo.links().len() as u32;
    let mut plan = FaultPlan::new();
    for &(link, down, duration) in flaps {
        let down = 10_000 + down;
        plan.flap(LinkId(u32::from(link) % n), down, down + duration.max(1));
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// For random flap schedules: each engine's span stream is
    /// well-formed, nothing is dropped, and the encoded `P4TR` bytes are
    /// identical across all four engines.
    #[test]
    fn random_fault_campaign_traces_are_engine_invariant(
        flaps in proptest::collection::vec(
            (any::<u8>(), 0u64..2_000_000, 10_000u64..1_000_000),
            0..4,
        ),
    ) {
        let plan = plan_from(&flaps);
        let (reference, dropped) = traced_run(&plan, Engine::Sequential(SchedulerKind::Calendar));
        prop_assert_eq!(dropped, 0, "calendar run dropped spans");
        prop_assert!(!reference.is_empty(), "the fabric emits spans");
        validate_well_formed(&reference).expect("calendar trace well-formed");
        let want = encode_trace(&reference, 0);

        for engine in [
            Engine::Sequential(SchedulerKind::Heap),
            Engine::Sharded { shards: 2 },
            Engine::Sharded { shards: 4 },
        ] {
            let label = engine.label();
            let (records, dropped) = traced_run(&plan, engine);
            prop_assert_eq!(dropped, 0, "{} run dropped spans", &label);
            validate_well_formed(&records).expect("trace well-formed");
            prop_assert_eq!(
                &encode_trace(&records, 0),
                &want,
                "{} trace diverged from calendar",
                &label
            );
        }
    }
}
