//! Engine differential over fault-injected campaign fabrics.
//!
//! Every scenario campaign's fabric phase — the user-scale workload with
//! its [`FaultPlan`](p4auth_netsim::fault::FaultPlan) installed — must be
//! bit-identical across the heap scheduler, the calendar scheduler and
//! the sharded engine at 2 and 4 shards, and must stay identical when
//! `P4AUTH_SHARD_STAGGER` delays workers at their export barriers. This
//! extends the plain-workload engine differentials (`shard_diff.rs`,
//! `aggregate_diff.rs`) to runs with link churn: faults are first-class
//! sim events, so engine choice must never leak into what a fault run
//! computes.

use p4auth_netsim::sched::SchedulerKind;
use p4auth_systems::campaigns::fabric_plans;
use p4auth_systems::scaleload::Engine;
use p4auth_systems::userscale::{run_users_engine, UserScaleConfig, UserScaleRun};

fn run(plan_name: &str, engine: Engine) -> UserScaleRun {
    let (_, plan) = fabric_plans()
        .into_iter()
        .find(|(n, _)| *n == plan_name)
        .expect("known campaign");
    let mut cfg = UserScaleConfig::for_k(4, 3_000, 2);
    cfg.faults = Some(plan);
    run_users_engine(&cfg, engine, None)
}

fn assert_engines_agree(name: &str, label: &str) {
    let cal = run(name, Engine::Sequential(SchedulerKind::Calendar));
    let heap = run(name, Engine::Sequential(SchedulerKind::Heap));
    let two = run(name, Engine::Sharded { shards: 2 });
    let four = run(name, Engine::Sharded { shards: 4 });
    for (engine, other) in [("heap", &heap), ("sharded(2)", &two), ("sharded(4)", &four)] {
        assert_eq!(
            cal.fingerprint(),
            other.fingerprint(),
            "{name}: {engine} diverged from calendar ({label})"
        );
        assert_eq!(
            cal.stats, other.stats,
            "{name}: {engine} drop taxonomy/fault counts diverged ({label})"
        );
    }
    assert!(
        cal.stats.faults_applied > 0 || name == "boot_storm_digest_flood",
        "{name}: the fault plan must actually fire"
    );
}

/// One process-wide test (env mutation is global): every campaign fabric
/// agrees across engines, first unstaggered, then under
/// `P4AUTH_SHARD_STAGGER` worker delays.
#[test]
fn campaign_fabrics_are_engine_invariant() {
    let names: Vec<&'static str> = fabric_plans().into_iter().map(|(n, _)| n).collect();
    assert_eq!(names.len(), 5);
    for name in &names {
        assert_engines_agree(name, "no stagger");
    }
    std::env::set_var("P4AUTH_SHARD_STAGGER", "120000");
    for name in &names {
        assert_engines_agree(name, "stagger 120us");
    }
    std::env::remove_var("P4AUTH_SHARD_STAGGER");
}
