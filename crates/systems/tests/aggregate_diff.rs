//! Differential test for host aggregation: an aggregate modelling exactly
//! one user per host slot must be bit-identical to individual host nodes —
//! per-node delivery streams, aggregate stats, final clock and telemetry
//! fingerprints — across sequential heap, sequential calendar, and sharded
//! engines with 1, 2 and 4 shards (including adversarial worker stagger).
//!
//! The reference column reimplements the scale workload's per-host node
//! locally (the same fig19 mix `netsim`'s `shard_diff` pins); the
//! aggregate columns wrap [`AggregateHostNode`] in a recording shim. Every
//! node records each frame it receives as `(time, ingress port, payload
//! bytes)`, so comparing per-node streams is exactly the "the fabric
//! cannot tell users were aggregated" claim.

use p4auth_netsim::fattree::FatTree;
use p4auth_netsim::frame::FrameBytes;
use p4auth_netsim::sched::SchedulerKind;
use p4auth_netsim::shard::{ShardPlan, ShardedSimulator};
use p4auth_netsim::sim::{Outbox, SimNode, SimStats, Simulator};
use p4auth_netsim::time::SimTime;
use p4auth_primitives::rng::{RandomSource, SplitMix64};
use p4auth_systems::scaleload::ScaleConfig;
use p4auth_systems::userscale::{AggregateHostNode, UserScaleConfig};
use p4auth_telemetry::Registry;
use p4auth_wire::ids::{PortId, SwitchId};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};

const READ_FRAME_BYTES: usize = 34;
const WRITE_FRAME_BYTES: usize = 58;
const SEND_TIMER: u64 = 1;

/// One recorded delivery: `(sim time ns, ingress port, payload)`.
type Delivery = (u64, u8, Vec<u8>);
/// Per-node delivery streams, dense by stream index (switches then hosts).
type Streams = Arc<Vec<Mutex<Vec<Delivery>>>>;

fn frame_dst(payload: &[u8]) -> SwitchId {
    SwitchId::new(u16::from_le_bytes([payload[0], payload[1]]))
}

struct Forwarder {
    ft: FatTree,
    id: SwitchId,
    proc_ns: u64,
    stream: usize,
    streams: Streams,
}

impl SimNode for Forwarder {
    fn on_frame(&mut self, now: SimTime, ingress: PortId, payload: FrameBytes, out: &mut Outbox) {
        self.streams[self.stream].lock().unwrap().push((
            now.as_ns(),
            ingress.value(),
            payload.to_vec(),
        ));
        let dst = frame_dst(&payload);
        let flow = payload[2] as u64;
        if let Some(port) = self.ft.next_hop(self.id, dst, flow) {
            out.send_delayed(port, payload, self.proc_ns);
        }
    }
}

/// The reference: one individual host per slot, replicating the scale
/// workload's host node verbatim.
struct RefHost {
    index: u16,
    remaining: u32,
    sent: u32,
    interval_ns: u64,
    rng: SplitMix64,
    ft: FatTree,
    stream: usize,
    streams: Streams,
}

impl SimNode for RefHost {
    fn on_frame(&mut self, now: SimTime, ingress: PortId, payload: FrameBytes, _: &mut Outbox) {
        self.streams[self.stream].lock().unwrap().push((
            now.as_ns(),
            ingress.value(),
            payload.to_vec(),
        ));
    }

    fn on_timer(&mut self, _now: SimTime, _timer_id: u64, out: &mut Outbox) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let hosts = self.ft.host_count();
        let mut dst = (self.rng.next_u64() % (hosts as u64 - 1)) as u16;
        if dst >= self.index {
            dst += 1;
        }
        let len = if self.sent % 3 == 2 {
            WRITE_FRAME_BYTES
        } else {
            READ_FRAME_BYTES
        };
        self.sent += 1;
        let mut buf = [0u8; WRITE_FRAME_BYTES];
        buf[..2].copy_from_slice(&self.ft.host(dst).value().to_le_bytes());
        buf[2] = (self.rng.next_u64() & 0xff) as u8;
        out.send(PortId::new(1), FrameBytes::from_slice(&buf[..len]));
        if self.remaining > 0 {
            out.set_timer(SEND_TIMER, self.interval_ns);
        }
    }
}

/// Records deliveries, then delegates to the wrapped aggregate.
struct RecordingAggregate {
    inner: AggregateHostNode,
    stream: usize,
    streams: Streams,
}

impl SimNode for RecordingAggregate {
    fn on_frame(&mut self, now: SimTime, ingress: PortId, payload: FrameBytes, out: &mut Outbox) {
        self.streams[self.stream].lock().unwrap().push((
            now.as_ns(),
            ingress.value(),
            payload.to_vec(),
        ));
        self.inner.on_frame(now, ingress, payload, out);
    }

    fn on_timer(&mut self, now: SimTime, timer_id: u64, out: &mut Outbox) {
        self.inner.on_timer(now, timer_id, out);
    }
}

fn make_streams(ft: &FatTree) -> Streams {
    let n = ft.switch_count() as usize + ft.host_count() as usize;
    Arc::new((0..n).map(|_| Mutex::new(Vec::new())).collect())
}

fn forwarder(cfg: &ScaleConfig, ft: FatTree, id: SwitchId, streams: &Streams) -> Box<Forwarder> {
    Box::new(Forwarder {
        ft,
        id,
        proc_ns: cfg.proc_ns,
        stream: id.value() as usize - 1,
        streams: streams.clone(),
    })
}

/// Builds the host-slot node for `column`: the individual reference host,
/// or a one-user aggregate wrapped for recording. Returns the node plus
/// the boot delay its timer must be armed with.
enum Column {
    Individual,
    Aggregate,
}

fn slot_node(
    column: &Column,
    cfg: &ScaleConfig,
    ft: FatTree,
    h: u16,
    streams: &Streams,
) -> (Box<dyn SimNode + Send>, u64) {
    let stream = ft.switch_count() as usize + h as usize;
    let boot = 1 + (h as u64 % 97) * 11;
    match column {
        Column::Individual => (
            Box::new(RefHost {
                index: h,
                remaining: cfg.frames_per_host,
                sent: 0,
                interval_ns: cfg.interval_ns,
                rng: SplitMix64::new(cfg.seed ^ (h as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                ft,
                stream,
                streams: streams.clone(),
            }),
            boot,
        ),
        Column::Aggregate => {
            let ucfg = UserScaleConfig::mirror_scale(cfg);
            let inner = AggregateHostNode::new(
                &ucfg,
                ft,
                h,
                h as u64,
                1,
                Arc::new(AtomicU64::new(0)),
                Arc::new(AtomicU64::new(0)),
            );
            let first = inner.first_due_ns().expect("one active user");
            assert_eq!(first, boot, "aggregate must boot like the host");
            (
                Box::new(RecordingAggregate {
                    inner,
                    stream,
                    streams: streams.clone(),
                }),
                first,
            )
        }
    }
}

/// Everything a run produces that must be column- and engine-invariant.
struct RunResult {
    label: String,
    streams: Vec<Vec<Delivery>>,
    events: u64,
    stats: SimStats,
    now_ns: u64,
    telemetry_json: String,
}

fn run_sequential(cfg: &ScaleConfig, column: Column, kind: SchedulerKind) -> RunResult {
    let ft = FatTree::new(cfg.k);
    let streams = make_streams(&ft);
    let registry = Arc::new(Registry::new());
    let mut sim = Simulator::with_scheduler(ft.build(cfg.latency_ns), kind);
    sim.set_telemetry(registry.clone());
    for id in 1..=ft.switch_count() {
        let id = SwitchId::new(id);
        sim.register_node(id, forwarder(cfg, ft, id, &streams));
    }
    for h in 0..ft.host_count() {
        let (node, boot) = slot_node(&column, cfg, ft, h, &streams);
        sim.register_node(ft.host(h), node);
        sim.schedule_timer(ft.host(h), SEND_TIMER, boot);
    }
    let events = sim.run_to_completion();
    let (stats, now_ns) = (sim.stats(), sim.now().as_ns());
    drop(sim);
    RunResult {
        label: format!(
            "{}-{}",
            match column {
                Column::Individual => "individual",
                Column::Aggregate => "aggregate",
            },
            kind.label()
        ),
        streams: unwrap_streams(streams),
        events,
        stats,
        now_ns,
        telemetry_json: registry.snapshot().to_json(),
    }
}

fn run_sharded_aggregate(cfg: &ScaleConfig, shards: usize, stagger_ns: &[u64]) -> RunResult {
    let ft = FatTree::new(cfg.k);
    let streams = make_streams(&ft);
    let registry = Arc::new(Registry::new());
    let topo = ft.build(cfg.latency_ns);
    let plan = ShardPlan::pod_aligned(&topo, shards);
    let mut sim = ShardedSimulator::new(topo, plan);
    sim.set_stagger(stagger_ns.to_vec());
    sim.set_telemetry(registry.clone());
    for id in 1..=ft.switch_count() {
        let id = SwitchId::new(id);
        sim.register_node(id, forwarder(cfg, ft, id, &streams));
    }
    for h in 0..ft.host_count() {
        let (node, boot) = slot_node(&Column::Aggregate, cfg, ft, h, &streams);
        sim.register_node(ft.host(h), node);
        sim.schedule_timer(ft.host(h), SEND_TIMER, boot);
    }
    let report = sim.run();
    RunResult {
        label: format!("aggregate-sharded-{shards} (stagger {stagger_ns:?})"),
        streams: unwrap_streams(streams),
        events: report.events,
        stats: report.stats,
        now_ns: report.now.as_ns(),
        telemetry_json: registry.snapshot().to_json(),
    }
}

fn unwrap_streams(streams: Streams) -> Vec<Vec<Delivery>> {
    Arc::try_unwrap(streams)
        .expect("all nodes dropped")
        .into_iter()
        .map(|m| m.into_inner().unwrap())
        .collect()
}

fn assert_runs_match(reference: &RunResult, other: &RunResult) {
    let ctx = format!("{} vs {}", reference.label, other.label);
    assert_eq!(reference.events, other.events, "{ctx}: event count");
    assert_eq!(reference.stats, other.stats, "{ctx}: stats");
    assert_eq!(reference.now_ns, other.now_ns, "{ctx}: final clock");
    for (i, (a, b)) in reference.streams.iter().zip(&other.streams).enumerate() {
        assert_eq!(a, b, "{ctx}: delivery stream of node index {i}");
    }
    assert_eq!(
        reference.telemetry_json, other.telemetry_json,
        "{ctx}: telemetry fingerprint"
    );
}

#[test]
fn one_user_aggregates_match_individual_hosts_across_engines() {
    let cfg = ScaleConfig::for_k(4, 30);
    let reference = run_sequential(&cfg, Column::Individual, SchedulerKind::Calendar);
    assert!(
        reference.stats.frames_delivered > 0,
        "workload must generate traffic"
    );
    let others = [
        run_sequential(&cfg, Column::Aggregate, SchedulerKind::Calendar),
        run_sequential(&cfg, Column::Aggregate, SchedulerKind::Heap),
        run_sharded_aggregate(&cfg, 1, &[]),
        run_sharded_aggregate(&cfg, 2, &[]),
        run_sharded_aggregate(&cfg, 4, &[]),
    ];
    for other in &others {
        assert_runs_match(&reference, other);
    }
}

#[test]
fn one_user_aggregates_survive_adversarial_stagger() {
    let cfg = ScaleConfig::for_k(4, 16);
    let reference = run_sequential(&cfg, Column::Individual, SchedulerKind::Calendar);
    let others = [
        run_sharded_aggregate(&cfg, 4, &[120_000, 0, 40_000]),
        run_sharded_aggregate(&cfg, 2, &[0, 90_000]),
    ];
    for other in &others {
        assert_runs_match(&reference, other);
    }
}
