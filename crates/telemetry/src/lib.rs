//! # p4auth-telemetry
//!
//! A lightweight, dependency-free metrics and structured-event layer for
//! the P4Auth reproduction.
//!
//! The workspace's protocol crates (simulator, data plane, agent,
//! controller) accept an optional shared [`Registry`]; when one is
//! attached they record what the paper's evaluation needs to observe —
//! verify accept/reject counts per reject reason, alert emit/suppress
//! decisions, frames delivered/dropped, per-packet pipeline usage and
//! register-operation latencies in simulated nanoseconds.
//!
//! Design constraints:
//!
//! - **Near-zero cost when idle.** Metric updates are single relaxed
//!   atomic RMWs on pre-registered handles; the event log is a no-op
//!   unless constructed with an explicit capacity
//!   ([`Registry::with_event_capacity`]). Crates that are not handed a
//!   registry skip instrumentation behind one `Option` branch.
//! - **No dependencies.** Events carry primitive ids and `&'static str`
//!   names so this crate sits at the bottom of the dependency graph, and
//!   JSON snapshots are hand-encoded ([`Snapshot::to_json`]).
//! - **Deterministic output.** Snapshots order series by
//!   `(name, label)` and events oldest-first, so two identical simulated
//!   runs produce byte-identical reports.
//!
//! ```
//! use p4auth_telemetry::{Event, Registry, RejectKind};
//!
//! let registry = Registry::with_event_capacity(1024);
//! let ok = registry.counter_with("auth_verify_ok", "s1");
//! ok.inc();
//! registry.histogram("register_op_ns").record(420_000);
//! registry.record(1_000, Event::AlertEmitted { source: 1, reason: RejectKind::BadDigest });
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("auth_verify_ok", "s1"), Some(1));
//! let json = snapshot.to_json();
//! assert!(json.contains("\"alert_emitted\""));
//! ```

#![warn(missing_docs)]

pub mod delta;
pub mod events;
pub mod metrics;
pub mod registry;
pub mod ring;
pub mod snapshot;
pub mod trace;

pub use delta::{HistogramDelta, SnapshotDelta};
pub use events::{DropCause, Event, EventLog, EventRecord, RejectKind};
pub use metrics::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use registry::Registry;
pub use ring::{RateSample, SnapshotRing};
pub use snapshot::{CounterSample, GaugeSample, HistogramSample, Snapshot};
pub use trace::{OpenSpan, SpanKind, SpanRecord, TraceLog};
