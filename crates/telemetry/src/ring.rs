//! A fixed-capacity ring of recent snapshots keyed by sim-time, yielding
//! windowed rates.
//!
//! The defence loop (and any dashboard) wants *rates* — rejects/sec per
//! `(peer, channel)`, frames/sec — not lifetime totals. A
//! [`SnapshotRing`] holds the last `capacity` `(t_ns, Snapshot)` pairs;
//! the window it spans is whatever its oldest and newest entries cover,
//! so pushing at a fixed export interval gives a sliding window of
//! `capacity × interval`. Rates are computed from counter differences
//! over the window and exposed either raw ([`SnapshotRing::rate`] /
//! [`SnapshotRing::rates`]) or as derived `*_per_sec` gauge samples
//! ([`SnapshotRing::rate_gauges`]) ready to feed back into a report.

use crate::snapshot::{GaugeSample, Snapshot};
use serde::Serialize;
use std::collections::VecDeque;

/// A windowed per-second rate for one counter series.
#[derive(Clone, PartialEq, Debug, Serialize)]
pub struct RateSample {
    /// Counter family name.
    pub name: String,
    /// Series label.
    pub label: String,
    /// Increase per second of sim-time over the ring's window.
    pub per_sec: f64,
}

/// Fixed-capacity ring of `(sim-ns, Snapshot)` pairs with windowed-rate
/// queries. See the module docs for sizing guidance.
pub struct SnapshotRing {
    capacity: usize,
    entries: VecDeque<(u64, Snapshot)>,
}

impl SnapshotRing {
    /// A ring keeping the most recent `capacity` snapshots.
    ///
    /// # Panics
    /// If `capacity < 2` — a single entry can never span a window.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "SnapshotRing needs at least 2 entries");
        SnapshotRing {
            capacity,
            entries: VecDeque::with_capacity(capacity),
        }
    }

    /// Number of buffered snapshots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring holds no snapshots yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of buffered snapshots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sim-time span between the oldest and newest entries, in ns.
    pub fn window_ns(&self) -> u64 {
        match (self.entries.front(), self.entries.back()) {
            (Some((t0, _)), Some((t1, _))) => t1 - t0,
            _ => 0,
        }
    }

    /// The newest buffered snapshot, if any.
    pub fn latest(&self) -> Option<&Snapshot> {
        self.entries.back().map(|(_, s)| s)
    }

    /// Pushes a snapshot taken at sim-time `t_ns`, evicting the oldest
    /// entry when full.
    ///
    /// # Panics
    /// If `t_ns` is older than the newest entry (snapshots must arrive in
    /// sim-time order).
    pub fn push(&mut self, t_ns: u64, snapshot: Snapshot) {
        if let Some(&(last, _)) = self.entries.back() {
            assert!(
                t_ns >= last,
                "snapshot pushed out of order: {t_ns} < {last}"
            );
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((t_ns, snapshot));
    }

    /// Per-second rate of counter `name{label}` over the ring's window.
    ///
    /// Needs at least two entries spanning non-zero sim-time; a series
    /// absent from the oldest entry counts from 0 (it was registered
    /// mid-window). Returns `None` when the window is empty/zero-width or
    /// the series is absent from the newest snapshot.
    ///
    /// Counters are monotone, so `end < start` means the ring was fed
    /// snapshots from different registries (e.g. one was reset or swapped
    /// for a merged one mid-window). That is a caller bug — debug builds
    /// assert — but release builds must not turn it into an astronomical
    /// wrapped rate that would drive the defence loop: the difference
    /// saturates at zero instead.
    pub fn rate(&self, name: &str, label: &str) -> Option<f64> {
        let (t0, oldest) = self.entries.front()?;
        let (t1, newest) = self.entries.back()?;
        let span = t1.checked_sub(*t0).filter(|&s| s > 0)?;
        let end = newest.counter(name, label)?;
        let start = oldest.counter(name, label).unwrap_or(0);
        debug_assert!(
            end >= start,
            "counter {name}{{{label}}} went backwards across the window: {end} < {start}"
        );
        Some(end.saturating_sub(start) as f64 * 1e9 / span as f64)
    }

    /// Windowed rates for every counter series in the newest snapshot,
    /// sorted by `(name, label)`. Empty when no window spans yet.
    pub fn rates(&self) -> Vec<RateSample> {
        let Some(newest) = self.latest() else {
            return Vec::new();
        };
        newest
            .counters
            .iter()
            .filter_map(|c| {
                self.rate(&c.name, &c.label).map(|per_sec| RateSample {
                    name: c.name.clone(),
                    label: c.label.clone(),
                    per_sec,
                })
            })
            .collect()
    }

    /// The windowed rates as derived gauge samples named
    /// `{name}_per_sec` (value rounded to the nearest integer), ready to
    /// splice into a report next to the raw series.
    pub fn rate_gauges(&self) -> Vec<GaugeSample> {
        self.rates()
            .into_iter()
            .map(|r| GaugeSample {
                name: format!("{}_per_sec", r.name),
                label: r.label,
                value: r.per_sec.round() as i64,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn rates_over_the_window() {
        let r = Registry::new();
        let rejects = r.counter_with("auth_rejects", "peer2:ch0");
        let frames = r.counter("frames");
        let mut ring = SnapshotRing::new(4);
        // 1000 ns apart; 5 rejects and 100 frames per tick.
        for tick in 0..6u64 {
            rejects.add(5);
            frames.add(100);
            ring.push(tick * 1_000, r.snapshot());
        }
        assert_eq!(ring.len(), 4); // capacity evicted the first two
        assert_eq!(ring.window_ns(), 3_000);
        // 15 rejects over 3 µs = 5e6/sec.
        let rate = ring.rate("auth_rejects", "peer2:ch0").unwrap();
        assert!((rate - 5e6).abs() < 1e-6, "rate = {rate}");
        let gauges = ring.rate_gauges();
        let fr = gauges
            .iter()
            .find(|g| g.name == "frames_per_sec")
            .expect("derived frames gauge");
        assert_eq!(fr.value, 100_000_000);
        assert_eq!(fr.label, "");
    }

    #[test]
    fn no_rate_without_a_window() {
        let r = Registry::new();
        r.counter("c").inc();
        let mut ring = SnapshotRing::new(2);
        assert_eq!(ring.rate("c", ""), None);
        ring.push(10, r.snapshot());
        assert_eq!(ring.rate("c", ""), None, "one entry has no span");
        ring.push(10, r.snapshot());
        assert_eq!(ring.rate("c", ""), None, "zero-width window");
        assert!(ring.rates().is_empty());
    }

    #[test]
    fn series_registered_mid_window_counts_from_zero() {
        let r = Registry::new();
        let mut ring = SnapshotRing::new(3);
        ring.push(0, r.snapshot());
        r.counter("late").add(8);
        ring.push(2_000, r.snapshot());
        let rate = ring.rate("late", "").unwrap();
        assert!((rate - 4e6).abs() < 1e-6, "rate = {rate}");
        assert_eq!(ring.rate("absent", ""), None);
    }

    /// Regression: two snapshots stamped at the same sim-ns used to divide
    /// by a zero span, yielding `inf` (or `NaN` for a flat counter) rates
    /// that poisoned every derived `*_per_sec` gauge. A zero-width window
    /// must yield `None` — even when the counters did move between the
    /// pushes — and must keep `rates()` / `rate_gauges()` empty.
    #[test]
    fn zero_span_window_yields_none_not_inf() {
        let r = Registry::new();
        let c = r.counter("burst");
        let mut ring = SnapshotRing::new(3);
        c.add(3);
        ring.push(7_000, r.snapshot());
        c.add(5); // counter moves, clock does not
        ring.push(7_000, r.snapshot());
        assert_eq!(ring.window_ns(), 0);
        assert_eq!(ring.rate("burst", ""), None, "0-span must not divide");
        assert!(ring.rates().is_empty());
        assert!(ring.rate_gauges().is_empty());
        // The moment the window gains width, the same ring produces a
        // finite rate again (5 more over 1 µs).
        c.add(5);
        ring.push(8_000, r.snapshot());
        let rate = ring.rate("burst", "").expect("non-zero span");
        assert!(rate.is_finite());
        assert!((rate - 1e7).abs() < 1e-6, "rate = {rate}");
    }

    /// Regression: a counter series that restarts lower (snapshots from a
    /// reset/replaced registry) used to wrap and report an astronomical
    /// rate. Release builds saturate at zero; debug builds assert.
    #[cfg(not(debug_assertions))]
    #[test]
    fn counter_restart_saturates_at_zero() {
        let high = Registry::new();
        high.counter("c").add(1_000);
        let low = Registry::new();
        low.counter("c").add(10);
        let mut ring = SnapshotRing::new(2);
        ring.push(0, high.snapshot());
        ring.push(1_000, low.snapshot());
        assert_eq!(ring.rate("c", ""), Some(0.0));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "went backwards across the window")]
    fn counter_restart_asserts_in_debug() {
        let high = Registry::new();
        high.counter("c").add(1_000);
        let low = Registry::new();
        low.counter("c").add(10);
        let mut ring = SnapshotRing::new(2);
        ring.push(0, high.snapshot());
        ring.push(1_000, low.snapshot());
        let _ = ring.rate("c", "");
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_push_panics() {
        let r = Registry::new();
        let mut ring = SnapshotRing::new(2);
        ring.push(100, r.snapshot());
        ring.push(50, r.snapshot());
    }
}
