//! The metric primitives: [`Counter`], [`Gauge`] and [`Histogram`].
//!
//! All three are lock-free and use relaxed atomics only, so a metric
//! update on the hot path costs a single uncontended atomic RMW. None of
//! them allocate after construction.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// Increments are relaxed atomic adds; reads are relaxed loads. The value
/// never decreases (there is deliberately no `dec`).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (e.g. outstanding-request depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`]: one for zero plus one per bit
/// width of a `u64` value.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket (power-of-two) histogram of `u64` samples.
///
/// Bucket 0 holds exact zeros; bucket `i` (1..=64) holds values whose bit
/// length is `i`, i.e. the range `[2^(i-1), 2^i - 1]`. This gives ~1 bit
/// of relative precision over the full `u64` range with no configuration,
/// which is plenty for latency distributions in simulated nanoseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Minimum sample; `u64::MAX` until the first record.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index a value falls into.
    #[inline]
    fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `i`.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Folds another histogram's captured contents (per-bucket counts
    /// plus count/sum/min/max) into this one — used when per-shard
    /// private registries are merged into a caller's registry. `buckets`
    /// are `(inclusive upper bound, count)` pairs as captured by a
    /// snapshot; bounds must be the canonical per-bucket bounds
    /// ([`Histogram::bucket_upper_bound`]).
    pub fn absorb(&self, count: u64, sum: u64, min: u64, max: u64, buckets: &[(u64, u64)]) {
        if count == 0 {
            return;
        }
        for &(bound, n) in buckets {
            self.buckets[Self::bucket_index(bound)].fetch_add(n, Ordering::Relaxed);
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum.fetch_add(sum, Ordering::Relaxed);
        self.min.fetch_min(min, Ordering::Relaxed);
        self.max.fetch_max(max, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        let v = self.min.load(Ordering::Relaxed);
        (self.count() > 0).then_some(v)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Mean of all samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() as f64 / n as f64)
    }

    /// A copy of the raw bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (dst, src) in out.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        out
    }

    /// Estimates quantile `q` (0.0..=1.0) as the upper bound of the
    /// bucket containing the rank, or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let buckets = self.buckets();
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Clamp the coarse bucket bound to the observed extrema so
                // tail quantiles never exceed the true maximum.
                let bound = Self::bucket_upper_bound(i);
                return Some(bound.min(self.max.load(Ordering::Relaxed)));
            }
        }
        self.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histogram_absorb_matches_direct_recording() {
        let direct = Histogram::new();
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [3u64, 900, 17, 64, 0] {
            direct.record(v);
            a.record(v);
        }
        for v in [1u64, 1 << 40, 2] {
            direct.record(v);
            b.record(v);
        }
        let merged = Histogram::new();
        for part in [&a, &b] {
            let buckets: Vec<(u64, u64)> = part
                .buckets()
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (Histogram::bucket_upper_bound(i), n))
                .collect();
            merged.absorb(
                part.count(),
                part.sum(),
                part.min().unwrap_or(0),
                part.max().unwrap_or(0),
                &buckets,
            );
        }
        // Absorbing an empty part changes nothing.
        merged.absorb(0, 0, 0, 0, &[]);
        assert_eq!(merged.count(), direct.count());
        assert_eq!(merged.sum(), direct.sum());
        assert_eq!(merged.min(), direct.min());
        assert_eq!(merged.max(), direct.max());
        assert_eq!(merged.buckets(), direct.buckets());
        assert_eq!(merged.quantile(0.99), direct.quantile(0.99));
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(3), 7);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_stats() {
        let h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile(0.5), None);
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 <= 3, "p50 {p50}");
        // Tail quantile is clamped to the observed max, not the bucket
        // bound (1023).
        assert_eq!(h.quantile(1.0), Some(1000));
    }

    #[test]
    fn histogram_mean() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        assert_eq!(h.mean(), Some(15.0));
    }
}
