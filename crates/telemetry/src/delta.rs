//! Delta snapshots: the difference between two [`Snapshot`]s of the same
//! registry, and the machinery to apply and merge them.
//!
//! A [`SnapshotDelta`] carries only what changed since a baseline —
//! counter increases, gauge restatements, per-bucket histogram
//! increments, events appended to the log — so periodic exporters ship
//! O(changed series) instead of O(all series) per window. The contract,
//! enforced by a property test below, is exact reconstruction:
//!
//! ```text
//! baseline.apply(delta_1).apply(delta_2)...  ==  final full snapshot
//! ```
//!
//! [`Snapshot::merged`] combines per-shard snapshots of *disjoint*
//! recording streams (each metric update happened on exactly one part)
//! into the snapshot a single shared registry would have produced:
//! counters and histogram buckets sum, min/max take the extrema over
//! non-empty parts, and derived percentiles are recomputed with the same
//! rank-walk the live [`crate::Histogram`] uses, so a merged snapshot is
//! byte-identical to its sequential counterpart.

use crate::events::EventRecord;
use crate::snapshot::{
    json_string, write_event, CounterSample, GaugeSample, HistogramSample, Snapshot,
};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Changes to one histogram series since a baseline snapshot.
#[derive(Clone, PartialEq, Debug, Serialize)]
pub struct HistogramDelta {
    /// Family name.
    pub name: String,
    /// Series label (empty for the unlabeled series).
    pub label: String,
    /// Samples recorded since the baseline.
    pub count: u64,
    /// Sum increase since the baseline (wrapping, like the live sum).
    pub sum: u64,
    /// Absolute minimum at delta time (min only ever decreases, so the
    /// receiver takes `min(baseline.min, delta.min)`).
    pub min: u64,
    /// Absolute maximum at delta time (receiver takes the max).
    pub max: u64,
    /// Bucket count increases as `(inclusive upper bound, added)`,
    /// ascending, only buckets that grew.
    pub buckets: Vec<(u64, u64)>,
}

/// The difference between two snapshots of one registry: `current -
/// baseline`. Produced by [`Snapshot::delta_from`] /
/// [`crate::Registry::delta_since`], applied by
/// [`SnapshotDelta::apply_to`].
#[derive(Clone, PartialEq, Debug, Serialize)]
pub struct SnapshotDelta {
    /// Counter increases, sorted by `(name, label)`. A series absent from
    /// the baseline appears with its full value (0-valued registrations
    /// included: appearing *is* the change).
    pub counters: Vec<CounterSample>,
    /// Changed gauges restated as absolute values (gauges move both ways,
    /// so increments would be ambiguous), sorted by `(name, label)`.
    pub gauges: Vec<GaugeSample>,
    /// Changed histogram series, sorted by `(name, label)`.
    pub histograms: Vec<HistogramDelta>,
    /// Increase of the event-log eviction count.
    pub events_overflowed: u64,
    /// Events appended since the baseline that are still buffered,
    /// oldest first.
    pub events: Vec<EventRecord>,
    /// Event-log buffer length at delta time (what reconstruction must
    /// truncate the concatenated log down to).
    pub events_len: u64,
}

impl SnapshotDelta {
    /// Whether nothing changed between the baseline and the snapshot this
    /// delta was computed from. Empty deltas can be skipped by exporters
    /// without affecting reconstruction.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
            && self.events_overflowed == 0
    }

    /// Applies this delta to the snapshot it was computed against,
    /// reproducing the later full snapshot exactly (including recomputed
    /// histogram percentiles).
    pub fn apply_to(&self, baseline: &Snapshot) -> Snapshot {
        let mut counters: BTreeMap<(String, String), u64> = baseline
            .counters
            .iter()
            .map(|c| ((c.name.clone(), c.label.clone()), c.value))
            .collect();
        for c in &self.counters {
            let slot = counters
                .entry((c.name.clone(), c.label.clone()))
                .or_insert(0);
            *slot = slot.wrapping_add(c.value);
        }
        let mut gauges: BTreeMap<(String, String), i64> = baseline
            .gauges
            .iter()
            .map(|g| ((g.name.clone(), g.label.clone()), g.value))
            .collect();
        for g in &self.gauges {
            gauges.insert((g.name.clone(), g.label.clone()), g.value);
        }
        let mut hists: BTreeMap<(String, String), HistParts> = baseline
            .histograms
            .iter()
            .map(|h| ((h.name.clone(), h.label.clone()), HistParts::from_sample(h)))
            .collect();
        for d in &self.histograms {
            let slot = hists
                .entry((d.name.clone(), d.label.clone()))
                .or_insert_with(HistParts::empty);
            slot.add_delta(d);
        }
        let mut events = baseline.events.clone();
        events.extend(self.events.iter().cloned());
        let keep = self.events_len as usize;
        if events.len() > keep {
            events.drain(..events.len() - keep);
        }
        Snapshot {
            counters: counters
                .into_iter()
                .map(|((name, label), value)| CounterSample { name, label, value })
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|((name, label), value)| GaugeSample { name, label, value })
                .collect(),
            histograms: hists
                .into_iter()
                .map(|((name, label), parts)| parts.into_sample(name, label))
                .collect(),
            events_overflowed: baseline.events_overflowed + self.events_overflowed,
            events,
        }
    }

    /// Serializes the delta to a JSON object string (same hand-rolled,
    /// deterministic encoding as [`Snapshot::to_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            json_string(&mut out, &c.name);
            out.push_str(", \"label\": ");
            json_string(&mut out, &c.label);
            let _ = write!(out, ", \"value\": {}}}", c.value);
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            json_string(&mut out, &g.name);
            out.push_str(", \"label\": ");
            json_string(&mut out, &g.label);
            let _ = write!(out, ", \"value\": {}}}", g.value);
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            json_string(&mut out, &h.name);
            out.push_str(", \"label\": ");
            json_string(&mut out, &h.label);
            let _ = write!(
                out,
                ", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                h.count, h.sum, h.min, h.max
            );
            for (j, (bound, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{bound}, {n}]");
            }
            out.push_str("]}");
        }
        let _ = write!(
            out,
            "\n  ],\n  \"events_overflowed\": {},\n  \"events_len\": {},\n  \"events\": [",
            self.events_overflowed, self.events_len
        );
        for (i, record) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_event(&mut out, record);
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Accumulator for one histogram series while applying or merging.
struct HistParts {
    count: u64,
    sum: u64,
    /// `None` until a non-empty contribution arrives (an empty histogram
    /// reports `min = 0`, which must not poison the true minimum).
    min: Option<u64>,
    max: u64,
    buckets: BTreeMap<u64, u64>,
}

impl HistParts {
    fn empty() -> Self {
        HistParts {
            count: 0,
            sum: 0,
            min: None,
            max: 0,
            buckets: BTreeMap::new(),
        }
    }

    fn from_sample(h: &HistogramSample) -> Self {
        HistParts {
            count: h.count,
            sum: h.sum,
            min: (h.count > 0).then_some(h.min),
            max: h.max,
            buckets: h.buckets.iter().copied().collect(),
        }
    }

    fn add_sample(&mut self, h: &HistogramSample) {
        self.count += h.count;
        self.sum = self.sum.wrapping_add(h.sum);
        if h.count > 0 {
            self.min = Some(self.min.map_or(h.min, |m| m.min(h.min)));
            self.max = self.max.max(h.max);
        }
        for &(bound, n) in &h.buckets {
            *self.buckets.entry(bound).or_insert(0) += n;
        }
    }

    fn add_delta(&mut self, d: &HistogramDelta) {
        self.count += d.count;
        self.sum = self.sum.wrapping_add(d.sum);
        // Delta min/max are absolutes at delta time; a changed histogram
        // always has samples, so both are meaningful.
        self.min = Some(self.min.map_or(d.min, |m| m.min(d.min)));
        self.max = self.max.max(d.max);
        for &(bound, n) in &d.buckets {
            *self.buckets.entry(bound).or_insert(0) += n;
        }
    }

    /// Builds the [`HistogramSample`], recomputing the percentile fields
    /// with the same rank-walk (and observed-max clamp) as
    /// [`crate::Histogram::quantile`], so a reconstructed or merged sample
    /// is byte-identical to one taken live.
    fn into_sample(self, name: String, label: String) -> HistogramSample {
        let buckets: Vec<(u64, u64)> = self.buckets.into_iter().collect();
        let total: u64 = buckets.iter().map(|&(_, n)| n).sum();
        let max = self.max;
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = ((q * total as f64).ceil() as u64).max(1);
            let mut seen = 0u64;
            for &(bound, n) in &buckets {
                seen += n;
                if seen >= rank {
                    return bound.min(max);
                }
            }
            max
        };
        HistogramSample {
            name,
            label,
            count: self.count,
            sum: self.sum,
            min: self.min.unwrap_or(0),
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
            buckets,
        }
    }
}

impl Snapshot {
    /// The changes in `self` relative to `baseline`.
    ///
    /// `baseline` must be an earlier snapshot of the same registry (series
    /// never disappear and counters only grow); with mismatched inputs the
    /// arithmetic wraps rather than panicking, and reconstruction is still
    /// exact because [`SnapshotDelta::apply_to`] wraps the same way.
    pub fn delta_from(&self, baseline: &Snapshot) -> SnapshotDelta {
        let base_counters: BTreeMap<(&str, &str), u64> = baseline
            .counters
            .iter()
            .map(|c| ((c.name.as_str(), c.label.as_str()), c.value))
            .collect();
        let mut counters = Vec::new();
        for c in &self.counters {
            match base_counters.get(&(c.name.as_str(), c.label.as_str())) {
                Some(&b) if b == c.value => {}
                Some(&b) => counters.push(CounterSample {
                    name: c.name.clone(),
                    label: c.label.clone(),
                    value: c.value.wrapping_sub(b),
                }),
                None => counters.push(c.clone()),
            }
        }
        let base_gauges: BTreeMap<(&str, &str), i64> = baseline
            .gauges
            .iter()
            .map(|g| ((g.name.as_str(), g.label.as_str()), g.value))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .filter(|g| base_gauges.get(&(g.name.as_str(), g.label.as_str())) != Some(&g.value))
            .cloned()
            .collect();
        let base_hists: BTreeMap<(&str, &str), &HistogramSample> = baseline
            .histograms
            .iter()
            .map(|h| ((h.name.as_str(), h.label.as_str()), h))
            .collect();
        let mut histograms = Vec::new();
        for h in &self.histograms {
            match base_hists.get(&(h.name.as_str(), h.label.as_str())) {
                Some(b) if *b == h => {}
                Some(b) => {
                    let base_buckets: BTreeMap<u64, u64> = b.buckets.iter().copied().collect();
                    let buckets = h
                        .buckets
                        .iter()
                        .filter_map(|&(bound, n)| {
                            let grew = n - base_buckets.get(&bound).copied().unwrap_or(0);
                            (grew > 0).then_some((bound, grew))
                        })
                        .collect();
                    histograms.push(HistogramDelta {
                        name: h.name.clone(),
                        label: h.label.clone(),
                        count: h.count.wrapping_sub(b.count),
                        sum: h.sum.wrapping_sub(b.sum),
                        min: h.min,
                        max: h.max,
                        buckets,
                    });
                }
                None => histograms.push(HistogramDelta {
                    name: h.name.clone(),
                    label: h.label.clone(),
                    count: h.count,
                    sum: h.sum,
                    min: h.min,
                    max: h.max,
                    buckets: h.buckets.clone(),
                }),
            }
        }
        // Events appended since the baseline: everything recorded past the
        // baseline's total (evicted + buffered), capped at what is still
        // in the buffer.
        let base_total = baseline.events_overflowed + baseline.events.len() as u64;
        let cur_total = self.events_overflowed + self.events.len() as u64;
        let appended = (cur_total.saturating_sub(base_total)) as usize;
        let keep = appended.min(self.events.len());
        SnapshotDelta {
            counters,
            gauges,
            histograms,
            events_overflowed: self.events_overflowed - baseline.events_overflowed,
            events: self.events[self.events.len() - keep..].to_vec(),
            events_len: self.events.len() as u64,
        }
    }

    /// Merges snapshots of disjoint recording streams (e.g. one private
    /// registry per simulator shard) into the snapshot one shared registry
    /// would have produced.
    ///
    /// Counters, histogram counts/sums and buckets add; min/max take the
    /// extrema over parts with samples; percentiles are recomputed from
    /// the merged buckets. Gauges are instantaneous single-writer values —
    /// if the same series appears in several parts with different values,
    /// the later part (higher index) wins deterministically. Event logs
    /// concatenate in part order and re-sort by timestamp (stable), and
    /// eviction counts add.
    pub fn merged(parts: &[Snapshot]) -> Snapshot {
        let mut counters: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut gauges: BTreeMap<(String, String), i64> = BTreeMap::new();
        let mut hists: BTreeMap<(String, String), HistParts> = BTreeMap::new();
        let mut events: Vec<EventRecord> = Vec::new();
        let mut events_overflowed = 0u64;
        for part in parts {
            for c in &part.counters {
                let slot = counters
                    .entry((c.name.clone(), c.label.clone()))
                    .or_insert(0);
                *slot = slot.wrapping_add(c.value);
            }
            for g in &part.gauges {
                gauges.insert((g.name.clone(), g.label.clone()), g.value);
            }
            for h in &part.histograms {
                hists
                    .entry((h.name.clone(), h.label.clone()))
                    .or_insert_with(HistParts::empty)
                    .add_sample(h);
            }
            events.extend(part.events.iter().cloned());
            events_overflowed += part.events_overflowed;
        }
        events.sort_by_key(|r| r.t_ns);
        Snapshot {
            counters: counters
                .into_iter()
                .map(|((name, label), value)| CounterSample { name, label, value })
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|((name, label), value)| GaugeSample { name, label, value })
                .collect(),
            histograms: hists
                .into_iter()
                .map(|((name, label), parts)| parts.into_sample(name, label))
                .collect(),
            events_overflowed,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{Event, RejectKind};
    use crate::registry::Registry;
    use proptest::prelude::*;

    #[test]
    fn empty_baseline_yields_the_full_snapshot_as_delta() {
        let r = Registry::new();
        let baseline = r.snapshot();
        r.counter_with("x", "a").add(3);
        r.histogram("h").record(100);
        let delta = r.delta_since(&baseline);
        assert_eq!(delta.counters.len(), 1);
        assert_eq!(delta.counters[0].value, 3);
        assert_eq!(delta.histograms.len(), 1);
        assert_eq!(delta.histograms[0].count, 1);
        assert_eq!(delta.apply_to(&baseline), r.snapshot());
    }

    #[test]
    fn identical_snapshots_give_an_empty_delta() {
        let r = Registry::with_event_capacity(4);
        r.counter("c").add(7);
        r.gauge("g").set(-2);
        r.histogram("h").record(9);
        r.record(1, Event::AlertSuppressed { source: 3 });
        let snap = r.snapshot();
        let delta = snap.delta_from(&snap);
        assert!(delta.is_empty());
        assert_eq!(delta.apply_to(&snap), snap);
    }

    #[test]
    fn new_zero_valued_series_still_appears_in_the_delta() {
        // Registering a series is itself observable state: reconstruction
        // must produce it even though its value is 0.
        let r = Registry::new();
        let baseline = r.snapshot();
        let _handle = r.counter("registered_but_untouched");
        let delta = r.delta_since(&baseline);
        assert!(!delta.is_empty());
        assert_eq!(delta.apply_to(&baseline), r.snapshot());
    }

    #[test]
    fn histogram_delta_straddling_a_reobserved_max() {
        // Baseline max 8 sits mid-bucket (bucket bound 15). New samples
        // re-observe the bucket boundary value 15 (same bucket, new max)
        // and then cross into the next bucket with 16. The reconstructed
        // percentiles must match a live snapshot exactly, including the
        // observed-max clamp.
        let r = Registry::new();
        let h = r.histogram("lat");
        h.record(8);
        let baseline = r.snapshot();
        assert_eq!(baseline.histogram("lat", "").unwrap().max, 8);
        assert_eq!(baseline.histogram("lat", "").unwrap().p99, 8); // clamped
        h.record(15);
        let mid = r.snapshot();
        let d1 = mid.delta_from(&baseline);
        assert_eq!(d1.histograms[0].buckets, vec![(15, 1)]);
        assert_eq!(d1.histograms[0].max, 15);
        assert_eq!(d1.apply_to(&baseline), mid);
        h.record(16);
        let fin = r.snapshot();
        let d2 = fin.delta_from(&mid);
        assert_eq!(d2.histograms[0].buckets, vec![(31, 1)]);
        assert_eq!(d2.apply_to(&mid), fin);
        // Chain from the empty baseline too.
        assert_eq!(d2.apply_to(&d1.apply_to(&baseline)), fin);
    }

    #[test]
    fn event_log_delta_survives_ring_eviction() {
        let r = Registry::with_event_capacity(3);
        for t in 0..2 {
            r.record(t, Event::AlertSuppressed { source: t as u16 });
        }
        let baseline = r.snapshot();
        for t in 2..7 {
            r.record(t, Event::AlertSuppressed { source: t as u16 });
        }
        let cur = r.snapshot();
        let delta = cur.delta_from(&baseline);
        // 5 appended, only the last 3 still buffered.
        assert_eq!(delta.events.len(), 3);
        assert_eq!(delta.events_overflowed, 4);
        assert_eq!(delta.apply_to(&baseline), cur);
    }

    #[test]
    fn event_ring_wrap_past_capacity_between_baseline_and_delta() {
        // The baseline is itself taken after the ring already wrapped,
        // and more than a full capacity's worth of events lands before
        // the delta: the delta carries only the surviving tail, the
        // overflow accounting bridges the gap, and reconstruction is
        // exact.
        let r = Registry::with_event_capacity(4);
        for t in 0..6 {
            r.record(t, Event::AlertSuppressed { source: t as u16 });
        }
        let baseline = r.snapshot();
        assert_eq!(baseline.events_overflowed, 2, "baseline already wrapped");
        for t in 6..20 {
            r.record(t, Event::AlertSuppressed { source: t as u16 });
        }
        let cur = r.snapshot();
        let delta = cur.delta_from(&baseline);
        // 14 appended, capacity 4: only the last 4 survive in the buffer.
        assert_eq!(delta.events.len(), 4);
        assert_eq!(delta.events[0].t_ns, 16);
        assert_eq!(delta.events_overflowed, 14);
        assert_eq!(delta.events_len, 4);
        let rebuilt = delta.apply_to(&baseline);
        assert_eq!(rebuilt, cur);
        assert_eq!(rebuilt.to_json(), cur.to_json());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Same reconstruction contract as the main proptest, but with a
        /// tiny ring (capacity 2) and event-heavy op streams so the ring
        /// is forced to wrap — usually several times — between every
        /// checkpoint pair.
        #[test]
        fn delta_survives_forced_ring_wraps(
            times in proptest::collection::vec(0u64..1_000_000, 5..80),
            cut in 1usize..4,
        ) {
            let r = Registry::with_event_capacity(2);
            let baseline = r.snapshot();
            let mut checkpoints: Vec<Snapshot> = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                r.record(i as u64, Event::AlertSuppressed { source: (t % 5) as u16 });
                if i % cut == 0 {
                    checkpoints.push(r.snapshot());
                }
            }
            let fin = r.snapshot();
            prop_assert!(
                fin.events_overflowed as usize >= times.len().saturating_sub(2),
                "the ring must actually wrap for this test to mean anything"
            );
            let mut state = baseline.clone();
            let mut prev = baseline;
            for cp in checkpoints {
                let delta = cp.delta_from(&prev);
                state = delta.apply_to(&state);
                prop_assert_eq!(&state, &cp);
                prev = cp;
            }
            let last = fin.delta_from(&prev);
            state = last.apply_to(&state);
            prop_assert_eq!(&state, &fin);
        }
    }

    #[test]
    fn merged_matches_a_shared_registry() {
        // Two disjoint streams vs. one registry receiving both.
        let shared = Registry::new();
        let a = Registry::new();
        let b = Registry::new();
        for (r, scale) in [(&a, 1u64), (&b, 100u64)] {
            for v in [3, 9, 1500] {
                r.histogram("lat").record(v * scale);
                shared.histogram("lat").record(v * scale);
            }
            r.counter_with("hits", "s1").add(scale);
            shared.counter_with("hits", "s1").add(scale);
        }
        a.gauge("depth").set(5);
        shared.gauge("depth").set(5);
        let merged = Snapshot::merged(&[a.snapshot(), b.snapshot()]);
        assert_eq!(merged, shared.snapshot());
        assert_eq!(merged.to_json(), shared.snapshot().to_json());
    }

    #[test]
    fn merged_with_empty_parts_keeps_true_minimum() {
        let a = Registry::new();
        let b = Registry::new();
        let _empty = a.histogram("lat"); // registered, no samples (min = 0 in sample)
        b.histogram("lat").record(42);
        let merged = Snapshot::merged(&[a.snapshot(), b.snapshot()]);
        let h = merged.histogram("lat", "").unwrap();
        assert_eq!(h.min, 42, "empty part must not poison the minimum");
        assert_eq!(h.count, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn baseline_plus_deltas_reconstructs_the_full_snapshot(
            ops in proptest::collection::vec((0u8..6, 0u64..1_000_000), 1..120),
            cuts in proptest::collection::vec(0usize..120, 0..4),
        ) {
            let r = Registry::with_event_capacity(8);
            let baseline = r.snapshot();
            let mut cuts = cuts;
            cuts.sort_unstable();
            let mut checkpoints: Vec<Snapshot> = Vec::new();
            for (i, &(sel, v)) in ops.iter().enumerate() {
                match sel {
                    0 => r.counter_with("c", "a").add(v),
                    1 => r.counter_with("c", "b").inc(),
                    2 => r.gauge("g").set(v as i64 - 500_000),
                    3 => r.histogram_with("h", "x").record(v),
                    4 => r.histogram_with("h", "y").record(v % 17),
                    _ => r.record(v, Event::DigestRejected {
                        peer: (v % 7) as u16,
                        channel: (v % 3) as u8,
                        reason: RejectKind::BadDigest,
                    }),
                }
                if cuts.contains(&i) {
                    checkpoints.push(r.snapshot());
                }
            }
            let fin = r.snapshot();
            // Reconstruct through every checkpoint chain: baseline +
            // Σ deltas == final full snapshot, exactly.
            let mut state = baseline.clone();
            let mut prev = baseline;
            for cp in checkpoints {
                let delta = cp.delta_from(&prev);
                state = delta.apply_to(&state);
                prop_assert_eq!(&state, &cp);
                prev = cp;
            }
            let last = fin.delta_from(&prev);
            state = last.apply_to(&state);
            prop_assert_eq!(&state, &fin);
            prop_assert_eq!(state.to_json(), fin.to_json());
        }
    }
}
