//! Deterministic causal tracing: spans with simulation-clock timestamps
//! and IDs derived from `(kind, sim-time, source, per-source seq)` —
//! never a wall clock, never an allocation address — so two runs of the
//! same workload produce byte-identical traces on any engine.
//!
//! ## Model
//!
//! A *span* is a `[start_ns, end_ns]` interval attributed to a `source`
//! (a node id, a controller replica, or a harness pseudo-source) with a
//! [`SpanKind`]. Spans form trees: a root span has `parent_id == 0` and
//! `trace_id == span_id`; children inherit the root's `trace_id`. An
//! *instant* is a zero-width span.
//!
//! ## Determinism discipline
//!
//! * **IDs** are a splitmix-style hash of `(kind, start_ns, source,
//!   seq)`. `seq` is a per-source counter, so a source that emits two
//!   spans at the same instant still gets distinct ids, and a sharded
//!   run — where each source is owned by exactly one shard — assigns
//!   the very same ids the sequential run does.
//! * **Canonical order** for export is `(start_ns, source, seq)`.
//!   `(source, seq)` is unique per record, so the order is total, and
//!   it is engine-invariant because per-source emission order is the
//!   per-source simulation order on every engine.
//! * **Bounded buffers**: the ring drops oldest on overflow and counts
//!   drops. Byte-identity across engines is guaranteed only at zero
//!   drops (per-shard rings fill in shard-local order), which is why
//!   the campaign configs assert `trace_spans_dropped == 0`.
//!
//! Export formats: Chrome trace-format JSON ([`chrome_trace_json`],
//! loadable in Perfetto) and the compact `P4TR` binary
//! ([`encode_trace`] / [`decode_trace`]), a sibling of the `P4TS`
//! snapshot codec with the same exact-roundtrip contract.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// What a span measures. Discriminants are stable wire values (`P4TR`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum SpanKind {
    /// A campaign / scenario phase (harness root span).
    CampaignPhase = 0,
    /// A frame delivered to a node.
    FrameDeliver = 1,
    /// A tap acted on a frame (dropped or modified it).
    FrameTap = 2,
    /// A packet consumed pipeline recirculations.
    FrameRecirculate = 3,
    /// A digest verified successfully.
    DigestVerify = 4,
    /// A digest (or replay/quarantine) rejection.
    DigestReject = 5,
    /// A state-table write batch landed.
    StateDbWrite = 6,
    /// An orchestration daemon tick that did work.
    DaemonWake = 7,
    /// A KMP/ADHKD offer left the controller.
    KmpOffer = 8,
    /// A KMP/ADHKD answer arrived at the controller.
    KmpAnswer = 9,
    /// A key was installed / rolled.
    KeyInstall = 10,
    /// A quarantine was lifted by a fresh key.
    QuarantineLift = 11,
    /// One defence mitigation, detection to installed key (root).
    Mitigation = 12,
    /// Mitigation stage: crossing detected → action issued.
    MitigationDetect = 13,
    /// Mitigation stage: decision published / consumed by orchestration.
    MitigationPublish = 14,
    /// Mitigation stage: key-exchange round trips on the wire.
    MitigationKmp = 15,
    /// Mitigation stage: answer arrival → key active.
    MitigationInstall = 16,
    /// One bulk-rollover epoch across a partition (root).
    RolloverEpoch = 17,
    /// A port-key exchange leg.
    PortKeyExchange = 18,
}

impl SpanKind {
    /// Stable snake_case name used in Chrome-trace JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::CampaignPhase => "campaign_phase",
            SpanKind::FrameDeliver => "frame_deliver",
            SpanKind::FrameTap => "frame_tap",
            SpanKind::FrameRecirculate => "frame_recirculate",
            SpanKind::DigestVerify => "digest_verify",
            SpanKind::DigestReject => "digest_reject",
            SpanKind::StateDbWrite => "statedb_write",
            SpanKind::DaemonWake => "daemon_wake",
            SpanKind::KmpOffer => "kmp_offer",
            SpanKind::KmpAnswer => "kmp_answer",
            SpanKind::KeyInstall => "key_install",
            SpanKind::QuarantineLift => "quarantine_lift",
            SpanKind::Mitigation => "mitigation",
            SpanKind::MitigationDetect => "mitigation_detect",
            SpanKind::MitigationPublish => "mitigation_publish",
            SpanKind::MitigationKmp => "mitigation_kmp",
            SpanKind::MitigationInstall => "mitigation_install",
            SpanKind::RolloverEpoch => "rollover_epoch",
            SpanKind::PortKeyExchange => "port_key_exchange",
        }
    }

    /// Decodes a `P4TR` kind byte.
    pub fn from_u8(v: u8) -> Option<SpanKind> {
        Some(match v {
            0 => SpanKind::CampaignPhase,
            1 => SpanKind::FrameDeliver,
            2 => SpanKind::FrameTap,
            3 => SpanKind::FrameRecirculate,
            4 => SpanKind::DigestVerify,
            5 => SpanKind::DigestReject,
            6 => SpanKind::StateDbWrite,
            7 => SpanKind::DaemonWake,
            8 => SpanKind::KmpOffer,
            9 => SpanKind::KmpAnswer,
            10 => SpanKind::KeyInstall,
            11 => SpanKind::QuarantineLift,
            12 => SpanKind::Mitigation,
            13 => SpanKind::MitigationDetect,
            14 => SpanKind::MitigationPublish,
            15 => SpanKind::MitigationKmp,
            16 => SpanKind::MitigationInstall,
            17 => SpanKind::RolloverEpoch,
            18 => SpanKind::PortKeyExchange,
            _ => return None,
        })
    }
}

/// One finished span. Fixed-width fields only, so the `P4TR` record
/// layout is trivial and the canonical sort never allocates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanRecord {
    /// The trace this span belongs to (root's `span_id`).
    pub trace_id: u64,
    /// This span's id (never 0).
    pub span_id: u64,
    /// Parent span id; 0 marks a root.
    pub parent_id: u64,
    /// What the span measures.
    pub kind: SpanKind,
    /// Emitting source (node id / replica / harness pseudo-source).
    pub source: u16,
    /// Span start, simulation clock (ns).
    pub start_ns: u64,
    /// Span end, simulation clock (ns); `== start_ns` for instants.
    pub end_ns: u64,
    /// Per-source emission sequence (assigned at span start).
    pub seq: u64,
    /// Kind-specific argument (e.g. peer id, epoch, reject reason).
    pub arg_a: u64,
    /// Second kind-specific argument (e.g. channel, latency).
    pub arg_b: u64,
}

impl SpanRecord {
    /// The canonical export key: engine-invariant total order.
    pub fn sort_key(&self) -> (u64, u16, u64) {
        (self.start_ns, self.source, self.seq)
    }
}

/// A started-but-not-finished span: a `Copy` handle carrying everything
/// [`TraceLog::end`] needs to build the record. Nothing is buffered
/// until the span ends, so an abandoned handle costs nothing.
#[derive(Clone, Copy, Debug)]
pub struct OpenSpan {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    kind: SpanKind,
    source: u16,
    start_ns: u64,
    seq: u64,
}

impl OpenSpan {
    /// The trace id children should inherit.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// This span's id (for use as a child's `parent_id`).
    pub fn span_id(&self) -> u64 {
        self.span_id
    }

    /// The span's start time (ns, simulation clock).
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }
}

/// SplitMix64 finalizer over the deterministic id ingredients.
fn mix_id(kind: SpanKind, start_ns: u64, source: u16, seq: u64) -> u64 {
    let mut z = start_ns
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((kind as u64) << 48)
        .wrapping_add((source as u64) << 24)
        .wrapping_add(seq);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // 0 is the "no parent" sentinel; keep real ids out of it.
    z | 1
}

#[derive(Debug, Default)]
struct TraceLogInner {
    buf: std::collections::VecDeque<SpanRecord>,
    dropped: u64,
    /// Next per-source sequence number.
    next_seq: BTreeMap<u16, u64>,
}

/// A bounded drop-oldest ring of finished spans with per-source
/// sequence counters. Capacity 0 (the default) disables recording —
/// every call is a branch-and-return, mirroring [`crate::EventLog`].
#[derive(Debug, Default)]
pub struct TraceLog {
    capacity: usize,
    inner: Mutex<TraceLogInner>,
}

impl TraceLog {
    /// A log that records nothing (capacity 0).
    pub fn disabled() -> Self {
        TraceLog::default()
    }

    /// A log keeping the most recent `capacity` spans.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceLog {
            capacity,
            inner: Mutex::default(),
        }
    }

    /// Whether recording is enabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configured capacity (0 when disabled).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceLogInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn next_seq(inner: &mut TraceLogInner, source: u16) -> u64 {
        let slot = inner.next_seq.entry(source).or_insert(0);
        let seq = *slot;
        *slot += 1;
        seq
    }

    /// Opens a root span. Returns `None` when disabled.
    pub fn start(&self, kind: SpanKind, start_ns: u64, source: u16) -> Option<OpenSpan> {
        if self.capacity == 0 {
            return None;
        }
        let seq = Self::next_seq(&mut self.lock(), source);
        let id = mix_id(kind, start_ns, source, seq);
        Some(OpenSpan {
            trace_id: id,
            span_id: id,
            parent_id: 0,
            kind,
            source,
            start_ns,
            seq,
        })
    }

    /// Opens a child span under `parent`. Returns `None` when disabled.
    pub fn child(
        &self,
        parent: &OpenSpan,
        kind: SpanKind,
        start_ns: u64,
        source: u16,
    ) -> Option<OpenSpan> {
        if self.capacity == 0 {
            return None;
        }
        let seq = Self::next_seq(&mut self.lock(), source);
        Some(OpenSpan {
            trace_id: parent.trace_id,
            span_id: mix_id(kind, start_ns, source, seq),
            parent_id: parent.span_id,
            kind,
            source,
            start_ns,
            seq,
        })
    }

    /// Finishes `span` at `end_ns`, buffering the record. Clamps a
    /// backwards end to the start (spans never have negative width).
    pub fn end(&self, span: OpenSpan, end_ns: u64, arg_a: u64, arg_b: u64) {
        if self.capacity == 0 {
            return;
        }
        self.push(SpanRecord {
            trace_id: span.trace_id,
            span_id: span.span_id,
            parent_id: span.parent_id,
            kind: span.kind,
            source: span.source,
            start_ns: span.start_ns,
            end_ns: end_ns.max(span.start_ns),
            seq: span.seq,
            arg_a,
            arg_b,
        });
    }

    /// Records a zero-width root span.
    pub fn instant(&self, kind: SpanKind, t_ns: u64, source: u16, arg_a: u64, arg_b: u64) {
        if let Some(span) = self.start(kind, t_ns, source) {
            self.end(span, t_ns, arg_a, arg_b);
        }
    }

    /// Records a zero-width child span under `parent`.
    pub fn instant_in(
        &self,
        parent: &OpenSpan,
        kind: SpanKind,
        t_ns: u64,
        source: u16,
        arg_a: u64,
        arg_b: u64,
    ) {
        if let Some(span) = self.child(parent, kind, t_ns, source) {
            self.end(span, t_ns, arg_a, arg_b);
        }
    }

    fn push(&self, record: SpanRecord) {
        let mut inner = self.lock();
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(record);
    }

    /// Spans dropped to the ring bound so far.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    /// Whether the log holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the buffered spans in emission order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.lock().buf.iter().copied().collect()
    }

    /// The buffered spans in canonical `(start_ns, source, seq)` order —
    /// the engine-invariant export order.
    pub fn sorted_records(&self) -> Vec<SpanRecord> {
        let mut records = self.records();
        records.sort_unstable_by_key(SpanRecord::sort_key);
        records
    }

    /// Replays another log's captured spans into this one (ring
    /// semantics apply), adds its drop count, and advances the
    /// per-source sequence counters past everything absorbed — the same
    /// merge discipline as [`crate::EventLog::absorb`], called in
    /// shard-index order by the shard coordinator. No-op when disabled.
    pub fn absorb(&self, records: &[SpanRecord], dropped: u64) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.dropped += dropped;
        for r in records {
            let slot = inner.next_seq.entry(r.source).or_insert(0);
            *slot = (*slot).max(r.seq + 1);
            if inner.buf.len() == self.capacity {
                inner.buf.pop_front();
                inner.dropped += 1;
            }
            inner.buf.push_back(*r);
        }
    }
}

/// Formats nanoseconds as Chrome-trace microseconds (`ts` field) with
/// integer math only: `ns/1000` whole µs plus exactly three fractional
/// digits. No floats anywhere near the byte-diffed output.
fn write_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Renders spans (already in canonical order) as Chrome trace-format
/// JSON: one complete (`"ph":"X"`) event per span, `pid` 0, `tid` =
/// source, ids in hex. Loadable by Perfetto / `chrome://tracing`.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 160);
    out.push_str("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"name\": \"");
        out.push_str(r.kind.as_str());
        let _ = write!(
            out,
            "\", \"ph\": \"X\", \"pid\": 0, \"tid\": {}, ",
            r.source
        );
        out.push_str("\"ts\": ");
        write_us(&mut out, r.start_ns);
        out.push_str(", \"dur\": ");
        write_us(&mut out, r.end_ns - r.start_ns);
        let _ = write!(
            out,
            ", \"args\": {{\"trace\": \"{:016x}\", \"span\": \"{:016x}\", \
             \"parent\": \"{:016x}\", \"seq\": {}, \"a\": {}, \"b\": {}}}}}",
            r.trace_id, r.span_id, r.parent_id, r.seq, r.arg_a, r.arg_b
        );
    }
    out.push_str("\n]}\n");
    out
}

/// `P4TR` magic bytes.
pub const TRACE_MAGIC: [u8; 4] = *b"P4TR";
/// `P4TR` format version.
pub const TRACE_VERSION: u16 = 1;

/// Why a `P4TR` payload failed to decode.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceDecodeError {
    /// The payload ended before a fixed-width field.
    Truncated,
    /// The magic bytes were not `P4TR`.
    BadMagic,
    /// A version this decoder does not understand.
    UnsupportedVersion(u16),
    /// An unknown [`SpanKind`] discriminant.
    BadKind(u8),
    /// Bytes remained after the last record.
    TrailingBytes(usize),
}

impl std::fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDecodeError::Truncated => write!(f, "truncated P4TR payload"),
            TraceDecodeError::BadMagic => write!(f, "bad magic (expected P4TR)"),
            TraceDecodeError::UnsupportedVersion(v) => write!(f, "unsupported P4TR version {v}"),
            TraceDecodeError::BadKind(k) => write!(f, "unknown span kind {k}"),
            TraceDecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after trace"),
        }
    }
}

impl std::error::Error for TraceDecodeError {}

/// Encodes spans (callers pass them in canonical order) as a `P4TR`
/// payload: magic, version, drop count, record count, then fixed-width
/// little-endian records.
pub fn encode_trace(records: &[SpanRecord], dropped: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 2 + 8 + 4 + records.len() * 67);
    out.extend_from_slice(&TRACE_MAGIC);
    out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
    out.extend_from_slice(&dropped.to_le_bytes());
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for r in records {
        out.extend_from_slice(&r.trace_id.to_le_bytes());
        out.extend_from_slice(&r.span_id.to_le_bytes());
        out.extend_from_slice(&r.parent_id.to_le_bytes());
        out.push(r.kind as u8);
        out.extend_from_slice(&r.source.to_le_bytes());
        out.extend_from_slice(&r.start_ns.to_le_bytes());
        out.extend_from_slice(&r.end_ns.to_le_bytes());
        out.extend_from_slice(&r.seq.to_le_bytes());
        out.extend_from_slice(&r.arg_a.to_le_bytes());
        out.extend_from_slice(&r.arg_b.to_le_bytes());
    }
    out
}

struct TraceReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> TraceReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceDecodeError> {
        let end = self.pos.checked_add(n).ok_or(TraceDecodeError::Truncated)?;
        if end > self.bytes.len() {
            return Err(TraceDecodeError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, TraceDecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, TraceDecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, TraceDecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, TraceDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Decodes a `P4TR` payload back into `(records, dropped)`. Exact
/// inverse of [`encode_trace`]: re-encoding the result reproduces the
/// input byte for byte, and trailing bytes are an error.
pub fn decode_trace(bytes: &[u8]) -> Result<(Vec<SpanRecord>, u64), TraceDecodeError> {
    let mut r = TraceReader { bytes, pos: 0 };
    if r.take(4)? != TRACE_MAGIC {
        return Err(TraceDecodeError::BadMagic);
    }
    let version = r.u16()?;
    if version != TRACE_VERSION {
        return Err(TraceDecodeError::UnsupportedVersion(version));
    }
    let dropped = r.u64()?;
    let count = r.u32()? as usize;
    let mut records = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let trace_id = r.u64()?;
        let span_id = r.u64()?;
        let parent_id = r.u64()?;
        let kind_raw = r.u8()?;
        let kind = SpanKind::from_u8(kind_raw).ok_or(TraceDecodeError::BadKind(kind_raw))?;
        let source = r.u16()?;
        let start_ns = r.u64()?;
        let end_ns = r.u64()?;
        let seq = r.u64()?;
        let arg_a = r.u64()?;
        let arg_b = r.u64()?;
        records.push(SpanRecord {
            trace_id,
            span_id,
            parent_id,
            kind,
            source,
            start_ns,
            end_ns,
            seq,
            arg_a,
            arg_b,
        });
    }
    if r.pos != bytes.len() {
        return Err(TraceDecodeError::TrailingBytes(bytes.len() - r.pos));
    }
    Ok((records, dropped))
}

/// Structural trace validation, shared by the well-formedness proptest
/// and the repro gate: every span's interval nests inside its parent's,
/// every referenced parent exists in the same trace, and every trace
/// has exactly one root. Returns the first violation as text.
pub fn validate_well_formed(records: &[SpanRecord]) -> Result<(), String> {
    let by_id: BTreeMap<u64, &SpanRecord> = records.iter().map(|r| (r.span_id, r)).collect();
    if by_id.len() != records.len() {
        return Err("duplicate span ids".into());
    }
    let mut roots: BTreeMap<u64, u64> = BTreeMap::new();
    for r in records {
        if r.end_ns < r.start_ns {
            return Err(format!("span {:016x} ends before it starts", r.span_id));
        }
        if r.parent_id == 0 {
            if r.trace_id != r.span_id {
                return Err(format!("root {:016x} with foreign trace id", r.span_id));
            }
            *roots.entry(r.trace_id).or_insert(0) += 1;
            continue;
        }
        let Some(parent) = by_id.get(&r.parent_id) else {
            return Err(format!(
                "span {:016x} references missing parent {:016x}",
                r.span_id, r.parent_id
            ));
        };
        if parent.trace_id != r.trace_id {
            return Err(format!("span {:016x} crosses traces", r.span_id));
        }
        if r.start_ns < parent.start_ns || r.end_ns > parent.end_ns {
            return Err(format!(
                "span {:016x} [{}, {}] escapes parent [{}, {}]",
                r.span_id, r.start_ns, r.end_ns, parent.start_ns, parent.end_ns
            ));
        }
    }
    for r in records {
        let root_count = roots.get(&r.trace_id).copied().unwrap_or(0);
        if root_count != 1 {
            return Err(format!("trace {:016x} has {root_count} roots", r.trace_id));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<SpanRecord> {
        let log = TraceLog::with_capacity(16);
        let root = log.start(SpanKind::Mitigation, 100, 7).unwrap();
        log.instant_in(&root, SpanKind::MitigationDetect, 100, 7, 1, 0);
        let kmp = log.child(&root, SpanKind::MitigationKmp, 120, 7).unwrap();
        log.end(kmp, 900, 0, 0);
        log.end(root, 1_000, 3, 0);
        log.instant(SpanKind::FrameDeliver, 50, 2, 64, 0);
        log.sorted_records()
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = TraceLog::disabled();
        assert!(!log.enabled());
        assert!(log.start(SpanKind::CampaignPhase, 0, 0).is_none());
        log.instant(SpanKind::FrameDeliver, 1, 1, 0, 0);
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn ids_are_deterministic_and_nonzero() {
        let a = TraceLog::with_capacity(8);
        let b = TraceLog::with_capacity(8);
        for log in [&a, &b] {
            log.instant(SpanKind::DigestReject, 500, 3, 9, 1);
            log.instant(SpanKind::DigestReject, 500, 3, 9, 1);
        }
        let (ra, rb) = (a.records(), b.records());
        assert_eq!(ra, rb, "same inputs, same ids");
        assert_ne!(ra[0].span_id, ra[1].span_id, "seq splits same-instant ids");
        assert!(ra.iter().all(|r| r.span_id != 0));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let log = TraceLog::with_capacity(2);
        for t in 0..3 {
            log.instant(SpanKind::FrameDeliver, t, 1, 0, 0);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.records()[0].start_ns, 1);
    }

    #[test]
    fn absorb_merges_in_order_and_advances_seqs() {
        let shard0 = TraceLog::with_capacity(8);
        let shard1 = TraceLog::with_capacity(8);
        shard0.instant(SpanKind::FrameDeliver, 10, 1, 0, 0);
        shard1.instant(SpanKind::FrameDeliver, 20, 2, 0, 0);
        let merged = TraceLog::with_capacity(8);
        merged.absorb(&shard0.records(), shard0.dropped());
        merged.absorb(&shard1.records(), shard1.dropped());
        // A later span on an absorbed source continues its sequence.
        merged.instant(SpanKind::FrameDeliver, 30, 1, 0, 0);
        let records = merged.sorted_records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].seq, 1, "absorb advanced source 1 past seq 0");
        assert_eq!(merged.dropped(), 0);
    }

    #[test]
    fn sorted_order_is_independent_of_emission_order() {
        // Same spans, emitted in different interleavings (as two shards
        // would), sort to the same canonical stream.
        let a = TraceLog::with_capacity(8);
        a.instant(SpanKind::FrameDeliver, 10, 1, 0, 0);
        a.instant(SpanKind::FrameDeliver, 10, 2, 0, 0);
        let b = TraceLog::with_capacity(8);
        b.instant(SpanKind::FrameDeliver, 10, 2, 0, 0);
        b.instant(SpanKind::FrameDeliver, 10, 1, 0, 0);
        assert_eq!(a.sorted_records(), b.sorted_records());
    }

    #[test]
    fn trace_roundtrips_exactly() {
        let records = sample_records();
        let bytes = encode_trace(&records, 5);
        let (decoded, dropped) = decode_trace(&bytes).unwrap();
        assert_eq!(decoded, records);
        assert_eq!(dropped, 5);
        assert_eq!(encode_trace(&decoded, dropped), bytes, "re-encode exact");
        assert_eq!(
            chrome_trace_json(&decoded),
            chrome_trace_json(&records),
            "JSON renders identically from decoded records"
        );
    }

    #[test]
    fn decode_rejects_bad_headers() {
        assert_eq!(decode_trace(b"P4T"), Err(TraceDecodeError::Truncated));
        assert_eq!(
            decode_trace(b"P4TS\x01\x00"),
            Err(TraceDecodeError::BadMagic)
        );
        let mut bytes = encode_trace(&[], 0);
        bytes[0] = b'X';
        assert_eq!(decode_trace(&bytes), Err(TraceDecodeError::BadMagic));
        let mut bytes = encode_trace(&[], 0);
        bytes[4] = 9;
        assert_eq!(
            decode_trace(&bytes),
            Err(TraceDecodeError::UnsupportedVersion(9))
        );
    }

    #[test]
    fn decode_rejects_truncation_trailing_and_bad_kind() {
        let records = sample_records();
        let bytes = encode_trace(&records, 0);
        assert_eq!(
            decode_trace(&bytes[..bytes.len() - 1]),
            Err(TraceDecodeError::Truncated)
        );
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(
            decode_trace(&extended),
            Err(TraceDecodeError::TrailingBytes(1))
        );
        let mut bad = bytes;
        // First record's kind byte sits after the 18-byte header + 24 id
        // bytes.
        bad[18 + 24] = 0xEE;
        assert_eq!(decode_trace(&bad), Err(TraceDecodeError::BadKind(0xEE)));
    }

    #[test]
    fn chrome_json_uses_integer_microseconds() {
        let records = sample_records();
        let json = chrome_trace_json(&records);
        assert!(json.contains("\"ts\": 0.100"), "100ns start: {json}");
        assert!(json.contains("\"dur\": 0.900"), "900ns span: {json}");
        assert!(json.contains("\"name\": \"mitigation\""));
        assert!(!json.contains("e-"), "no scientific notation");
    }

    #[test]
    fn well_formedness_catches_violations() {
        let records = sample_records();
        assert_eq!(validate_well_formed(&records), Ok(()));

        let mut escaped = records.clone();
        for r in &mut escaped {
            if r.kind == SpanKind::MitigationKmp {
                r.end_ns = 2_000; // past the root's end
            }
        }
        assert!(validate_well_formed(&escaped).is_err());

        let mut orphan = records.clone();
        for r in &mut orphan {
            if r.kind == SpanKind::MitigationDetect {
                r.parent_id = 0xdead;
            }
        }
        assert!(validate_well_formed(&orphan).is_err());

        let mut two_roots = records;
        let twin = SpanRecord {
            span_id: 0x1234,
            parent_id: 0,
            ..two_roots[0]
        };
        let twin = SpanRecord {
            trace_id: two_roots
                .iter()
                .find(|r| r.kind == SpanKind::Mitigation)
                .unwrap()
                .trace_id,
            ..twin
        };
        two_roots.push(SpanRecord {
            span_id: 0x1235,
            ..twin
        });
        assert!(validate_well_formed(&two_roots).is_err());
    }
}
