//! Compact, dependency-free binary codec for [`Snapshot`]s and
//! [`SnapshotDelta`]s.
//!
//! ## Format (version 1)
//!
//! ```text
//! header:   magic "P4TS" · version u16 · kind u8 (0 = snapshot, 1 = delta)
//! counters: n u32 · n × (name str, label str, value u64)
//! gauges:   n u32 · n × (name str, label str, value i64)
//! hists:    n u32 · n × (name str, label str, count u64, sum u64,
//!               min u64, max u64, [snapshot only: p50 u64, p90 u64,
//!               p99 u64], b u32 · b × (bound u64, count u64))
//! overflow: events_overflowed u64 · [delta only: events_len u64]
//! events:   n u32 · n × (t_ns u64, tag u8, variant fields)
//! ```
//!
//! All integers are little-endian fixed width; strings are u32
//! length-prefixed UTF-8. Event tags are the [`Event`] variants in
//! declaration order (0–9); [`RejectKind`]/[`DropCause`] are single
//! bytes in declaration order. Delta histograms omit the percentile
//! fields — they are derived data the receiver recomputes on apply.
//!
//! Decoding is strict: a wrong magic, an unknown version/kind/tag,
//! invalid UTF-8, a short buffer, or trailing bytes all fail with a
//! typed [`DecodeError`]. Encode→decode→encode is byte-identical, and a
//! decoded value compares equal to the original (exact-roundtrip tests
//! below) — which is what lets CI gate on codec equivalence by diffing
//! the re-encoded JSON against the direct JSON export.

use crate::delta::{HistogramDelta, SnapshotDelta};
use crate::events::{DropCause, Event, EventRecord, RejectKind};
use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, Snapshot};

/// File magic for single snapshot/delta blobs.
pub const MAGIC: [u8; 4] = *b"P4TS";
/// Current format version.
pub const VERSION: u16 = 1;

const KIND_SNAPSHOT: u8 = 0;
const KIND_DELTA: u8 = 1;

/// Why a buffer failed to decode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The buffer ended before the structure did.
    Truncated,
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The version field is newer than this decoder.
    UnsupportedVersion(u16),
    /// The kind byte was neither snapshot nor delta, or not the kind the
    /// caller asked for.
    BadKind(u8),
    /// An event tag or enum byte was out of range.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// The structure decoded but bytes remain.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::BadMagic => write!(f, "bad magic (expected P4TS)"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::BadKind(k) => write!(f, "bad kind byte {k}"),
            DecodeError::BadTag(t) => write!(f, "bad tag byte {t}"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after structure"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes a full snapshot.
pub fn encode_snapshot(snap: &Snapshot) -> Vec<u8> {
    let mut w = Writer::new(KIND_SNAPSHOT);
    w.u32(snap.counters.len() as u32);
    for c in &snap.counters {
        w.str(&c.name);
        w.str(&c.label);
        w.u64(c.value);
    }
    w.u32(snap.gauges.len() as u32);
    for g in &snap.gauges {
        w.str(&g.name);
        w.str(&g.label);
        w.u64(g.value as u64);
    }
    w.u32(snap.histograms.len() as u32);
    for h in &snap.histograms {
        w.str(&h.name);
        w.str(&h.label);
        for v in [h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99] {
            w.u64(v);
        }
        w.buckets(&h.buckets);
    }
    w.u64(snap.events_overflowed);
    w.events(&snap.events);
    w.out
}

/// Deserializes a full snapshot, rejecting trailing bytes.
pub fn decode_snapshot(buf: &[u8]) -> Result<Snapshot, DecodeError> {
    let mut r = Reader::new(buf, KIND_SNAPSHOT)?;
    let n = r.u32()? as usize;
    let mut counters = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        counters.push(CounterSample {
            name: r.str()?,
            label: r.str()?,
            value: r.u64()?,
        });
    }
    let n = r.u32()? as usize;
    let mut gauges = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        gauges.push(GaugeSample {
            name: r.str()?,
            label: r.str()?,
            value: r.u64()? as i64,
        });
    }
    let n = r.u32()? as usize;
    let mut histograms = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let (name, label) = (r.str()?, r.str()?);
        let (count, sum, min, max) = (r.u64()?, r.u64()?, r.u64()?, r.u64()?);
        let (p50, p90, p99) = (r.u64()?, r.u64()?, r.u64()?);
        histograms.push(HistogramSample {
            name,
            label,
            count,
            sum,
            min,
            max,
            p50,
            p90,
            p99,
            buckets: r.buckets()?,
        });
    }
    let events_overflowed = r.u64()?;
    let events = r.events()?;
    r.finish()?;
    Ok(Snapshot {
        counters,
        gauges,
        histograms,
        events_overflowed,
        events,
    })
}

/// Serializes a delta.
pub fn encode_delta(delta: &SnapshotDelta) -> Vec<u8> {
    let mut w = Writer::new(KIND_DELTA);
    w.u32(delta.counters.len() as u32);
    for c in &delta.counters {
        w.str(&c.name);
        w.str(&c.label);
        w.u64(c.value);
    }
    w.u32(delta.gauges.len() as u32);
    for g in &delta.gauges {
        w.str(&g.name);
        w.str(&g.label);
        w.u64(g.value as u64);
    }
    w.u32(delta.histograms.len() as u32);
    for h in &delta.histograms {
        w.str(&h.name);
        w.str(&h.label);
        for v in [h.count, h.sum, h.min, h.max] {
            w.u64(v);
        }
        w.buckets(&h.buckets);
    }
    w.u64(delta.events_overflowed);
    w.u64(delta.events_len);
    w.events(&delta.events);
    w.out
}

/// Deserializes a delta, rejecting trailing bytes.
pub fn decode_delta(buf: &[u8]) -> Result<SnapshotDelta, DecodeError> {
    let mut r = Reader::new(buf, KIND_DELTA)?;
    let n = r.u32()? as usize;
    let mut counters = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        counters.push(CounterSample {
            name: r.str()?,
            label: r.str()?,
            value: r.u64()?,
        });
    }
    let n = r.u32()? as usize;
    let mut gauges = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        gauges.push(GaugeSample {
            name: r.str()?,
            label: r.str()?,
            value: r.u64()? as i64,
        });
    }
    let n = r.u32()? as usize;
    let mut histograms = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let (name, label) = (r.str()?, r.str()?);
        let (count, sum, min, max) = (r.u64()?, r.u64()?, r.u64()?, r.u64()?);
        histograms.push(HistogramDelta {
            name,
            label,
            count,
            sum,
            min,
            max,
            buckets: r.buckets()?,
        });
    }
    let events_overflowed = r.u64()?;
    let events_len = r.u64()?;
    let events = r.events()?;
    r.finish()?;
    Ok(SnapshotDelta {
        counters,
        gauges,
        histograms,
        events_overflowed,
        events,
        events_len,
    })
}

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn new(kind: u8) -> Self {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(kind);
        Writer { out }
    }

    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.out.extend_from_slice(s.as_bytes());
    }

    fn buckets(&mut self, buckets: &[(u64, u64)]) {
        self.u32(buckets.len() as u32);
        for &(bound, n) in buckets {
            self.u64(bound);
            self.u64(n);
        }
    }

    fn events(&mut self, events: &[EventRecord]) {
        self.u32(events.len() as u32);
        for record in events {
            self.u64(record.t_ns);
            match &record.event {
                Event::DigestRejected {
                    peer,
                    channel,
                    reason,
                } => {
                    self.u8(0);
                    self.u16(*peer);
                    self.u8(*channel);
                    self.u8(*reason as u8);
                }
                Event::ReplayDetected {
                    peer,
                    channel,
                    last_accepted,
                    got,
                } => {
                    self.u8(1);
                    self.u16(*peer);
                    self.u8(*channel);
                    self.u64(*last_accepted);
                    self.u64(*got);
                }
                Event::AlertEmitted { source, reason } => {
                    self.u8(2);
                    self.u16(*source);
                    self.u8(*reason as u8);
                }
                Event::AlertSuppressed { source } => {
                    self.u8(3);
                    self.u16(*source);
                }
                Event::KeyDerived {
                    switch,
                    port,
                    version,
                } => {
                    self.u8(4);
                    self.u16(*switch);
                    self.u8(*port);
                    self.u8(*version);
                }
                Event::KexStep { node, step } => {
                    self.u8(5);
                    self.u16(*node);
                    self.str(step);
                }
                Event::FrameDelivered { node, port, bytes } => {
                    self.u8(6);
                    self.u16(*node);
                    self.u8(*port);
                    self.u32(*bytes);
                }
                Event::FrameDropped { node, cause } => {
                    self.u8(7);
                    self.u16(*node);
                    self.u8(*cause as u8);
                }
                Event::RecircUsed { switch, count } => {
                    self.u8(8);
                    self.u16(*switch);
                    self.u32(*count);
                }
                Event::DefenceAction {
                    peer,
                    channel,
                    action,
                } => {
                    self.u8(9);
                    self.u16(*peer);
                    self.u8(*channel);
                    self.str(action);
                }
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], want_kind: u8) -> Result<Self, DecodeError> {
        let mut r = Reader { buf, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(DecodeError::UnsupportedVersion(version));
        }
        let kind = r.u8()?;
        if kind != want_kind {
            return Err(DecodeError::BadKind(kind));
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    /// Decodes a `&'static str` event field. Known protocol strings come
    /// from an intern table; anything else is leaked — acceptable for a
    /// decode path that runs a bounded number of times per process (CLI
    /// tools, tests), and the only way to hand back `&'static str`
    /// without changing the [`Event`] type.
    fn static_str(&mut self) -> Result<&'static str, DecodeError> {
        const KNOWN: &[&str] = &[
            "eak_salt1",
            "eak_salt2",
            "adhkd_offer",
            "adhkd_answer",
            "adhkd_redirect",
            "port_key_init",
            "port_key_update",
            "key_rollover",
            "quarantine",
            "mitigation_complete",
            "rollover",
            "release",
        ];
        let s = self.str()?;
        Ok(KNOWN
            .iter()
            .find(|k| **k == s)
            .copied()
            .unwrap_or_else(|| Box::leak(s.into_boxed_str())))
    }

    fn reject_kind(&mut self) -> Result<RejectKind, DecodeError> {
        Ok(match self.u8()? {
            0 => RejectKind::BadDigest,
            1 => RejectKind::NoKey,
            2 => RejectKind::Replayed,
            3 => RejectKind::Malformed,
            4 => RejectKind::Quarantined,
            t => return Err(DecodeError::BadTag(t)),
        })
    }

    fn drop_cause(&mut self) -> Result<DropCause, DecodeError> {
        Ok(match self.u8()? {
            0 => DropCause::Tap,
            1 => DropCause::Undeliverable,
            t => return Err(DecodeError::BadTag(t)),
        })
    }

    fn buckets(&mut self) -> Result<Vec<(u64, u64)>, DecodeError> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push((self.u64()?, self.u64()?));
        }
        Ok(out)
    }

    fn events(&mut self) -> Result<Vec<EventRecord>, DecodeError> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let t_ns = self.u64()?;
            let event = match self.u8()? {
                0 => Event::DigestRejected {
                    peer: self.u16()?,
                    channel: self.u8()?,
                    reason: self.reject_kind()?,
                },
                1 => Event::ReplayDetected {
                    peer: self.u16()?,
                    channel: self.u8()?,
                    last_accepted: self.u64()?,
                    got: self.u64()?,
                },
                2 => Event::AlertEmitted {
                    source: self.u16()?,
                    reason: self.reject_kind()?,
                },
                3 => Event::AlertSuppressed {
                    source: self.u16()?,
                },
                4 => Event::KeyDerived {
                    switch: self.u16()?,
                    port: self.u8()?,
                    version: self.u8()?,
                },
                5 => Event::KexStep {
                    node: self.u16()?,
                    step: self.static_str()?,
                },
                6 => Event::FrameDelivered {
                    node: self.u16()?,
                    port: self.u8()?,
                    bytes: self.u32()?,
                },
                7 => Event::FrameDropped {
                    node: self.u16()?,
                    cause: self.drop_cause()?,
                },
                8 => Event::RecircUsed {
                    switch: self.u16()?,
                    count: self.u32()?,
                },
                9 => Event::DefenceAction {
                    peer: self.u16()?,
                    channel: self.u8()?,
                    action: self.static_str()?,
                },
                t => return Err(DecodeError::BadTag(t)),
            };
            out.push(EventRecord { t_ns, event });
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(DecodeError::TrailingBytes(self.buf.len() - self.pos));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn busy_registry() -> Registry {
        let r = Registry::with_event_capacity(16);
        r.counter_with("auth_rejects", "peer2:ch0").add(13);
        r.counter("frames").add(70_000);
        r.gauge("outstanding").set(-4);
        for v in [1, 9, 1500, 70_000, u64::MAX / 2] {
            r.histogram_with("lat_ns", "s1").record(v);
        }
        r.record(
            5,
            Event::DigestRejected {
                peer: 2,
                channel: 0,
                reason: RejectKind::BadDigest,
            },
        );
        r.record(
            6,
            Event::ReplayDetected {
                peer: 2,
                channel: 1,
                last_accepted: 41,
                got: 7,
            },
        );
        r.record(
            7,
            Event::AlertEmitted {
                source: 3,
                reason: RejectKind::Replayed,
            },
        );
        r.record(8, Event::AlertSuppressed { source: 3 });
        r.record(
            9,
            Event::KeyDerived {
                switch: 1,
                port: 2,
                version: 7,
            },
        );
        r.record(
            10,
            Event::KexStep {
                node: 4,
                step: "adhkd_offer",
            },
        );
        r.record(
            11,
            Event::FrameDelivered {
                node: 5,
                port: 1,
                bytes: 128,
            },
        );
        r.record(
            12,
            Event::FrameDropped {
                node: 5,
                cause: DropCause::Tap,
            },
        );
        r.record(
            13,
            Event::RecircUsed {
                switch: 1,
                count: 2,
            },
        );
        r.record(
            14,
            Event::DefenceAction {
                peer: 2,
                channel: 0,
                action: "key_rollover",
            },
        );
        r
    }

    #[test]
    fn snapshot_roundtrips_exactly() {
        let snap = busy_registry().snapshot();
        let bytes = encode_snapshot(&snap);
        let decoded = decode_snapshot(&bytes).unwrap();
        assert_eq!(decoded, snap);
        // Re-encoding is byte-identical and the JSON views agree — the
        // property CI's codec-equivalence gate relies on.
        assert_eq!(encode_snapshot(&decoded), bytes);
        assert_eq!(decoded.to_json(), snap.to_json());
    }

    #[test]
    fn delta_roundtrips_exactly() {
        let r = busy_registry();
        let baseline = r.snapshot();
        r.counter("frames").add(500);
        r.histogram_with("lat_ns", "s1").record(3);
        r.record(20, Event::AlertSuppressed { source: 9 });
        let delta = r.delta_since(&baseline);
        let bytes = encode_delta(&delta);
        let decoded = decode_delta(&bytes).unwrap();
        assert_eq!(decoded, delta);
        assert_eq!(encode_delta(&decoded), bytes);
        assert_eq!(decoded.apply_to(&baseline), r.snapshot());
    }

    #[test]
    fn header_errors_are_typed() {
        let snap = busy_registry().snapshot();
        let bytes = encode_snapshot(&snap);
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode_snapshot(&bad), Err(DecodeError::BadMagic));
        let mut newer = bytes.clone();
        newer[4] = 0xFF;
        assert_eq!(
            decode_snapshot(&newer),
            Err(DecodeError::UnsupportedVersion(u16::from_le_bytes([
                0xFF, newer[5]
            ])))
        );
        // A delta blob is not a snapshot.
        let delta_bytes = encode_delta(&snap.delta_from(&snap));
        assert_eq!(decode_snapshot(&delta_bytes), Err(DecodeError::BadKind(1)));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let snap = busy_registry().snapshot();
        let bytes = encode_snapshot(&snap);
        for cut in [bytes.len() / 3, bytes.len() - 1] {
            assert_eq!(
                decode_snapshot(&bytes[..cut]),
                Err(DecodeError::Truncated),
                "cut at {cut}"
            );
        }
        let mut extended = bytes.clone();
        extended.extend_from_slice(&[0, 0, 0]);
        assert_eq!(
            decode_snapshot(&extended),
            Err(DecodeError::TrailingBytes(3))
        );
    }

    #[test]
    fn unknown_event_strings_survive_decode() {
        let r = Registry::with_event_capacity(4);
        r.record(
            1,
            Event::KexStep {
                node: 1,
                step: "port_key_update",
            },
        );
        let snap = r.snapshot();
        let decoded = decode_snapshot(&encode_snapshot(&snap)).unwrap();
        assert_eq!(decoded, snap);
        match decoded.events[0].event {
            Event::KexStep { step, .. } => assert_eq!(step, "port_key_update"),
            ref other => panic!("unexpected event {other:?}"),
        }
    }
}
