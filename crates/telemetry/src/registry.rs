//! The [`Registry`]: labeled metric families plus the event log, with
//! [`Registry::snapshot`] producing a serializable report.

use crate::delta::SnapshotDelta;
use crate::events::{Event, EventLog};
use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, Snapshot};
use crate::trace::TraceLog;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// A `(metric name, label)` family key. The empty label is the unlabeled
/// series of the family.
type FamilyKey = (String, String);

#[derive(Default)]
struct Families {
    counters: BTreeMap<FamilyKey, Arc<Counter>>,
    gauges: BTreeMap<FamilyKey, Arc<Gauge>>,
    histograms: BTreeMap<FamilyKey, Arc<Histogram>>,
}

/// The central metric registry.
///
/// Registration (`counter`/`gauge`/`histogram` and their `_with` labeled
/// variants) takes a lock and should happen once at setup; callers keep
/// the returned `Arc` so hot-path updates are plain relaxed atomics.
/// Registering the same `(name, label)` twice returns the same instance,
/// so independent subsystems can share a series safely.
///
/// The registry also owns an [`EventLog`], disabled unless constructed
/// via [`Registry::with_event_capacity`], and a [`TraceLog`], disabled
/// unless constructed via [`Registry::with_capacities`].
#[derive(Default)]
pub struct Registry {
    families: Mutex<Families>,
    events: EventLog,
    trace: TraceLog,
}

impl Registry {
    /// A registry with event logging and tracing disabled.
    pub fn new() -> Self {
        Registry::default()
    }

    /// A registry whose event log keeps the most recent `capacity`
    /// events (tracing stays disabled).
    pub fn with_event_capacity(capacity: usize) -> Self {
        Registry::with_capacities(capacity, 0)
    }

    /// A registry with both bounded logs configured: the event log keeps
    /// `event_capacity` records and the trace log `trace_capacity` spans
    /// (0 disables either).
    pub fn with_capacities(event_capacity: usize, trace_capacity: usize) -> Self {
        Registry {
            families: Mutex::default(),
            events: EventLog::with_capacity(event_capacity),
            trace: TraceLog::with_capacity(trace_capacity),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Families> {
        self.families.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The unlabeled counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, "")
    }

    /// The counter `name{label}`.
    pub fn counter_with(&self, name: &str, label: &str) -> Arc<Counter> {
        self.lock()
            .counters
            .entry((name.to_string(), label.to_string()))
            .or_default()
            .clone()
    }

    /// The unlabeled gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, "")
    }

    /// The gauge `name{label}`.
    pub fn gauge_with(&self, name: &str, label: &str) -> Arc<Gauge> {
        self.lock()
            .gauges
            .entry((name.to_string(), label.to_string()))
            .or_default()
            .clone()
    }

    /// Sets the labeled gauge `name{label}` in one call — the idiom for
    /// per-entity series (per-aggregate user counts, per-replica
    /// partition sizes) where the caller has a value to publish rather
    /// than a handle to keep.
    pub fn set_gauge_with(&self, name: &str, label: &str, value: i64) {
        self.gauge_with(name, label).set(value);
    }

    /// The unlabeled histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, "")
    }

    /// The histogram `name{label}`.
    pub fn histogram_with(&self, name: &str, label: &str) -> Arc<Histogram> {
        self.lock()
            .histograms
            .entry((name.to_string(), label.to_string()))
            .or_default()
            .clone()
    }

    /// The event log (possibly disabled).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The event log's configured capacity (0 when disabled). Sharded
    /// runs use this to size their per-shard private logs to match the
    /// caller's.
    pub fn event_capacity(&self) -> usize {
        self.events.capacity()
    }

    /// The trace log (possibly disabled).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// The trace log's configured capacity (0 when disabled). Sharded
    /// runs size their per-shard private trace rings from this, exactly
    /// like [`Registry::event_capacity`].
    pub fn trace_capacity(&self) -> usize {
        self.trace.capacity()
    }

    /// Folds a snapshot of a *disjoint* recording stream into this
    /// registry: counters add, gauges take the snapshot's value,
    /// histograms merge bucket contents, and events replay through this
    /// registry's log (carrying the snapshot's eviction count along).
    ///
    /// This is how sharded simulation hands its telemetry back: each
    /// worker records into a private registry, the coordinator merges the
    /// per-shard snapshots in shard-index order ([`Snapshot::merged`])
    /// and absorbs the result here, so the caller's registry ends up
    /// byte-identical no matter how the workers were scheduled.
    ///
    /// The synthesized `events_dropped` and `trace_spans_dropped`
    /// counters are skipped: both are derived from their logs, and
    /// absorbing the underlying records reproduces them on the next
    /// [`Registry::snapshot`].
    pub fn absorb(&self, snap: &Snapshot) {
        for c in &snap.counters {
            if (c.name == "events_dropped" || c.name == "trace_spans_dropped") && c.label.is_empty()
            {
                continue;
            }
            self.counter_with(&c.name, &c.label).add(c.value);
        }
        for g in &snap.gauges {
            self.gauge_with(&g.name, &g.label).set(g.value);
        }
        for h in &snap.histograms {
            self.histogram_with(&h.name, &h.label)
                .absorb(h.count, h.sum, h.min, h.max, &h.buckets);
        }
        self.events.absorb(&snap.events, snap.events_overflowed);
    }

    /// Records `event` at simulated time `t_ns` (no-op when the log is
    /// disabled).
    #[inline]
    pub fn record(&self, t_ns: u64, event: Event) {
        self.events.record(t_ns, event);
    }

    /// Sums the values of every series of counter family `name` (handy in
    /// tests and reports; labeled families are otherwise read per-series).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.lock()
            .counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, c)| c.get())
            .sum()
    }

    /// A point-in-time copy of every metric series and the event log,
    /// deterministically ordered by `(name, label)`.
    ///
    /// When the event log is enabled, its eviction count is also surfaced
    /// as a synthesized `events_dropped` counter so overflow is visible to
    /// anything that only reads metric series (rate rings, dashboards)
    /// and not the raw `events_overflowed` field.
    pub fn snapshot(&self) -> Snapshot {
        let families = self.lock();
        let mut counters: Vec<CounterSample> = families
            .counters
            .iter()
            .map(|((name, label), c)| CounterSample {
                name: name.clone(),
                label: label.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = families
            .gauges
            .iter()
            .map(|((name, label), g)| GaugeSample {
                name: name.clone(),
                label: label.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = families
            .histograms
            .iter()
            .map(|((name, label), h)| HistogramSample::from_histogram(name, label, h))
            .collect();
        drop(families);
        let events_overflowed = self.events.overflowed();
        let mut synthesize = |name: &str, value: u64| {
            let key = (name, "");
            match counters.binary_search_by(|c| (c.name.as_str(), c.label.as_str()).cmp(&key)) {
                Ok(i) => counters[i].value = value,
                Err(i) => counters.insert(
                    i,
                    CounterSample {
                        name: name.to_string(),
                        label: String::new(),
                        value,
                    },
                ),
            }
        };
        if self.events.enabled() {
            synthesize("events_dropped", events_overflowed);
        }
        if self.trace.enabled() {
            synthesize("trace_spans_dropped", self.trace.dropped());
        }
        Snapshot {
            counters,
            gauges,
            histograms,
            events_overflowed,
            events: self.events.to_vec(),
        }
    }

    /// The changes since `baseline` (an earlier [`Registry::snapshot`] of
    /// this registry): equivalent to `self.snapshot().delta_from(baseline)`.
    pub fn delta_since(&self, baseline: &Snapshot) -> SnapshotDelta {
        self.snapshot().delta_from(baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RejectKind;

    #[test]
    fn families_are_shared_by_key() {
        let r = Registry::new();
        let a = r.counter_with("verify_ok", "s1");
        let b = r.counter_with("verify_ok", "s1");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let other = r.counter_with("verify_ok", "s2");
        other.add(5);
        assert_eq!(other.get(), 5);
        assert_eq!(r.counter_total("verify_ok"), 7);
    }

    #[test]
    fn snapshot_is_ordered_and_complete() {
        let r = Registry::with_event_capacity(8);
        r.counter_with("z", "").inc();
        r.counter_with("a", "x").add(3);
        r.gauge("depth").set(-2);
        r.histogram_with("lat_ns", "s1").record(100);
        r.record(
            42,
            Event::AlertEmitted {
                source: 1,
                reason: RejectKind::BadDigest,
            },
        );
        let snap = r.snapshot();
        // "a", the synthesized "events_dropped", and "z".
        assert_eq!(snap.counters.len(), 3);
        assert_eq!(snap.counters[0].name, "a"); // BTreeMap order
        assert_eq!(snap.counters[0].value, 3);
        assert_eq!(snap.counters[1].name, "events_dropped");
        assert_eq!(snap.gauges[0].value, -2);
        assert_eq!(snap.histograms[0].count, 1);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].t_ns, 42);
    }

    #[test]
    fn disabled_events_by_default() {
        let r = Registry::new();
        r.record(1, Event::AlertSuppressed { source: 9 });
        let snap = r.snapshot();
        assert!(snap.events.is_empty());
        // No event log, no synthesized drop counter.
        assert_eq!(snap.counter("events_dropped", ""), None);
    }

    #[test]
    fn absorb_of_merged_parts_matches_shared_recording() {
        // Two disjoint recording streams, once into a shared registry and
        // once into private parts that are merged + absorbed.
        let record_a = |r: &Registry| {
            r.counter_with("verify_ok", "s1").add(3);
            r.histogram("op_ns").record(250);
            r.histogram("op_ns").record(9_000);
            r.record(10, Event::AlertSuppressed { source: 1 });
            r.record(20, Event::AlertSuppressed { source: 2 });
        };
        let record_b = |r: &Registry| {
            r.counter_with("verify_ok", "s1").add(4);
            r.counter_with("verify_ok", "s2").inc();
            r.gauge("depth").set(7);
            r.histogram("op_ns").record(77);
            r.record(30, Event::AlertSuppressed { source: 3 });
        };

        let shared = Registry::with_event_capacity(16);
        record_a(&shared);
        record_b(&shared);

        let a = Registry::with_event_capacity(16);
        record_a(&a);
        let b = Registry::with_event_capacity(16);
        record_b(&b);
        let merged = Snapshot::merged(&[a.snapshot(), b.snapshot()]);

        let sink = Registry::with_event_capacity(16);
        sink.absorb(&merged);
        assert_eq!(sink.snapshot().to_json(), shared.snapshot().to_json());
    }

    #[test]
    fn absorb_carries_event_overflow_without_double_counting_drops() {
        let part = Registry::with_event_capacity(2);
        for t in 0..5 {
            part.record(t, Event::AlertSuppressed { source: t as u16 });
        }
        // The part evicted 3; its snapshot carries the last 2 records.
        let sink = Registry::with_event_capacity(2);
        sink.record(0, Event::AlertSuppressed { source: 99 });
        sink.absorb(&part.snapshot());
        let snap = sink.snapshot();
        // 3 source-side evictions + 1 eviction absorbing into a full-ish
        // ring; the synthesized counter reflects the sink's log, not the
        // sum of the part's synthesized counter and the sink's.
        assert_eq!(snap.events_overflowed, 4);
        assert_eq!(snap.counter("events_dropped", ""), Some(4));
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].t_ns, 3);
    }

    #[test]
    fn overflow_increments_events_dropped_counter() {
        let r = Registry::with_event_capacity(2);
        assert_eq!(r.snapshot().counter("events_dropped", ""), Some(0));
        for t in 0..5 {
            r.record(t, Event::AlertSuppressed { source: t as u16 });
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("events_dropped", ""), Some(3));
        assert_eq!(snap.events_overflowed, 3);
        assert_eq!(snap.events.len(), 2);
    }
}
