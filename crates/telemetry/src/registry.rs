//! The [`Registry`]: labeled metric families plus the event log, with
//! [`Registry::snapshot`] producing a serializable report.

use crate::delta::SnapshotDelta;
use crate::events::{Event, EventLog};
use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, Snapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// A `(metric name, label)` family key. The empty label is the unlabeled
/// series of the family.
type FamilyKey = (String, String);

#[derive(Default)]
struct Families {
    counters: BTreeMap<FamilyKey, Arc<Counter>>,
    gauges: BTreeMap<FamilyKey, Arc<Gauge>>,
    histograms: BTreeMap<FamilyKey, Arc<Histogram>>,
}

/// The central metric registry.
///
/// Registration (`counter`/`gauge`/`histogram` and their `_with` labeled
/// variants) takes a lock and should happen once at setup; callers keep
/// the returned `Arc` so hot-path updates are plain relaxed atomics.
/// Registering the same `(name, label)` twice returns the same instance,
/// so independent subsystems can share a series safely.
///
/// The registry also owns an [`EventLog`], disabled unless constructed
/// via [`Registry::with_event_capacity`].
#[derive(Default)]
pub struct Registry {
    families: Mutex<Families>,
    events: EventLog,
}

impl Registry {
    /// A registry with event logging disabled.
    pub fn new() -> Self {
        Registry::default()
    }

    /// A registry whose event log keeps the most recent `capacity`
    /// events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Registry {
            families: Mutex::default(),
            events: EventLog::with_capacity(capacity),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Families> {
        self.families.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The unlabeled counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, "")
    }

    /// The counter `name{label}`.
    pub fn counter_with(&self, name: &str, label: &str) -> Arc<Counter> {
        self.lock()
            .counters
            .entry((name.to_string(), label.to_string()))
            .or_default()
            .clone()
    }

    /// The unlabeled gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, "")
    }

    /// The gauge `name{label}`.
    pub fn gauge_with(&self, name: &str, label: &str) -> Arc<Gauge> {
        self.lock()
            .gauges
            .entry((name.to_string(), label.to_string()))
            .or_default()
            .clone()
    }

    /// The unlabeled histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, "")
    }

    /// The histogram `name{label}`.
    pub fn histogram_with(&self, name: &str, label: &str) -> Arc<Histogram> {
        self.lock()
            .histograms
            .entry((name.to_string(), label.to_string()))
            .or_default()
            .clone()
    }

    /// The event log (possibly disabled).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Records `event` at simulated time `t_ns` (no-op when the log is
    /// disabled).
    #[inline]
    pub fn record(&self, t_ns: u64, event: Event) {
        self.events.record(t_ns, event);
    }

    /// Sums the values of every series of counter family `name` (handy in
    /// tests and reports; labeled families are otherwise read per-series).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.lock()
            .counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, c)| c.get())
            .sum()
    }

    /// A point-in-time copy of every metric series and the event log,
    /// deterministically ordered by `(name, label)`.
    ///
    /// When the event log is enabled, its eviction count is also surfaced
    /// as a synthesized `events_dropped` counter so overflow is visible to
    /// anything that only reads metric series (rate rings, dashboards)
    /// and not the raw `events_overflowed` field.
    pub fn snapshot(&self) -> Snapshot {
        let families = self.lock();
        let mut counters: Vec<CounterSample> = families
            .counters
            .iter()
            .map(|((name, label), c)| CounterSample {
                name: name.clone(),
                label: label.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = families
            .gauges
            .iter()
            .map(|((name, label), g)| GaugeSample {
                name: name.clone(),
                label: label.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = families
            .histograms
            .iter()
            .map(|((name, label), h)| HistogramSample::from_histogram(name, label, h))
            .collect();
        drop(families);
        let events_overflowed = self.events.overflowed();
        if self.events.enabled() {
            let key = ("events_dropped", "");
            match counters.binary_search_by(|c| (c.name.as_str(), c.label.as_str()).cmp(&key)) {
                Ok(i) => counters[i].value = events_overflowed,
                Err(i) => counters.insert(
                    i,
                    CounterSample {
                        name: "events_dropped".to_string(),
                        label: String::new(),
                        value: events_overflowed,
                    },
                ),
            }
        }
        Snapshot {
            counters,
            gauges,
            histograms,
            events_overflowed,
            events: self.events.to_vec(),
        }
    }

    /// The changes since `baseline` (an earlier [`Registry::snapshot`] of
    /// this registry): equivalent to `self.snapshot().delta_from(baseline)`.
    pub fn delta_since(&self, baseline: &Snapshot) -> SnapshotDelta {
        self.snapshot().delta_from(baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RejectKind;

    #[test]
    fn families_are_shared_by_key() {
        let r = Registry::new();
        let a = r.counter_with("verify_ok", "s1");
        let b = r.counter_with("verify_ok", "s1");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let other = r.counter_with("verify_ok", "s2");
        other.add(5);
        assert_eq!(other.get(), 5);
        assert_eq!(r.counter_total("verify_ok"), 7);
    }

    #[test]
    fn snapshot_is_ordered_and_complete() {
        let r = Registry::with_event_capacity(8);
        r.counter_with("z", "").inc();
        r.counter_with("a", "x").add(3);
        r.gauge("depth").set(-2);
        r.histogram_with("lat_ns", "s1").record(100);
        r.record(
            42,
            Event::AlertEmitted {
                source: 1,
                reason: RejectKind::BadDigest,
            },
        );
        let snap = r.snapshot();
        // "a", the synthesized "events_dropped", and "z".
        assert_eq!(snap.counters.len(), 3);
        assert_eq!(snap.counters[0].name, "a"); // BTreeMap order
        assert_eq!(snap.counters[0].value, 3);
        assert_eq!(snap.counters[1].name, "events_dropped");
        assert_eq!(snap.gauges[0].value, -2);
        assert_eq!(snap.histograms[0].count, 1);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].t_ns, 42);
    }

    #[test]
    fn disabled_events_by_default() {
        let r = Registry::new();
        r.record(1, Event::AlertSuppressed { source: 9 });
        let snap = r.snapshot();
        assert!(snap.events.is_empty());
        // No event log, no synthesized drop counter.
        assert_eq!(snap.counter("events_dropped", ""), None);
    }

    #[test]
    fn overflow_increments_events_dropped_counter() {
        let r = Registry::with_event_capacity(2);
        assert_eq!(r.snapshot().counter("events_dropped", ""), Some(0));
        for t in 0..5 {
            r.record(t, Event::AlertSuppressed { source: t as u16 });
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("events_dropped", ""), Some(3));
        assert_eq!(snap.events_overflowed, 3);
        assert_eq!(snap.events.len(), 2);
    }
}
