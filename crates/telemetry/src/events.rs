//! Typed structured events and the bounded ring-buffer [`EventLog`].
//!
//! Events carry only primitive fields (ids, small enums, `&'static str`
//! step names) so this crate stays at the bottom of the dependency graph:
//! protocol crates map their own types onto these at the call site.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Why a digest verification rejected a message (telemetry-side mirror of
/// the auth layer's reject reasons).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectKind {
    /// The digest did not match (forged or corrupted message).
    BadDigest,
    /// No key is installed for the channel.
    NoKey,
    /// The sequence number did not advance the replay window.
    Replayed,
    /// The frame did not decode as a message at all (framing garbage).
    ///
    /// Deliberately distinct from [`RejectKind::BadDigest`]: line noise
    /// must never look like an active MAC-forgery attack to consumers of
    /// the reject stream (e.g. the controller's adaptive defence loop).
    Malformed,
    /// The channel is quarantined by the controller's defence loop;
    /// traffic on it is dropped until a fresh key is installed.
    Quarantined,
}

impl RejectKind {
    /// Stable snake_case name used in JSON snapshots and metric labels.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectKind::BadDigest => "bad_digest",
            RejectKind::NoKey => "no_key",
            RejectKind::Replayed => "replayed",
            RejectKind::Malformed => "malformed",
            RejectKind::Quarantined => "quarantined",
        }
    }
}

/// Why the simulator dropped (or lost) a frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropCause {
    /// A MitM tap dropped it.
    Tap,
    /// The egress port was down or unconnected.
    Undeliverable,
}

impl DropCause {
    /// Stable snake_case name used in JSON snapshots.
    pub fn as_str(self) -> &'static str {
        match self {
            DropCause::Tap => "tap",
            DropCause::Undeliverable => "undeliverable",
        }
    }
}

/// A structured telemetry event.
///
/// Node/switch identities are raw `u16` values and ports raw `u8`s (the
/// wire-level representations) to keep this crate dependency-free.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Event {
    /// A message failed digest/replay verification.
    DigestRejected {
        /// Claimed sender.
        peer: u16,
        /// Channel (ingress port number; 0 = CPU/controller channel).
        channel: u8,
        /// Why it was rejected.
        reason: RejectKind,
    },
    /// A replayed sequence number was caught by the replay window.
    ReplayDetected {
        /// Claimed sender.
        peer: u16,
        /// Channel (ingress port number).
        channel: u8,
        /// Highest previously accepted sequence number.
        last_accepted: u64,
        /// The stale sequence number that arrived.
        got: u64,
    },
    /// An alert left the rate limiter toward the controller.
    AlertEmitted {
        /// Switch that raised the alert.
        source: u16,
        /// The underlying reject reason.
        reason: RejectKind,
    },
    /// The rate limiter suppressed an alert (§VIII DoS hardening).
    AlertSuppressed {
        /// Switch that suppressed it.
        source: u16,
    },
    /// A key was derived/installed on a switch.
    KeyDerived {
        /// The switch installing the key.
        switch: u16,
        /// Port the key protects (0 = the switch-local / C-DP key).
        port: u8,
        /// Key version tag installed.
        version: u8,
    },
    /// One step of a key-exchange protocol executed.
    KexStep {
        /// The node performing the step.
        node: u16,
        /// Step name (e.g. `"eak_salt"`, `"adhkd_offer"`).
        step: &'static str,
    },
    /// The simulator delivered a frame to a node.
    FrameDelivered {
        /// Destination node.
        node: u16,
        /// Destination port.
        port: u8,
        /// Frame length in bytes.
        bytes: u32,
    },
    /// The simulator dropped a frame.
    FrameDropped {
        /// Sending node.
        node: u16,
        /// Why it was dropped.
        cause: DropCause,
    },
    /// A packet needed pipeline recirculations.
    RecircUsed {
        /// The switch whose pipeline recirculated.
        switch: u16,
        /// Recirculations consumed by this packet.
        count: u32,
    },
    /// The controller's adaptive defence acted on a (peer, channel).
    DefenceAction {
        /// The peer whose channel triggered the defence.
        peer: u16,
        /// The channel (ingress port number; 0 = CPU/controller channel).
        channel: u8,
        /// Action name (e.g. `"rollover"`, `"quarantine"`, `"release"`).
        action: &'static str,
    },
}

impl Event {
    /// Stable snake_case type tag used in JSON snapshots.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::DigestRejected { .. } => "digest_rejected",
            Event::ReplayDetected { .. } => "replay_detected",
            Event::AlertEmitted { .. } => "alert_emitted",
            Event::AlertSuppressed { .. } => "alert_suppressed",
            Event::KeyDerived { .. } => "key_derived",
            Event::KexStep { .. } => "kex_step",
            Event::FrameDelivered { .. } => "frame_delivered",
            Event::FrameDropped { .. } => "frame_dropped",
            Event::RecircUsed { .. } => "recirc_used",
            Event::DefenceAction { .. } => "defence_action",
        }
    }
}

/// An [`Event`] with the simulated time it was recorded at.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EventRecord {
    /// Simulated time of the event (ns).
    pub t_ns: u64,
    /// The event.
    pub event: Event,
}

/// A bounded ring buffer of [`EventRecord`]s.
///
/// Capacity 0 (the default, [`EventLog::disabled`]) turns every
/// [`EventLog::record`] into a branch-and-return — event logging is
/// opt-in per registry, so benchmarks pay near-nothing for the
/// instrumentation being compiled in. When full, the oldest record is
/// evicted and counted in [`EventLog::overflowed`].
#[derive(Debug, Default)]
pub struct EventLog {
    capacity: usize,
    inner: Mutex<EventLogInner>,
}

#[derive(Debug, Default)]
struct EventLogInner {
    buf: VecDeque<EventRecord>,
    overflowed: u64,
}

impl EventLog {
    /// A log that records nothing (capacity 0).
    pub fn disabled() -> Self {
        EventLog::default()
    }

    /// A log keeping the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            capacity,
            inner: Mutex::default(),
        }
    }

    /// Whether recording is enabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configured capacity (0 when disabled).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, EventLogInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records `event` at simulated time `t_ns`. No-op when disabled.
    pub fn record(&self, t_ns: u64, event: Event) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.overflowed += 1;
        }
        inner.buf.push_back(EventRecord { t_ns, event });
    }

    /// Replays another log's captured contents into this one: `records`
    /// pass through the ring (oldest evicted as usual) and `overflowed`
    /// — evictions that already happened on the source side — is added to
    /// this log's eviction count. No-op when disabled. Used when
    /// per-shard private registries are merged into a caller's registry.
    pub fn absorb(&self, records: &[EventRecord], overflowed: u64) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.overflowed += overflowed;
        for r in records {
            if inner.buf.len() == self.capacity {
                inner.buf.pop_front();
                inner.overflowed += 1;
            }
            inner.buf.push_back(r.clone());
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many records were evicted because the buffer was full.
    pub fn overflowed(&self) -> u64 {
        self.lock().overflowed
    }

    /// A copy of the current contents, oldest first.
    pub fn to_vec(&self) -> Vec<EventRecord> {
        self.lock().buf.iter().cloned().collect()
    }

    /// Removes and returns the current contents, oldest first.
    pub fn drain(&self) -> Vec<EventRecord> {
        self.lock().buf.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let log = EventLog::disabled();
        assert!(!log.enabled());
        log.record(1, Event::AlertSuppressed { source: 1 });
        assert!(log.is_empty());
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let log = EventLog::with_capacity(2);
        for i in 0..3u16 {
            log.record(u64::from(i), Event::AlertSuppressed { source: i });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.overflowed(), 1);
        let records = log.to_vec();
        assert_eq!(records[0].t_ns, 1);
        assert_eq!(records[1].t_ns, 2);
        assert_eq!(log.drain().len(), 2);
        assert!(log.is_empty());
    }

    #[test]
    fn event_kinds_are_stable() {
        let e = Event::DigestRejected {
            peer: 2,
            channel: 1,
            reason: RejectKind::BadDigest,
        };
        assert_eq!(e.kind(), "digest_rejected");
        assert_eq!(RejectKind::Replayed.as_str(), "replayed");
        assert_eq!(RejectKind::Malformed.as_str(), "malformed");
        assert_eq!(RejectKind::Quarantined.as_str(), "quarantined");
        assert_eq!(DropCause::Tap.as_str(), "tap");
        let d = Event::DefenceAction {
            peer: 1,
            channel: 0,
            action: "rollover",
        };
        assert_eq!(d.kind(), "defence_action");
    }
}
