//! Point-in-time snapshots of a [`crate::Registry`] and their JSON
//! encoding.
//!
//! The JSON writer is hand-rolled (no external serializer in this
//! workspace); the output is deterministic — series sorted by
//! `(name, label)`, events oldest-first — so snapshots diff cleanly
//! across runs.

use crate::events::{Event, EventRecord};
use crate::metrics::Histogram;
use serde::Serialize;
use std::fmt::Write as _;

pub mod bin;

/// One counter series.
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct CounterSample {
    /// Family name.
    pub name: String,
    /// Series label (empty for the unlabeled series).
    pub label: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge series.
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct GaugeSample {
    /// Family name.
    pub name: String,
    /// Series label (empty for the unlabeled series).
    pub label: String,
    /// Value at snapshot time.
    pub value: i64,
}

/// One histogram series, with pre-computed summary statistics and the
/// non-empty buckets as `(inclusive upper bound, count)` pairs.
#[derive(Clone, PartialEq, Debug, Serialize)]
pub struct HistogramSample {
    /// Family name.
    pub name: String,
    /// Series label (empty for the unlabeled series).
    pub label: String,
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSample {
    /// Captures `h` as a sample.
    pub fn from_histogram(name: &str, label: &str, h: &Histogram) -> Self {
        let buckets = h
            .buckets()
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Histogram::bucket_upper_bound(i), n))
            .collect();
        HistogramSample {
            name: name.to_string(),
            label: label.to_string(),
            count: h.count(),
            sum: h.sum(),
            min: h.min().unwrap_or(0),
            max: h.max().unwrap_or(0),
            p50: h.quantile(0.50).unwrap_or(0),
            p90: h.quantile(0.90).unwrap_or(0),
            p99: h.quantile(0.99).unwrap_or(0),
            buckets,
        }
    }
}

/// A complete registry snapshot: every metric series plus the event log
/// contents.
#[derive(Clone, PartialEq, Debug, Serialize)]
pub struct Snapshot {
    /// All counter series, sorted by `(name, label)`.
    pub counters: Vec<CounterSample>,
    /// All gauge series, sorted by `(name, label)`.
    pub gauges: Vec<GaugeSample>,
    /// All histogram series, sorted by `(name, label)`.
    pub histograms: Vec<HistogramSample>,
    /// Events evicted from the ring buffer before this snapshot.
    pub events_overflowed: u64,
    /// Event log contents, oldest first.
    pub events: Vec<EventRecord>,
}

impl Snapshot {
    /// The value of counter series `name{label}`, or `None` if absent.
    pub fn counter(&self, name: &str, label: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && c.label == label)
            .map(|c| c.value)
    }

    /// Sum of every series of counter family `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// The histogram series `name{label}`, or `None` if absent.
    pub fn histogram(&self, name: &str, label: &str) -> Option<&HistogramSample> {
        self.histograms
            .iter()
            .find(|h| h.name == name && h.label == label)
    }

    /// Serializes the snapshot to a JSON object string.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            json_string(&mut out, &c.name);
            out.push_str(", \"label\": ");
            json_string(&mut out, &c.label);
            let _ = write!(out, ", \"value\": {}}}", c.value);
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            json_string(&mut out, &g.name);
            out.push_str(", \"label\": ");
            json_string(&mut out, &g.label);
            let _ = write!(out, ", \"value\": {}}}", g.value);
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            json_string(&mut out, &h.name);
            out.push_str(", \"label\": ");
            json_string(&mut out, &h.label);
            let _ = write!(
                out,
                ", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
            );
            for (j, (bound, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{bound}, {n}]");
            }
            out.push_str("]}");
        }
        let _ = write!(
            out,
            "\n  ],\n  \"events_overflowed\": {},\n  \"events\": [",
            self.events_overflowed
        );
        for (i, record) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_event(&mut out, record);
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Appends `s` as a JSON string literal (with escaping) to `out`.
pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn write_event(out: &mut String, record: &EventRecord) {
    // Every string field — including the `&'static str` ones like kex
    // steps and defence actions — goes through `json_string`, so hostile
    // content (quotes, backslashes, control bytes) can never break the
    // document.
    let _ = write!(out, "{{\"t_ns\": {}, \"type\": ", record.t_ns);
    json_string(out, record.event.kind());
    match &record.event {
        Event::DigestRejected {
            peer,
            channel,
            reason,
        } => {
            let _ = write!(
                out,
                ", \"peer\": {peer}, \"channel\": {channel}, \"reason\": "
            );
            json_string(out, reason.as_str());
        }
        Event::ReplayDetected {
            peer,
            channel,
            last_accepted,
            got,
        } => {
            let _ = write!(
                out,
                ", \"peer\": {peer}, \"channel\": {channel}, \
                 \"last_accepted\": {last_accepted}, \"got\": {got}"
            );
        }
        Event::AlertEmitted { source, reason } => {
            let _ = write!(out, ", \"source\": {source}, \"reason\": ");
            json_string(out, reason.as_str());
        }
        Event::AlertSuppressed { source } => {
            let _ = write!(out, ", \"source\": {source}");
        }
        Event::KeyDerived {
            switch,
            port,
            version,
        } => {
            let _ = write!(
                out,
                ", \"switch\": {switch}, \"port\": {port}, \"version\": {version}"
            );
        }
        Event::KexStep { node, step } => {
            let _ = write!(out, ", \"node\": {node}, \"step\": ");
            json_string(out, step);
        }
        Event::FrameDelivered { node, port, bytes } => {
            let _ = write!(
                out,
                ", \"node\": {node}, \"port\": {port}, \"bytes\": {bytes}"
            );
        }
        Event::FrameDropped { node, cause } => {
            let _ = write!(out, ", \"node\": {node}, \"cause\": ");
            json_string(out, cause.as_str());
        }
        Event::RecircUsed { switch, count } => {
            let _ = write!(out, ", \"switch\": {switch}, \"count\": {count}");
        }
        Event::DefenceAction {
            peer,
            channel,
            action,
        } => {
            let _ = write!(
                out,
                ", \"peer\": {peer}, \"channel\": {channel}, \"action\": "
            );
            json_string(out, action);
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RejectKind;
    use crate::registry::Registry;

    #[test]
    fn json_escapes_strings() {
        let mut s = String::new();
        json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn snapshot_json_contains_all_sections() {
        let r = Registry::with_event_capacity(4);
        r.counter_with("verify_ok", "s1").add(7);
        r.gauge("outstanding").set(2);
        r.histogram("lat_ns").record(1000);
        r.record(
            5,
            Event::DigestRejected {
                peer: 2,
                channel: 0,
                reason: RejectKind::BadDigest,
            },
        );
        let json = r.snapshot().to_json();
        assert!(json.contains("\"name\": \"verify_ok\""));
        assert!(json.contains("\"label\": \"s1\""));
        assert!(json.contains("\"value\": 7"));
        assert!(json.contains("\"outstanding\""));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"type\": \"digest_rejected\""));
        assert!(json.contains("\"reason\": \"bad_digest\""));
        // Structural sanity: balanced braces and brackets.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    /// Minimal structural JSON validator: checks string escaping, literal
    /// nesting, and that every byte is consumed. Enough to prove the
    /// hand-rolled encoder emits a well-formed document without pulling in
    /// a parser dependency.
    fn assert_valid_json(s: &str) {
        let b = s.as_bytes();
        let mut i = 0usize;
        let mut stack: Vec<u8> = Vec::new();
        while i < b.len() {
            match b[i] {
                b'"' => {
                    i += 1;
                    loop {
                        assert!(i < b.len(), "unterminated string in {s:?}");
                        match b[i] {
                            b'"' => break,
                            b'\\' => {
                                i += 1;
                                assert!(i < b.len(), "dangling escape");
                                match b[i] {
                                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                                    b'u' => {
                                        assert!(i + 4 < b.len(), "short \\u escape");
                                        assert!(
                                            b[i + 1..i + 5].iter().all(u8::is_ascii_hexdigit),
                                            "bad \\u escape"
                                        );
                                        i += 4;
                                    }
                                    c => panic!("invalid escape \\{}", c as char),
                                }
                            }
                            c if c < 0x20 => panic!("raw control byte {c:#x} inside string"),
                            _ => {}
                        }
                        i += 1;
                    }
                }
                b'{' | b'[' => stack.push(b[i]),
                b'}' => assert_eq!(stack.pop(), Some(b'{'), "mismatched }} at byte {i}"),
                b']' => assert_eq!(stack.pop(), Some(b'['), "mismatched ] at byte {i}"),
                _ => {}
            }
            i += 1;
        }
        assert!(stack.is_empty(), "unclosed containers: {stack:?}");
    }

    #[test]
    fn hostile_names_and_event_strings_stay_valid_json() {
        let hostile = "evil\"name\\with\nnewline\tand\u{1}ctl";
        let r = Registry::with_event_capacity(8);
        r.counter_with(hostile, "lab\"el\\").add(1);
        r.gauge(hostile).set(-3);
        r.histogram_with("h", hostile).record(9);
        r.record(
            1,
            Event::KexStep {
                node: 4,
                step: "adhkd_offer",
            },
        );
        r.record(
            2,
            Event::DefenceAction {
                peer: 1,
                channel: 0,
                action: "key_rollover",
            },
        );
        let json = r.snapshot().to_json();
        assert_valid_json(&json);
        // The hostile name round-trips escaped, never raw.
        assert!(json.contains("evil\\\"name\\\\with\\nnewline\\tand\\u0001ctl"));
        assert!(!json.contains("evil\"name"));
        // Event strings go through the same escaper.
        assert!(json.contains("\"step\": \"adhkd_offer\""));
        assert!(json.contains("\"action\": \"key_rollover\""));
    }

    #[test]
    fn snapshot_accessors() {
        let r = Registry::new();
        r.counter_with("x", "a").add(1);
        r.counter_with("x", "b").add(2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x", "a"), Some(1));
        assert_eq!(snap.counter("x", "missing"), None);
        assert_eq!(snap.counter_total("x"), 3);
    }
}
