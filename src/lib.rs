//! # p4auth
//!
//! A from-scratch Rust reproduction of **P4Auth** (*Securing In-Network
//! Traffic Control Systems with P4Auth*, DSN 2025): a key-based protection
//! mechanism that authenticates and integrity-protects the messages that
//! update or report programmable-switch data-plane state — both
//! controller↔data-plane (C-DP) and data-plane↔data-plane (DP-DP) — with
//! all checks running *in the data plane* itself.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |--------|----------|
//! | [`primitives`] | modified Diffie-Hellman, Extract-and-Expand KDF, HalfSipHash / keyed-CRC32 MACs |
//! | [`wire`] | the P4Auth message formats and codecs |
//! | [`dataplane`] | the PISA switch emulator (registers, tables, hash units, resource & timing models) |
//! | [`netsim`] | the discrete-event network simulator with MitM taps |
//! | [`core`] | the P4Auth protocol: authentication engine, EAK/ADHKD, key management, the data-plane agent |
//! | [`controller`] | the controller runtime: authenticated register access, key orchestration, alerts |
//! | [`systems`] | HULA and RouteScout, the protected target systems, plus the simulation harness |
//! | [`attacks`] | the §II-A adversaries: control-plane MitM, link MitM, replay, brute force, DoS |
//! | [`workloads`] | synthetic CAIDA-like traffic and latency processes |
//! | [`telemetry`] | dependency-free metrics registry and structured event log spanning sim, auth, agent and controller |
//!
//! ## Quickstart
//!
//! ```
//! use p4auth::core::agent::{AgentConfig, P4AuthSwitch};
//! use p4auth::dataplane::register::RegisterArray;
//! use p4auth::primitives::mac::HalfSipHashMac;
//! use p4auth::primitives::Key64;
//! use p4auth::wire::body::RegisterOp;
//! use p4auth::wire::ids::{PortId, RegId, SeqNum, SwitchId};
//! use p4auth::wire::Message;
//!
//! // A switch with one protected register.
//! let config = AgentConfig::new(SwitchId::new(1), 4, Key64::new(0x5eed))
//!     .map_register(RegId::new(1234), "path_latency");
//! let mut switch = P4AuthSwitch::new(config, None);
//! switch.chassis_mut().declare_register(RegisterArray::new("path_latency", 8, 64));
//! let k_local = Key64::new(42);
//! switch.install_key(PortId::CPU, k_local);
//!
//! // An authenticated controller write lands...
//! let write = Message::register_request(
//!     SwitchId::CONTROLLER,
//!     SeqNum::new(1),
//!     RegisterOp::write_req(RegId::new(1234), 0, 99),
//! )
//! .sealed(&HalfSipHashMac::default(), k_local);
//! switch.on_packet(0, PortId::CPU, &write.encode());
//! assert_eq!(switch.chassis().register("path_latency")?.read(0)?, 99);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for end-to-end scenarios (HULA under a link MitM,
//! RouteScout under a control-plane MitM, key lifecycle) and
//! `crates/bench` for the harnesses that regenerate every table and figure
//! of the paper's evaluation.

#![forbid(unsafe_code)]

pub use p4auth_attacks as attacks;
pub use p4auth_controller as controller;
pub use p4auth_core as core;
pub use p4auth_dataplane as dataplane;
pub use p4auth_netsim as netsim;
pub use p4auth_primitives as primitives;
pub use p4auth_systems as systems;
pub use p4auth_telemetry as telemetry;
pub use p4auth_wire as wire;
pub use p4auth_workloads as workloads;
