//! Quickstart: one P4Auth-protected switch, one authenticated write, one
//! attack that bounces off.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use p4auth::core::agent::{AgentConfig, AgentEvent, P4AuthSwitch};
use p4auth::dataplane::register::RegisterArray;
use p4auth::primitives::mac::HalfSipHashMac;
use p4auth::primitives::Key64;
use p4auth::wire::body::{Body, RegisterOp};
use p4auth::wire::ids::{PortId, RegId, SeqNum, SwitchId};
use p4auth::wire::Message;

fn main() {
    // --- build a switch with one protected register --------------------
    let reg_id = RegId::new(1234);
    let config = AgentConfig::new(SwitchId::new(1), 4, Key64::new(0xb007_5eed))
        .map_register(reg_id, "path_latency");
    let mut switch = P4AuthSwitch::new(config, None);
    switch
        .chassis_mut()
        .declare_register(RegisterArray::new("path_latency", 8, 64));

    // In production the local key comes from the EAK+ADHKD handshake (see
    // the key_rollover example); here we install it directly.
    let k_local = Key64::new(0x0001_0ca1_c0de);
    switch.install_key(PortId::CPU, k_local);
    let mac = HalfSipHashMac::default();

    // --- an authenticated controller write lands ----------------------
    let write = Message::register_request(
        SwitchId::CONTROLLER,
        SeqNum::new(1),
        RegisterOp::write_req(reg_id, 0, 420),
    )
    .sealed(&mac, k_local);
    let out = switch.on_packet(0, PortId::CPU, &write.encode());
    println!("legitimate write:  events = {:?}", out.events);
    let stored = switch
        .chassis()
        .register("path_latency")
        .unwrap()
        .read(0)
        .unwrap();
    println!("register value now: {stored}");
    assert_eq!(stored, 420);

    // --- the §II-A adversary rewrites a sealed write in flight ---------
    let mut tampered = Message::register_request(
        SwitchId::CONTROLLER,
        SeqNum::new(2),
        RegisterOp::write_req(reg_id, 0, 111),
    )
    .sealed(&mac, k_local);
    *tampered.body_mut() = Body::Register(RegisterOp::write_req(reg_id, 0, 999_999));

    let out = switch.on_packet(1, PortId::CPU, &tampered.encode());
    println!("tampered write:    events = {:?}", out.events);
    assert!(out
        .events
        .iter()
        .any(|e| matches!(e, AgentEvent::Rejected(_))));
    let stored = switch
        .chassis()
        .register("path_latency")
        .unwrap()
        .read(0)
        .unwrap();
    println!("register value now: {stored}  (unchanged — attack blocked, alert raised)");
    assert_eq!(stored, 420);

    // --- the response and alert that went back to the controller -------
    for (port, bytes) in &out.outputs {
        let msg = Message::decode(bytes).unwrap();
        println!("  -> {port}: {:?}", msg.body());
    }
}
