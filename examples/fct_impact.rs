//! The §II motivation in one picture: what the HULA probe attack does to
//! flow completion times when links have finite capacity — and what
//! P4Auth restores.
//!
//! ```sh
//! cargo run --example fct_impact
//! ```

use p4auth::systems::experiments::fct::{run_all, FctConfig};

fn bar(ms: f64, per_char: f64) -> String {
    "█".repeat((ms / per_char).round() as usize)
}

fn main() {
    let cfg = FctConfig::default();
    println!("Flow completion time under the HULA probe attack");
    println!(
        "({} flows, Fig. 3 topology, {:.1} Mbit/s bottlenecks on mid→S5 links)\n",
        cfg.flows,
        cfg.bottleneck_bps as f64 / 1e6
    );

    let results = run_all(cfg);
    for r in &results {
        println!("── {} ──", r.scenario.label());
        println!(
            "  mean FCT {:6.2} ms  {}",
            r.mean_fct_ns / 1e6,
            bar(r.mean_fct_ns / 1e6, 1.0)
        );
        println!(
            "  p95  FCT {:6.2} ms  {}",
            r.p95_fct_ns as f64 / 1e6,
            bar(r.p95_fct_ns as f64 / 1e6, 1.0)
        );
        println!(
            "  completed {}/{}; share of traffic on the compromised S4 path: {:.0}%\n",
            r.completed,
            r.total,
            100.0 * r.path_share[2]
        );
    }

    let clean = &results[0];
    let attacked = &results[1];
    let defended = &results[2];
    println!(
        "attack inflation: {:.1}x mean FCT;  with P4Auth: {:.1}x",
        attacked.mean_fct_ns / clean.mean_fct_ns,
        defended.mean_fct_ns / clean.mean_fct_ns
    );
}
