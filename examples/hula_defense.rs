//! The Fig. 3 / Fig. 17 demonstration: a MitM on the S4–S1 link rewrites
//! HULA `probeUtil`, dragging traffic onto the compromised path; P4Auth
//! authenticates probes hop by hop and blocks the attack.
//!
//! ```sh
//! cargo run --example hula_defense
//! ```

use p4auth::systems::experiments::fig17::{run_all, Fig17Config};

fn bar(share: f64) -> String {
    let n = (share * 40.0).round() as usize;
    "█".repeat(n)
}

fn main() {
    println!("HULA under a link MitM (Fig. 3 topology, Fig. 17 experiment)\n");
    let config = Fig17Config::default();
    println!(
        "{} rounds, {} packets/round, adversary forges probeUtil={}\n",
        config.rounds, config.packets_per_round, config.forged_util
    );

    for result in run_all(config) {
        println!("── {} ──", result.scenario.label());
        for (i, label) in ["S1-S2", "S1-S3", "S1-S4"].iter().enumerate() {
            println!(
                "  {label}: {:5.1}%  {}",
                100.0 * result.path_share[i],
                bar(result.path_share[i])
            );
        }
        println!(
            "  probes dropped: {}, alerts: {}, delivered {}/{}\n",
            result.probes_dropped, result.alerts, result.delivered, result.injected
        );
    }

    println!("Reading the bars:");
    println!(" * no adversary      → feedback balances the three paths");
    println!(" * with adversary    → the forged low utilization pulls >70% onto S1-S4");
    println!(" * adversary + P4Auth → tampered probes fail digest checks; S1 ignores");
    println!("   them, alerts the controller, and traffic avoids the compromised link");
}
