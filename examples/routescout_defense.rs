//! The Fig. 2 / Fig. 16 demonstration: a compromised switch OS inflates
//! path-1 latency inside register read responses, tricking RouteScout's
//! controller into congesting path 2; P4Auth detects the tampering and the
//! controller retains the legitimate split ratio.
//!
//! ```sh
//! cargo run --example routescout_defense
//! ```

use p4auth::systems::experiments::fig16::{run_all, Fig16Config};

fn bar(share: f64) -> String {
    let n = (share * 40.0).round() as usize;
    "█".repeat(n)
}

fn main() {
    println!("RouteScout under a control-plane MitM (Fig. 2 attack, Fig. 16 experiment)\n");
    let config = Fig16Config::default();
    println!(
        "{} epochs × {} packets; path latencies {}µs vs {}µs; adversary inflates path-1 \
         latency ×{} from epoch {}\n",
        config.epochs,
        config.packets_per_epoch,
        config.path0_mean_us,
        config.path1_mean_us,
        config.inflation_factor,
        config.attack_from_epoch
    );

    for result in run_all(config) {
        println!("── {} ──", result.scenario.label());
        for (i, label) in ["path 1 (fast)", "path 2 (slow)"].iter().enumerate() {
            println!(
                "  {label}: {:5.1}%  {}",
                100.0 * result.post_attack_share[i],
                bar(result.post_attack_share[i])
            );
        }
        println!(
            "  final split ratio: {}% to path 1; tampered epochs detected: {}\n",
            result.final_split, result.tamper_detections
        );
    }

    println!("Reading the bars (post-attack traffic):");
    println!(" * no adversary      → ~64% on the genuinely faster path 1");
    println!(" * with adversary    → inflated latency readings push ~74% onto slow path 2");
    println!(" * adversary + P4Auth → every tampered response is rejected; the controller");
    println!("   keeps the last good ratio and raises an alert per epoch");
}
