//! §XI scalability analysis: P4Auth key management on a production-scale
//! WAN with a physically-distributed controller (the paper's ONOS
//! example), plus a live simulated bootstrap cross-check.
//!
//! ```sh
//! cargo run --example wan_scalability
//! ```

use p4auth::controller::ControllerConfig;
use p4auth::core::kmp::{KeyOperation, NetworkScale, ShardedDeployment};
use p4auth::netsim::topology::Topology;
use p4auth::systems::harness::Network;

fn main() {
    println!("P4Auth key-management scalability (§XI)\n");

    println!("per-operation costs (Table III):");
    for op in KeyOperation::ALL {
        println!(
            "  {:<18} {} messages, {:>3} bytes",
            op.label(),
            op.message_count(),
            op.byte_count()
        );
    }

    let wan = ShardedDeployment::ONOS_WAN;
    println!(
        "\nONOS WAN: {} switches, {} links, {} controllers",
        wan.switches, wan.links, wan.controllers
    );
    let shard = wan.per_controller();
    println!(
        "  per-controller shard: {} switches, {} links",
        shard.switches, shard.links
    );
    println!(
        "  simultaneous key init at one controller: {} messages, {:.1} KB",
        shard.init_messages(),
        shard.init_bytes() as f64 / 1000.0
    );
    println!(
        "  simultaneous key update: {} messages, {:.1} KB",
        shard.update_messages(),
        shard.update_bytes() as f64 / 1000.0
    );
    println!(
        "  sequential init @2ms/op: {:.0} ms; update @1ms/op: {:.0} ms",
        wan.sequential_init_ns(2_000_000) as f64 / 1e6,
        wan.sequential_update_ns(1_000_000) as f64 / 1e6
    );
    for batch in [4, 8, 16] {
        println!(
            "  batched init ({batch:>2}-wide): {:.0} ms",
            wan.batched_init_ns(2_000_000, batch) as f64 / 1e6
        );
    }

    // Live cross-check on a simulated chain: analytic message counts vs
    // frames actually exchanged by the protocols.
    println!("\nsimulated bootstrap cross-check:");
    for n in [2u16, 4, 8] {
        let mut net = Network::build(
            Topology::chain(n, 50_000, 200_000),
            ControllerConfig::default(),
            0x3a1e,
            |_| None,
            |_, c| c,
        );
        let before = net.sim.stats().frames_delivered;
        let elapsed = net.bootstrap_keys();
        let frames = net.sim.stats().frames_delivered - before;
        let analytic = NetworkScale {
            switches: n as u64,
            links: n as u64 - 1,
        }
        .init_messages();
        println!(
            "  chain of {n}: {frames} frames (analytic 4m+5n = {analytic}), {elapsed} simulated"
        );
    }
}
