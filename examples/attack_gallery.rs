//! Table I as a runnable gallery: for each class of in-network system,
//! run the characteristic state-tampering attack against the undefended
//! baseline and against P4Auth, and print what happened.
//!
//! ```sh
//! cargo run --example attack_gallery
//! ```

use p4auth::attacks::scenarios::run_all;
use p4auth::attacks::{bruteforce, kex_mitm};
use p4auth::primitives::dh::DhParams;
use p4auth::primitives::kdf::Kdf;
use p4auth::primitives::rng::SplitMix64;

fn main() {
    println!("Table I gallery: altering C-DP update messages per system class\n");
    println!(
        "{:<30} {:<12} {:<12} {:<8}",
        "system class", "baseline", "with P4Auth", "alert?"
    );
    println!("{}", "-".repeat(66));
    for r in run_all() {
        println!(
            "{:<30} {:<12} {:<12} {:<8}",
            r.class.label(),
            if r.baseline_compromised {
                "COMPROMISED"
            } else {
                "safe"
            },
            if r.p4auth_blocked {
                "protected"
            } else {
                "FAILED"
            },
            if r.alert_raised { "yes" } else { "no" },
        );
        println!("    impact when unprotected: {}", r.impact);
        println!(
            "    register value: baseline ended at {}, P4Auth preserved {}",
            r.baseline_final_value, r.p4auth_final_value
        );
    }

    println!("\n§VIII brute-force analysis:");
    println!(
        "  32-bit digest, 1M online guesses: success probability {:.6}%, {} alerts raised",
        100.0 * bruteforce::digest_guess_success_probability(1_000_000, 32),
        bruteforce::expected_alerts(1_000_000),
    );
    println!(
        "  64-bit key at GPU reference rate: {:.0} days to exhaust; 180-day rollover {}",
        bruteforce::key_search_days(64),
        if bruteforce::rollover_defeats_bruteforce(64, 180.0) {
            "defeats the search"
        } else {
            "IS INSUFFICIENT"
        },
    );

    println!("\n§III-B [A3]: key substitution vs UNAUTHENTICATED modified DH");
    let params = DhParams::recommended();
    let kdf = Kdf::default();
    let mut victims = SplitMix64::new(1);
    let mut eve = SplitMix64::new(666);
    let outcome = kex_mitm::attack_unauthenticated_dh(params, &mut victims, &mut eve, &kdf);
    println!(
        "  without message authentication (the DH-AES-P4 baseline): channel {}",
        if outcome.channel_compromised() {
            "FULLY COMPROMISED — Eve holds both keys"
        } else {
            "survived"
        }
    );
    println!("  with P4Auth every exchange message is digest-protected, so the");
    println!("  substituted offer is rejected before any key installs (see the");
    println!("  kex_mitm tests for the executable proof).");
}
