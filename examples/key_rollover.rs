//! The key-management lifecycle (Fig. 14): boot-time EAK + ADHKD
//! initialization for local and port keys, then periodic rollover — with
//! the measured RTT of each operation (Fig. 20).
//!
//! ```sh
//! cargo run --example key_rollover
//! ```

use p4auth::controller::ControllerConfig;
use p4auth::netsim::topology::Topology;
use p4auth::systems::experiments::fig20;
use p4auth::systems::harness::{ControllerNode, Network};
use p4auth::wire::ids::{PortId, SwitchId};

fn main() {
    println!("P4Auth key management lifecycle on a 3-switch chain\n");

    let mut net = Network::build(
        Topology::chain(3, 50_000, 200_000),
        ControllerConfig::default(),
        0x2011_0e47,
        |_| None,
        |_, c| c,
    );

    // --- boot: local keys (EAK + ADHKD) then port keys (redirected) ----
    let elapsed = net.bootstrap_keys();
    println!("bootstrap completed in {elapsed} of simulated time");
    for (id, sw) in &net.switches {
        let sw = sw.borrow();
        let ports: Vec<String> = sw
            .keys()
            .installed_ports()
            .iter()
            .map(|p| p.to_string())
            .collect();
        println!("  {id}: keys installed for [{}]", ports.join(", "));
    }

    // --- periodic rollover (§VIII: ≤180 days wall-clock; here we just
    //     demonstrate the exchanges) --------------------------------------
    let s1 = SwitchId::new(1);
    let s2 = SwitchId::new(2);

    let v_before = net.switches[&s1].borrow().keys().local().version();
    let out = net.controller.borrow_mut().local_key_update(s1);
    for o in out {
        net.sim.inject_frame(
            SwitchId::CONTROLLER,
            ControllerNode::port_for(o.to),
            o.bytes,
        );
    }
    net.sim.run_to_completion();
    let v_after = net.switches[&s1].borrow().keys().local().version();
    println!("\nlocal key rollover on S1: version {v_before} -> {v_after}");

    let out = net
        .controller
        .borrow_mut()
        .port_key_update(s1, PortId::new(2), s2);
    for o in out {
        net.sim.inject_frame(
            SwitchId::CONTROLLER,
            ControllerNode::port_for(o.to),
            o.bytes,
        );
    }
    net.sim.run_to_completion();
    let k1 = net.switches[&s1]
        .borrow()
        .keys()
        .port(PortId::new(2))
        .version();
    println!("port key rollover S1<->S2: now at version {k1} (direct DP-DP exchange)");

    // --- Fig. 20: per-operation RTTs ------------------------------------
    println!("\nKMP round-trip times (Fig. 20 reproduction):");
    for (label, ns) in fig20::measure_default().rows() {
        println!("  {label:<18} {:6.3} ms", ns as f64 / 1e6);
    }
    println!("\n(port init is slowest: 5 messages redirected via the controller;");
    println!(" port update is fastest: the DP-DP exchange skips the controller)");
}
